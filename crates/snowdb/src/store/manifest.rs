//! Versioned catalog manifest with atomic commit.
//!
//! The manifest is the single source of truth for what a persistent database
//! contains: a monotonically increasing version, the next partition-file
//! sequence number, and per table its schema plus the ordered list of live
//! partition files. Partition files themselves are immutable and are written
//! *before* the commit that references them — a file not reachable from the
//! committed manifest simply does not exist as far as readers are concerned
//! (crash debris is swept on the next open).
//!
//! Commit protocol (LevelDB-style, crash-atomic on POSIX semantics):
//!
//! ```text
//! 1. render the new manifest (version N+1) to MANIFEST.tmp
//! 2. fsync(MANIFEST.tmp)
//! 3. rename(MANIFEST.tmp -> MANIFEST)      # the atomic commit point
//! 4. fsync(directory)
//! ```
//!
//! A crash before step 3 leaves the old `MANIFEST` untouched (plus ignorable
//! debris); a crash after step 3 leaves the new version fully committed.
//! [`ChaosSite::ManifestCommit`] faults are injected immediately before the
//! temp write, between steps 2 and 3 (both simulate a crash whose recovery
//! must reopen the *previous* version), and after step 4 — a crash *after*
//! the atomic commit point, where recovery must instead conclude the commit
//! happened (the store resolves this by re-reading the on-disk manifest).
//!
//! The manifest is serialized as JSON via the crate's own
//! [`Variant`](crate::variant::Variant) parser/printer, so the store adds no
//! serialization dependency.

use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;

use crate::error::{Result, SnowError};
use crate::govern::chaos::{ChaosSchedule, ChaosSite};
use crate::storage::{ColumnDef, ColumnType};
use crate::variant::{parse_json, to_json, Object, Variant};

/// Name of the committed manifest file inside the database directory.
pub const MANIFEST_FILE: &str = "MANIFEST";
/// Name of the commit-in-progress temp file.
pub const MANIFEST_TMP: &str = "MANIFEST.tmp";
/// Manifest serialization format version. Format 2 added version retention
/// (`retention` + `history`); format-1 manifests are still read (empty
/// history, default retention) but every write is format 2.
pub const MANIFEST_FORMAT: i64 = 2;
/// Default number of committed versions retained (current + 7 historical).
pub const DEFAULT_RETENTION: u64 = 8;

/// One live partition file of a table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartRef {
    /// File name relative to the store's `parts/` directory.
    pub file: String,
    pub rows: usize,
}

/// Catalog entry for one table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TableManifest {
    pub schema: Vec<ColumnDef>,
    pub partitions: Vec<PartRef>,
}

/// One retained *historical* catalog version: the full table set as it stood
/// when that version was current. Time travel and `UNDROP` reconstruct
/// tables from these records; GC keeps every partition file they reference.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VersionRecord {
    pub version: u64,
    pub tables: BTreeMap<String, TableManifest>,
}

/// The whole catalog at one committed version, plus the retained history.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Manifest {
    /// Committed catalog version; bumps by one per commit.
    pub version: u64,
    /// Next partition-file sequence number. Persisted so file names are never
    /// reused even across drop + crash + reopen.
    pub next_file: u64,
    /// How many committed versions to retain, counting the current one.
    /// Always ≥ 1; shrinking it evicts history on the next commit.
    pub retention: u64,
    pub tables: BTreeMap<String, TableManifest>,
    /// Strictly older retained versions, ascending by version. The newest
    /// history entry is the version immediately before `version`.
    pub history: Vec<VersionRecord>,
}

impl Default for Manifest {
    fn default() -> Manifest {
        Manifest {
            version: 0,
            next_file: 0,
            retention: DEFAULT_RETENTION,
            tables: BTreeMap::new(),
            history: Vec::new(),
        }
    }
}

fn storage(msg: impl Into<String>) -> SnowError {
    SnowError::Storage(msg.into())
}

fn tables_to_json(tables: &BTreeMap<String, TableManifest>) -> Variant {
    let list: Vec<Variant> = tables
        .iter()
        .map(|(name, t)| {
            let mut obj = Object::new();
            obj.insert("name", Variant::str(name));
            let cols: Vec<Variant> = t
                .schema
                .iter()
                .map(|c| {
                    let mut col = Object::new();
                    col.insert("name", Variant::str(&c.name));
                    col.insert("type", Variant::str(c.ty.name()));
                    Variant::object(col)
                })
                .collect();
            obj.insert("columns", Variant::array(cols));
            let parts: Vec<Variant> = t
                .partitions
                .iter()
                .map(|p| {
                    let mut part = Object::new();
                    part.insert("file", Variant::str(&p.file));
                    part.insert("rows", Variant::Int(p.rows as i64));
                    Variant::object(part)
                })
                .collect();
            obj.insert("partitions", Variant::array(parts));
            Variant::object(obj)
        })
        .collect();
    Variant::array(list)
}

fn tables_from_json(list: &[Variant]) -> Result<BTreeMap<String, TableManifest>> {
    let mut tables = BTreeMap::new();
    for t in list {
        let obj = t.as_object().ok_or_else(|| storage("table entry is not an object"))?;
        let name = field_str(obj, "name")?;
        let mut schema = Vec::new();
        for c in obj
            .get("columns")
            .and_then(Variant::as_array)
            .ok_or_else(|| storage(format!("table '{name}': 'columns' is not an array")))?
        {
            let col = c
                .as_object()
                .ok_or_else(|| storage(format!("table '{name}': column entry is not an object")))?;
            let cname = field_str(col, "name")?;
            let tyname = field_str(col, "type")?;
            let ty = ColumnType::parse(&tyname).ok_or_else(|| {
                storage(format!("table '{name}': unknown column type '{tyname}'"))
            })?;
            schema.push(ColumnDef::new(cname, ty));
        }
        let mut partitions = Vec::new();
        for p in obj
            .get("partitions")
            .and_then(Variant::as_array)
            .ok_or_else(|| storage(format!("table '{name}': 'partitions' is not an array")))?
        {
            let part = p
                .as_object()
                .ok_or_else(|| storage(format!("table '{name}': partition entry is not an object")))?;
            let file = field_str(part, "file")?;
            if file.contains('/') || file.contains("..") {
                return Err(storage(format!(
                    "table '{name}': partition file name '{file}' escapes the parts directory"
                )));
            }
            let rows = usize::try_from(field_int(part, "rows")?)
                .map_err(|_| storage(format!("table '{name}': negative row count")))?;
            partitions.push(PartRef { file, rows });
        }
        if tables.insert(name.clone(), TableManifest { schema, partitions }).is_some() {
            return Err(storage(format!("duplicate table '{name}' in manifest")));
        }
    }
    Ok(tables)
}

impl Manifest {
    /// Renders the manifest as canonical JSON text (always format 2).
    pub fn to_json_text(&self) -> String {
        let mut root = Object::new();
        root.insert("format", Variant::Int(MANIFEST_FORMAT));
        root.insert("version", Variant::Int(self.version as i64));
        root.insert("next_file", Variant::Int(self.next_file as i64));
        root.insert("retention", Variant::Int(self.retention as i64));
        root.insert("tables", tables_to_json(&self.tables));
        let history: Vec<Variant> = self
            .history
            .iter()
            .map(|rec| {
                let mut obj = Object::new();
                obj.insert("version", Variant::Int(rec.version as i64));
                obj.insert("tables", tables_to_json(&rec.tables));
                Variant::object(obj)
            })
            .collect();
        root.insert("history", Variant::array(history));
        to_json(&Variant::object(root))
    }

    /// Parses manifest JSON; every malformation is a typed `Storage` error.
    /// Accepts format 1 (pre-retention) manifests: they read back with an
    /// empty history and the default retention.
    pub fn from_json_text(text: &str) -> Result<Manifest> {
        let v = parse_json(text).map_err(|e| storage(format!("manifest is not valid JSON: {e}")))?;
        let root = v.as_object().ok_or_else(|| storage("manifest root is not an object"))?;
        let format = field_int(root, "format")?;
        if format != 1 && format != MANIFEST_FORMAT {
            return Err(storage(format!(
                "unsupported manifest format {format} (expected 1..={MANIFEST_FORMAT})"
            )));
        }
        let version = u64::try_from(field_int(root, "version")?)
            .map_err(|_| storage("manifest version is negative"))?;
        let next_file = u64::try_from(field_int(root, "next_file")?)
            .map_err(|_| storage("manifest next_file is negative"))?;
        let list = root
            .get("tables")
            .and_then(Variant::as_array)
            .ok_or_else(|| storage("manifest 'tables' is not an array"))?;
        let tables = tables_from_json(list)?;
        let (retention, history) = if format == 1 {
            (DEFAULT_RETENTION, Vec::new())
        } else {
            let retention = u64::try_from(field_int(root, "retention")?)
                .ok()
                .filter(|&r| r >= 1)
                .ok_or_else(|| storage("manifest retention must be ≥ 1"))?;
            let mut history = Vec::new();
            let mut prev: Option<u64> = None;
            for rec in root
                .get("history")
                .and_then(Variant::as_array)
                .ok_or_else(|| storage("manifest 'history' is not an array"))?
            {
                let obj = rec
                    .as_object()
                    .ok_or_else(|| storage("history entry is not an object"))?;
                let hv = u64::try_from(field_int(obj, "version")?)
                    .map_err(|_| storage("history version is negative"))?;
                if hv >= version || prev.is_some_and(|p| hv <= p) {
                    return Err(storage(format!(
                        "history version {hv} out of order (current {version})"
                    )));
                }
                prev = Some(hv);
                let list = obj
                    .get("tables")
                    .and_then(Variant::as_array)
                    .ok_or_else(|| storage("history 'tables' is not an array"))?;
                history.push(VersionRecord { version: hv, tables: tables_from_json(list)? });
            }
            (retention, history)
        };
        Ok(Manifest { version, next_file, retention, tables, history })
    }

    /// Every partition file referenced by the current version *or* any
    /// retained historical version — the GC live set.
    pub fn all_files(&self) -> std::collections::HashSet<String> {
        let mut live: std::collections::HashSet<String> = self
            .tables
            .values()
            .flat_map(|t| t.partitions.iter().map(|p| p.file.clone()))
            .collect();
        for rec in &self.history {
            live.extend(rec.tables.values().flat_map(|t| t.partitions.iter().map(|p| p.file.clone())));
        }
        live
    }

    /// Pushes the current version onto the history. Called at the start of
    /// every commit, *before* the version bump and mutation, so each commit
    /// retains its predecessor — eviction by [`Manifest::enforce_retention`]
    /// is then the only point where a file can become unreferenced. The
    /// initial empty version 0 is never archived: an empty catalog holds no
    /// files to protect and is not worth a retention slot.
    pub fn archive_current(&mut self) {
        if self.version == 0 {
            return;
        }
        self.history.push(VersionRecord {
            version: self.version,
            tables: self.tables.clone(),
        });
    }

    /// Drops history entries beyond the retention window (current version
    /// counts as one slot) and returns the evicted records — the GC's unlink
    /// candidates.
    pub fn enforce_retention(&mut self) -> Vec<VersionRecord> {
        let keep = self.retention.max(1).saturating_sub(1) as usize;
        if self.history.len() <= keep {
            return Vec::new();
        }
        let evict = self.history.len() - keep;
        self.history.drain(..evict).collect()
    }

    /// The table set as of `version`: the current tables when `version` is
    /// current, else the retained history record. `None` when the version
    /// was never committed or has been evicted from retention.
    pub fn tables_at(&self, version: u64) -> Option<&BTreeMap<String, TableManifest>> {
        if version == self.version {
            return Some(&self.tables);
        }
        self.history
            .iter()
            .rev()
            .find(|rec| rec.version == version)
            .map(|rec| &rec.tables)
    }

    /// Retained versions, ascending (history then current).
    pub fn retained_versions(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.history.iter().map(|r| r.version).collect();
        v.push(self.version);
        v
    }
}

fn field_int(obj: &Object, key: &str) -> Result<i64> {
    obj.get(key)
        .and_then(Variant::as_i64)
        .ok_or_else(|| storage(format!("manifest field '{key}' missing or not an integer")))
}

fn field_str(obj: &Object, key: &str) -> Result<String> {
    obj.get(key)
        .and_then(Variant::as_str)
        .map(str::to_string)
        .ok_or_else(|| storage(format!("manifest field '{key}' missing or not a string")))
}

/// Reads the committed manifest, or `None` when the directory has never
/// committed one (a fresh database).
pub fn read_manifest(dir: &Path) -> Result<Option<Manifest>> {
    let path = dir.join(MANIFEST_FILE);
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(storage(format!("{}: read: {e}", path.display()))),
    };
    Manifest::from_json_text(&text)
        .map(Some)
        .map_err(|e| match e {
            SnowError::Storage(m) => storage(format!("{}: {m}", path.display())),
            other => other,
        })
}

/// A [`ChaosSite::ManifestCommit`] injection point. Faults — including the
/// schedule's injected *panics* — surface as typed `Storage` errors: the
/// commit path runs on the caller's thread, outside the morsel layer's
/// panic isolation, so the crash simulation is contained right here.
fn chaos_point(chaos: Option<&ChaosSchedule>, op: &str) -> Result<()> {
    let Some(schedule) = chaos else { return Ok(()) };
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        schedule.maybe_inject(ChaosSite::ManifestCommit, op)
    })) {
        Ok(r) => r,
        Err(payload) => Err(storage(format!(
            "simulated crash during manifest commit: {}",
            crate::govern::panic_message(&*payload)
        ))),
    }
}

/// Atomically commits `manifest` into `dir` using the temp-write → fsync →
/// rename → fsync-dir protocol. On any error (real I/O or injected fault)
/// the previously committed manifest remains the visible version.
pub fn commit_manifest(
    dir: &Path,
    manifest: &Manifest,
    chaos: Option<&ChaosSchedule>,
) -> Result<()> {
    let tmp = dir.join(MANIFEST_TMP);
    let dst = dir.join(MANIFEST_FILE);
    let text = manifest.to_json_text();

    chaos_point(chaos, "ManifestCommit/prepare")?;

    let mut f = std::fs::File::create(&tmp)
        .map_err(|e| storage(format!("{}: create: {e}", tmp.display())))?;
    f.write_all(text.as_bytes())
        .map_err(|e| storage(format!("{}: write: {e}", tmp.display())))?;
    f.sync_all()
        .map_err(|e| storage(format!("{}: fsync: {e}", tmp.display())))?;
    drop(f);

    // The crash-injection point the recovery test targets: the temp file is
    // durable but the rename has not happened — reopen must see the old
    // version and ignore the debris.
    chaos_point(chaos, "ManifestCommit/rename")?;

    std::fs::rename(&tmp, &dst)
        .map_err(|e| storage(format!("{} -> {}: rename: {e}", tmp.display(), dst.display())))?;
    if let Ok(d) = std::fs::File::open(dir) {
        // Directory fsync makes the rename durable; best-effort on
        // filesystems that reject directory handles.
        let _ = d.sync_all();
    }

    // Crash *after* the commit point: the new version is durable on disk but
    // the caller has not yet observed success. Recovery (or the store's
    // resync-on-error path) must conclude the commit happened — the CAS
    // ambiguity every distributed commit protocol has to resolve.
    chaos_point(chaos, "ManifestCommit/publish")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        let mut tables = BTreeMap::new();
        tables.insert(
            "hep".to_string(),
            TableManifest {
                schema: vec![
                    ColumnDef::new("RUN", ColumnType::Int),
                    ColumnDef::new("MET", ColumnType::Variant),
                ],
                partitions: vec![
                    PartRef { file: "p0.part".into(), rows: 4096 },
                    PartRef { file: "p1.part".into(), rows: 17 },
                ],
            },
        );
        tables.insert(
            "empty".to_string(),
            TableManifest {
                schema: vec![ColumnDef::new("X", ColumnType::Str)],
                partitions: vec![],
            },
        );
        Manifest { version: 42, next_file: 7, tables, ..Manifest::default() }
    }

    #[test]
    fn manifest_json_roundtrip() {
        let m = sample();
        let text = m.to_json_text();
        let back = Manifest::from_json_text(&text).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn manifest_history_roundtrips_and_v1_reads_compat() {
        let mut m = sample();
        m.retention = 3;
        m.archive_current();
        m.history[0].version = 41;
        m.tables.remove("empty");
        let text = m.to_json_text();
        let back = Manifest::from_json_text(&text).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.history.len(), 1);
        assert_eq!(back.tables_at(41).unwrap().len(), 2);
        assert_eq!(back.tables_at(42).unwrap().len(), 1);
        assert!(back.tables_at(40).is_none());
        assert_eq!(back.retained_versions(), vec![41, 42]);
        // A format-1 manifest (no retention/history fields) still reads.
        let v1 = "{\"format\": 1, \"version\": 5, \"next_file\": 2, \"tables\": []}";
        let old = Manifest::from_json_text(v1).unwrap();
        assert_eq!(old.version, 5);
        assert_eq!(old.retention, DEFAULT_RETENTION);
        assert!(old.history.is_empty());
    }

    #[test]
    fn retention_eviction_returns_oldest_records() {
        let mut m = Manifest { retention: 3, ..Manifest::default() };
        for v in 0..6 {
            m.archive_current();
            m.version = v + 1;
            let evicted = m.enforce_retention();
            // With retention 3 the first evictions start once history holds
            // more than two entries.
            for rec in &evicted {
                assert!(rec.version + 2 < m.version);
            }
        }
        assert_eq!(m.history.len(), 2);
        assert_eq!(m.retained_versions(), vec![4, 5, 6]);
    }

    #[test]
    fn malformed_manifests_fail_typed() {
        for bad in [
            "not json at all",
            "[1,2,3]",
            "{\"format\": 99, \"version\": 1, \"next_file\": 0, \"tables\": []}",
            "{\"format\": 1, \"version\": 1, \"next_file\": 0, \"tables\": 3}",
            "{\"format\": 1, \"version\": 1, \"next_file\": 0, \"tables\": \
             [{\"name\": \"t\", \"columns\": [{\"name\": \"a\", \"type\": \"NOPE\"}], \"partitions\": []}]}",
            // Path traversal in a partition file name is rejected.
            "{\"format\": 1, \"version\": 1, \"next_file\": 0, \"tables\": \
             [{\"name\": \"t\", \"columns\": [], \"partitions\": [{\"file\": \"../evil\", \"rows\": 1}]}]}",
        ] {
            let err = Manifest::from_json_text(bad).unwrap_err();
            assert!(matches!(err, SnowError::Storage(_)), "{bad} -> {err}");
        }
    }

    #[test]
    fn commit_then_read_roundtrips_and_is_atomic_over_rewrites() {
        let dir = std::env::temp_dir().join(format!("snowdb-manifest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        assert!(read_manifest(&dir).unwrap().is_none());
        let mut m = sample();
        commit_manifest(&dir, &m, None).unwrap();
        assert_eq!(read_manifest(&dir).unwrap().unwrap(), m);
        // A second commit replaces the manifest atomically.
        m.version += 1;
        m.tables.remove("empty");
        commit_manifest(&dir, &m, None).unwrap();
        assert_eq!(read_manifest(&dir).unwrap().unwrap(), m);
        assert!(!dir.join(MANIFEST_TMP).exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
