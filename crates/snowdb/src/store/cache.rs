//! Shared LRU buffer cache over in-memory column blocks.
//!
//! One cache per [`Store`](super::Store), shared by every query against the
//! database — the analogue of a warehouse's local SSD cache in the paper's
//! Snowflake deployment. Entries are whole column blocks keyed by
//! `(partition file id, column index)`, held in their in-memory
//! representation — dictionary- and run-length-coded blocks stay *encoded*,
//! so a compressed column occupies proportionally less cache. A hit returns
//! the shared `Arc<ColumnData>` with **zero file I/O**, which is why a warm
//! disk scan reports `bytes_scanned = 0`.
//!
//! Interaction with the query governor: the cache itself is capacity-bounded
//! (in-memory bytes, LRU eviction), and each *miss* additionally
//! charges those bytes against the running query's
//! `STATEMENT_MEMORY_LIMIT` via
//! [`QueryGovernor::charge_memory`](crate::govern::QueryGovernor::charge_memory)
//! — the query that faults a block in pays for it, queries that merely reuse
//! it do not. Hit/miss/eviction counters are global monotone atomics exposed
//! through `EXPLAIN ANALYZE` and [`Store::cache_stats`](super::Store::cache_stats).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::storage::ColumnData;

/// Default cache capacity: 64 MiB of in-memory column data.
pub const DEFAULT_CACHE_BYTES: u64 = 64 << 20;

/// Key of one cached block: `(partition file id, column index)`.
pub type BlockKey = (u64, u32);

/// Outcome of one cache access, reported into the query's scan stats.
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheOutcome {
    /// True when the block was served from the cache (no file I/O).
    pub hit: bool,
    /// Number of blocks evicted to make room for this insertion.
    pub evictions: u64,
}

/// Monotone global counters for the cache.
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    /// Bytes of decoded data currently resident.
    pub used_bytes: u64,
    pub capacity_bytes: u64,
}

struct Entry {
    data: Arc<ColumnData>,
    bytes: u64,
    /// Last-touch tick; smallest tick is the LRU victim.
    tick: u64,
}

struct Inner {
    map: HashMap<BlockKey, Entry>,
    used: u64,
    tick: u64,
}

impl std::fmt::Debug for BufferCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("BufferCache")
            .field("used_bytes", &s.used_bytes)
            .field("capacity_bytes", &s.capacity_bytes)
            .finish_non_exhaustive()
    }
}

/// Capacity-bounded LRU cache of decoded column blocks.
pub struct BufferCache {
    capacity: AtomicU64,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl BufferCache {
    pub fn new(capacity: u64) -> BufferCache {
        BufferCache {
            capacity: AtomicU64::new(capacity),
            inner: Mutex::new(Inner { map: HashMap::new(), used: 0, tick: 0 }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Changes the capacity; an immediate eviction pass enforces it.
    pub fn set_capacity(&self, bytes: u64) {
        self.capacity.store(bytes, Ordering::Relaxed);
        let mut inner = self.inner.lock().expect("cache lock");
        let evicted = evict_to_fit(&mut inner, bytes, 0);
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
    }

    pub fn capacity(&self) -> u64 {
        self.capacity.load(Ordering::Relaxed)
    }

    /// Looks up a block, bumping its recency on a hit.
    pub fn get(&self, key: BlockKey) -> Option<Arc<ColumnData>> {
        let mut inner = self.inner.lock().expect("cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(&key) {
            Some(e) => {
                e.tick = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(e.data.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a freshly-loaded block, evicting LRU entries to fit. Blocks
    /// larger than the whole capacity are *not* cached (they would evict
    /// everything for a single-use entry); they still flow to the caller.
    /// Returns the number of evictions performed.
    pub fn insert(&self, key: BlockKey, data: Arc<ColumnData>, bytes: u64) -> u64 {
        let capacity = self.capacity();
        if bytes > capacity {
            return 0;
        }
        let mut inner = self.inner.lock().expect("cache lock");
        let evicted = evict_to_fit(&mut inner, capacity, bytes);
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(prev) = inner.map.insert(key, Entry { data, bytes, tick }) {
            inner.used -= prev.bytes;
        }
        inner.used += bytes;
        evicted
    }

    /// Drops every entry (used by the cold-scan benchmark and tests).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("cache lock");
        inner.map.clear();
        inner.used = 0;
    }

    /// Global counters plus current residency.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("cache lock");
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            used_bytes: inner.used,
            capacity_bytes: self.capacity(),
        }
    }
}

/// Evicts least-recently-used entries until `incoming` more bytes fit under
/// `capacity`. Linear victim scan: the cache holds whole column blocks, so
/// entry counts are small (thousands, not millions) and an O(n) scan per
/// miss is cheaper than maintaining an ordered structure under contention.
fn evict_to_fit(inner: &mut Inner, capacity: u64, incoming: u64) -> u64 {
    let mut evicted = 0u64;
    while inner.used + incoming > capacity && !inner.map.is_empty() {
        let victim = inner
            .map
            .iter()
            .min_by_key(|(_, e)| e.tick)
            .map(|(k, _)| *k)
            .expect("non-empty map has a minimum");
        if let Some(e) = inner.map.remove(&victim) {
            inner.used -= e.bytes;
            evicted += 1;
        }
    }
    evicted
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(n: i64) -> Arc<ColumnData> {
        Arc::new(ColumnData::Int(vec![Some(n)]))
    }

    #[test]
    fn hit_returns_shared_block_and_counts() {
        let c = BufferCache::new(1024);
        assert!(c.get((1, 0)).is_none());
        c.insert((1, 0), block(7), 100);
        let got = c.get((1, 0)).unwrap();
        assert_eq!(got.get(0), crate::Variant::Int(7));
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!(s.used_bytes, 100);
    }

    #[test]
    fn lru_evicts_least_recently_touched() {
        let c = BufferCache::new(250);
        c.insert((1, 0), block(1), 100);
        c.insert((2, 0), block(2), 100);
        // Touch (1,0) so (2,0) becomes the LRU victim.
        c.get((1, 0)).unwrap();
        let evicted = c.insert((3, 0), block(3), 100);
        assert_eq!(evicted, 1);
        assert!(c.get((1, 0)).is_some());
        assert!(c.get((2, 0)).is_none());
        assert!(c.get((3, 0)).is_some());
    }

    #[test]
    fn oversized_blocks_bypass_the_cache() {
        let c = BufferCache::new(50);
        c.insert((1, 0), block(1), 40);
        assert_eq!(c.insert((2, 0), block(2), 999), 0);
        // The resident entry survives; the oversized block was never cached.
        assert!(c.get((1, 0)).is_some());
        assert!(c.get((2, 0)).is_none());
        assert_eq!(c.stats().used_bytes, 40);
    }

    #[test]
    fn shrinking_capacity_evicts_immediately() {
        let c = BufferCache::new(300);
        for i in 0..3 {
            c.insert((i, 0), block(i as i64), 100);
        }
        c.set_capacity(100);
        let s = c.stats();
        assert!(s.used_bytes <= 100, "{s:?}");
        assert!(s.evictions >= 2, "{s:?}");
    }
}
