//! The engine facade: catalog plus the compile/execute query pipeline.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrd};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::RwLock;

use crate::error::{Result, SnowError};
use crate::exec::metrics::OpMetrics;
use crate::exec::{pipeline, ExecCtx};
use crate::govern::{
    GovernorSummary, QueryFailure, QueryGovernor, QueryHandle, SessionParams,
};
use crate::optimize::optimize;
use crate::plan::physical::{lower, PhysNode};
use crate::plan::{bind_query, Catalog, Node};
use crate::sql::{parse_query, parse_statement, Statement};
use crate::storage::{
    ColumnDef, MemSink, MicroPartition, PartitionSink, ScanSource, ScanStats, Table, TableBuilder,
};
use crate::store::Store;
use crate::variant::Variant;

/// Timing and scan metrics for one query, split exactly like the paper's §V:
/// compilation (parse + bind + optimize) versus execution, plus bytes scanned.
#[derive(Clone, Debug, Default)]
pub struct QueryProfile {
    pub compile_time: Duration,
    pub exec_time: Duration,
    pub scan: ScanStats,
    /// Per-operator metrics tree mirroring the executed plan (rows in/out,
    /// batches, busy time, peak intermediate rows/bytes, parallelism).
    pub metrics: Option<OpMetrics>,
    /// Governance accounting (time vs. deadline, memory and bytes scanned vs.
    /// budgets). Present when any session limit or fault schedule was armed.
    pub governed: Option<GovernorSummary>,
}

impl QueryProfile {
    /// Total in-engine time (the paper's "total query runtime in Snowflake").
    pub fn total_time(&self) -> Duration {
        self.compile_time + self.exec_time
    }
}

/// Outcome of [`Database::execute`].
// One value per statement, immediately consumed; boxing `Rows` would add an
// indirection for no measurable gain.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum StatementResult {
    Rows(QueryResult),
    Message(String),
}

/// A completed query: column names, row-major results, and the profile.
#[derive(Clone, Debug)]
pub struct QueryResult {
    pub columns: Vec<String>,
    pub rows: Vec<Vec<Variant>>,
    pub profile: QueryProfile,
}

impl QueryResult {
    /// Single scalar convenience accessor (first column of first row).
    pub fn scalar(&self) -> Option<&Variant> {
        self.rows.first().and_then(|r| r.first())
    }
}

/// An embedded Snowflake-like database: a catalog of immutable table snapshots
/// plus the query pipeline.
///
/// Cloning handles is cheap; the catalog is behind a lock, table data is not.
#[derive(Default)]
pub struct Database {
    tables: RwLock<HashMap<String, Arc<Table>>>,
    /// Explicit worker-thread override; `None` falls back to the
    /// `SNOWDB_THREADS` environment variable, then to the machine's
    /// available parallelism.
    threads: RwLock<Option<usize>>,
    /// Schema generation: bumped on every catalog mutation (load, register,
    /// drop, insert-rebuild). Compiled artifacts derived from the catalog —
    /// e.g. cached query translations — key on this stamp so a re-ingested or
    /// altered table can never serve results bound to the old schema.
    generation: AtomicU64,
    /// Session parameters (`SET STATEMENT_TIMEOUT_IN_SECONDS = ...`); a fresh
    /// [`QueryGovernor`] is armed from them for every statement.
    params: RwLock<SessionParams>,
    /// Attached persistent store ([`Database::open`] / [`Database::persist_to`]);
    /// `None` for a purely in-memory database. When attached, every catalog
    /// mutation commits a new manifest version and newly loaded tables stream
    /// their partitions to disk.
    store: RwLock<Option<Arc<Store>>>,
}

/// Sink adapter charging every sealed partition against a query governor
/// before handing it to the real destination — this is what bounds (and
/// faults, under chaos schedules) streaming ingest.
struct GovernedSink {
    inner: Box<dyn PartitionSink>,
    gov: Arc<QueryGovernor>,
}

impl PartitionSink for GovernedSink {
    fn flush(&self, part: MicroPartition) -> Result<Arc<ScanSource>> {
        self.gov.charge_memory(part.total_bytes(), "Ingest")?;
        self.inner.flush(part)
    }
}

/// Per-call execution options for [`Database::query_with`].
///
/// The defaults reproduce [`Database::query`]: optimized plan, thread count
/// resolved from the database override / `SNOWDB_THREADS` / machine
/// parallelism. The verification oracle uses explicit options to walk the
/// configuration lattice without mutating shared database state.
#[derive(Clone, Copy, Debug)]
pub struct QueryOptions {
    /// Run the optimizer passes (`false` executes the raw bound plan).
    pub optimize: bool,
    /// Explicit worker-thread count; `None` uses the database default.
    pub threads: Option<usize>,
    /// Use the typed vectorized kernels; `None` resolves from
    /// `SNOWDB_VECTORIZE` (on unless set to `0`/`false`/`off`).
    pub vectorize: Option<bool>,
    /// Let encoded (dictionary / run-length) column blocks flow into the
    /// executor; `None` resolves from `SNOWDB_ENCODE` (on unless set to
    /// `0`/`false`/`off`). When off, scans decode every block at the
    /// pipeline boundary.
    pub encode: Option<bool>,
}

impl Default for QueryOptions {
    fn default() -> QueryOptions {
        QueryOptions { optimize: true, threads: None, vectorize: None, encode: None }
    }
}

struct CatalogView<'a>(&'a Database);

impl Catalog for CatalogView<'_> {
    fn table(&self, name: &str) -> Option<Arc<Table>> {
        self.0.tables.read().get(&name.to_ascii_uppercase()).cloned()
    }
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Loads a table from rows in one shot, replacing any same-named table.
    pub fn load_table<I>(&self, name: &str, schema: Vec<ColumnDef>, rows: I) -> Result<()>
    where
        I: IntoIterator<Item = Vec<Variant>>,
    {
        self.load_table_with_partition_rows(
            name,
            schema,
            rows,
            crate::storage::DEFAULT_PARTITION_ROWS,
        )
    }

    /// Loads a table with an explicit micro-partition size.
    pub fn load_table_with_partition_rows<I>(
        &self,
        name: &str,
        schema: Vec<ColumnDef>,
        rows: I,
        partition_rows: usize,
    ) -> Result<()>
    where
        I: IntoIterator<Item = Vec<Variant>>,
    {
        self.load_table_stream(name, schema, rows.into_iter().map(Ok), partition_rows)
    }

    /// Streaming loader core: rows arrive through a fallible iterator (so a
    /// file/parse error aborts the load, not the process), partitions seal
    /// and flush incrementally — straight to partition files when a
    /// persistent store is attached — and every sealed partition is charged
    /// against a governor armed from the session parameters. Peak memory is
    /// one open partition regardless of table size.
    pub fn load_table_stream<I>(
        &self,
        name: &str,
        schema: Vec<ColumnDef>,
        rows: I,
        partition_rows: usize,
    ) -> Result<()>
    where
        I: IntoIterator<Item = Result<Vec<Variant>>>,
    {
        let upper = name.to_ascii_uppercase();
        let gov = Arc::new(QueryGovernor::from_params(&self.session_params()));
        let store = self.store();
        let disk = store.as_ref().map(|s| s.sink(schema.clone()));
        let inner: Box<dyn PartitionSink> = match &disk {
            Some(d) => Box::new(d.clone()),
            None => Box::new(MemSink),
        };
        let sink = GovernedSink { inner, gov };
        let mut b =
            TableBuilder::with_sink(upper.clone(), schema.clone(), partition_rows, Box::new(sink));
        for row in rows {
            b.push_row(&row?)?;
        }
        let table = Arc::new(b.finish()?);
        if let (Some(s), Some(d)) = (&store, &disk) {
            // Publish atomically; on failure the fresh files stay invisible
            // debris and the previous table version remains live.
            s.commit_table(&upper, schema, d.refs())?;
        }
        self.tables.write().insert(upper, table);
        self.generation.fetch_add(1, AtomicOrd::Relaxed);
        Ok(())
    }

    /// Opens (or initializes) a persistent database directory. Every
    /// committed table is reconstructed lazily — footers are read, column
    /// data is not — and subsequent catalog mutations commit new manifest
    /// versions to the same directory.
    pub fn open(dir: impl AsRef<std::path::Path>) -> Result<Database> {
        let (store, tables) = Store::open(dir)?;
        let db = Database::new();
        {
            let mut map = db.tables.write();
            for t in tables {
                map.insert(t.name().to_ascii_uppercase(), Arc::new(t));
            }
        }
        *db.store.write() = Some(store);
        Ok(db)
    }

    /// Persists the current catalog into a fresh database directory and
    /// attaches it: every partition is written as an immutable partition
    /// file, each table is committed to the manifest, and the in-memory
    /// snapshots are swapped for their disk-backed (lazily read) versions.
    /// Refuses a directory that already holds a database.
    pub fn persist_to(&self, dir: impl AsRef<std::path::Path>) -> Result<()> {
        let store = Store::create(dir)?;
        let snapshot: Vec<Arc<Table>> = self.tables.read().values().cloned().collect();
        let mut rebuilt = Vec::with_capacity(snapshot.len());
        for t in snapshot {
            let mut sources = Vec::with_capacity(t.partitions().len());
            let mut refs = Vec::with_capacity(t.partitions().len());
            for part in t.partitions() {
                let (src, pref) = store.write_partition(&part.to_mem()?, t.schema())?;
                sources.push(src);
                refs.push(pref);
            }
            store.commit_table(t.name(), t.schema().to_vec(), refs)?;
            rebuilt.push(Table::from_parts(t.name().to_string(), t.schema().to_vec(), sources));
        }
        let mut map = self.tables.write();
        for t in rebuilt {
            map.insert(t.name().to_ascii_uppercase(), Arc::new(t));
        }
        drop(map);
        *self.store.write() = Some(store);
        self.generation.fetch_add(1, AtomicOrd::Relaxed);
        Ok(())
    }

    /// The attached persistent store, if any.
    pub fn store(&self) -> Option<Arc<Store>> {
        self.store.read().clone()
    }

    /// Registers a pre-built table snapshot.
    pub fn register(&self, table: Table) {
        let name = table.name().to_ascii_uppercase();
        self.tables.write().insert(name, Arc::new(table));
        self.generation.fetch_add(1, AtomicOrd::Relaxed);
    }

    /// Removes a table; returns whether it existed. Infallible legacy shim
    /// over [`Database::drop_table_checked`]; a failed persistent-catalog
    /// commit reports `false` and leaves the table in place.
    pub fn drop_table(&self, name: &str) -> bool {
        self.drop_table_checked(name).unwrap_or(false)
    }

    /// Removes a table, committing the drop to the persistent catalog when a
    /// store is attached. The in-memory catalog only changes after the commit
    /// succeeds, so a failed commit leaves both views consistent.
    pub fn drop_table_checked(&self, name: &str) -> Result<bool> {
        let upper = name.to_ascii_uppercase();
        if !self.tables.read().contains_key(&upper) {
            return Ok(false);
        }
        if let Some(s) = self.store() {
            s.commit_drop(&upper)?;
        }
        let existed = self.tables.write().remove(&upper).is_some();
        if existed {
            self.generation.fetch_add(1, AtomicOrd::Relaxed);
        }
        Ok(existed)
    }

    /// Current schema generation; changes whenever the catalog does. Anything
    /// compiled against the catalog (cached translations, prepared plans)
    /// should treat a different stamp as a different database.
    pub fn schema_generation(&self) -> u64 {
        self.generation.load(AtomicOrd::Relaxed)
    }

    /// Fetches a table snapshot.
    pub fn table(&self, name: &str) -> Option<Arc<Table>> {
        CatalogView(self).table(name)
    }

    /// Names of all tables.
    pub fn table_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.tables.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Compiles a SQL query to an optimized plan (parse + bind + optimize).
    pub fn compile(&self, sql: &str) -> Result<Node> {
        self.compile_with(sql, true)
    }

    /// Compiles a SQL query, optionally skipping the optimizer: the raw bound
    /// plan executes on the same pipeline, which is what lets the verification
    /// oracle compare optimized against unoptimized results.
    pub fn compile_with(&self, sql: &str, optimize_plan: bool) -> Result<Node> {
        let ast = parse_query(sql)?;
        let bound = bind_query(&ast, &CatalogView(self))?;
        if optimize_plan {
            optimize(bound)
        } else {
            Ok(bound)
        }
    }

    /// Overrides the worker-thread count for this database's queries.
    /// `None` restores the default resolution (`SNOWDB_THREADS` environment
    /// variable, then available parallelism); values are clamped to ≥ 1.
    pub fn set_threads(&self, threads: Option<usize>) {
        *self.threads.write() = threads.map(|t| t.max(1));
    }

    /// Worker count for the next query: explicit override, else the
    /// `SNOWDB_THREADS` environment variable (re-read per query), else the
    /// machine's available parallelism. 1 means fully inline serial
    /// execution — no threads are spawned.
    pub fn effective_threads(&self) -> usize {
        if let Some(t) = *self.threads.read() {
            return t;
        }
        if let Some(t) = std::env::var("SNOWDB_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
        {
            return t.max(1);
        }
        std::thread::available_parallelism().map_or(1, |n| n.get())
    }

    /// Runs a SQL query end to end, reporting a per-phase [`QueryProfile`].
    pub fn query(&self, sql: &str) -> Result<QueryResult> {
        self.query_with(sql, &QueryOptions::default())
    }

    /// Runs a SQL query under explicit execution options (optimizer on/off,
    /// thread count) without touching the database-wide defaults. The query
    /// runs under a governor armed from the session parameters.
    pub fn query_with(&self, sql: &str, opts: &QueryOptions) -> Result<QueryResult> {
        let gov = Arc::new(QueryGovernor::from_params(&self.session_params()));
        self.query_governed(sql, opts, gov).map_err(SnowError::from)
    }

    /// Runs a SQL query under an explicit [`QueryGovernor`]. On failure the
    /// [`QueryFailure`] carries the typed error plus the partial per-operator
    /// metrics tree accumulated up to the abort — the diagnosable form of a
    /// cancellation, deadline, or budget trip. The chaos harness drives this
    /// entry point directly with fault-schedule governors.
    // The large Err carries the whole diagnosis (summary + partial metrics);
    // it is built once on an already-failed, cold path.
    #[allow(clippy::result_large_err)]
    pub fn query_governed(
        &self,
        sql: &str,
        opts: &QueryOptions,
        gov: Arc<QueryGovernor>,
    ) -> std::result::Result<QueryResult, QueryFailure> {
        let t0 = Instant::now();
        let plan = match self.compile_with(sql, opts.optimize) {
            Ok(p) => p,
            Err(error) => {
                return Err(QueryFailure {
                    error,
                    partial_metrics: None,
                    summary: gov.summary(),
                })
            }
        };
        let compile_time = t0.elapsed();

        let threads = opts.threads.map_or_else(|| self.effective_threads(), |t| t.max(1));
        let vectorize =
            opts.vectorize.unwrap_or_else(crate::exec::vectorize_from_env);
        let encode = opts.encode.unwrap_or_else(crate::storage::encode_from_env);
        let (batches, phys_metrics, ctx, exec_time) =
            self.run_physical(&plan, threads, vectorize, encode, gov.clone());
        let batches = match batches {
            Ok(b) => b,
            Err(error) => {
                return Err(QueryFailure {
                    error,
                    partial_metrics: Some(phys_metrics),
                    summary: gov.summary(),
                })
            }
        };

        let columns = plan.fields.iter().map(|f| f.name.clone()).collect();
        let mut rows = Vec::with_capacity(pipeline::total_rows(&batches));
        for chunk in batches {
            // Result boundary: drain each batch's columns into row vectors —
            // values are moved, never cloned per cell.
            rows.extend(chunk.into_rows());
        }
        Ok(QueryResult {
            columns,
            rows,
            profile: QueryProfile {
                compile_time,
                exec_time,
                scan: ctx.stats,
                metrics: Some(phys_metrics),
                governed: gov.is_armed().then(|| gov.summary()),
            },
        })
    }

    /// Submits a query on a background thread, returning a cancellable
    /// [`QueryHandle`]. The governor is armed from the session parameters at
    /// submit time; [`QueryHandle::cancel`] trips it at the next batch
    /// boundary.
    pub fn execute_governed(self: &Arc<Database>, sql: &str) -> QueryHandle {
        let gov = Arc::new(QueryGovernor::from_params(&self.session_params()));
        let db = Arc::clone(self);
        let g = gov.clone();
        let sql = sql.to_string();
        #[allow(clippy::result_large_err)]
        let join = std::thread::spawn(move || {
            db.query_governed(&sql, &QueryOptions::default(), g)
        });
        QueryHandle::new(gov, join)
    }

    /// Executes an optimized plan on the morsel-parallel pipeline, returning
    /// batches, the metrics snapshot, the execution context, and wall time.
    /// Metrics and context come back even when execution fails — that is what
    /// makes a governance trip diagnosable from its partial metrics tree.
    fn run_physical(
        &self,
        plan: &Node,
        threads: usize,
        vectorize: bool,
        encode: bool,
        gov: Arc<QueryGovernor>,
    ) -> (Result<Vec<crate::exec::Chunk>>, OpMetrics, ExecCtx, Duration) {
        let t = Instant::now();
        let phys: PhysNode<'_> = lower(plan, threads);
        let mut ctx = ExecCtx::worker(gov, vectorize, encode);
        // Last line of panic isolation: a panic escaping the morsel layer's
        // catch_unwind (e.g. one injected at a claim gate) must not cross the
        // engine boundary. The catalog is only read during execution and all
        // engine locks are parking_lot (non-poisoning), so unwinding to here
        // leaves the database fully usable.
        let batches = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pipeline::execute_physical(&phys, &mut ctx)
        }))
        .unwrap_or_else(|payload| {
            Err(SnowError::internal(
                "executor",
                crate::govern::panic_message(&*payload),
            ))
        });
        let exec_time = t.elapsed();
        (batches, phys.snapshot(), ctx, exec_time)
    }

    /// Renders the optimized plan of a query (`EXPLAIN`).
    pub fn explain(&self, sql: &str) -> Result<String> {
        Ok(crate::plan::explain(&self.compile(sql)?))
    }

    /// Renders the plan with or without the optimizer passes applied — the
    /// divergence reports of the verification oracle show both.
    pub fn explain_with(&self, sql: &str, optimize_plan: bool) -> Result<String> {
        Ok(crate::plan::explain(&self.compile_with(sql, optimize_plan)?))
    }

    /// Runs the query and renders its plan annotated with the measured
    /// per-operator metrics (`EXPLAIN ANALYZE`).
    pub fn explain_analyze(&self, sql: &str) -> Result<String> {
        let plan = self.compile(sql)?;
        self.explain_analyze_plan(&plan)
    }

    fn explain_analyze_plan(&self, plan: &Node) -> Result<String> {
        let gov = Arc::new(QueryGovernor::from_params(&self.session_params()));
        let (batches, metrics, ctx, exec_time) = self.run_physical(
            plan,
            self.effective_threads(),
            crate::exec::vectorize_from_env(),
            crate::storage::encode_from_env(),
            gov.clone(),
        );
        let batches = batches?;
        let rows = pipeline::total_rows(&batches);
        let mut out = crate::plan::explain_analyze(plan, &metrics);
        let _ = std::fmt::Write::write_fmt(
            &mut out,
            format_args!(
                "-- {} row(s) in {:.3?}; {} bytes scanned, {}/{} partitions\n",
                rows,
                exec_time,
                ctx.stats.bytes_scanned,
                ctx.stats.partitions_scanned,
                ctx.stats.partitions_total,
            ),
        );
        let _ = std::fmt::Write::write_fmt(
            &mut out,
            format_args!(
                "-- pruned: {} partition(s), {} column block(s) skipped, {} bytes saved\n",
                ctx.stats.partitions_pruned, ctx.stats.columns_skipped, ctx.stats.bytes_skipped,
            ),
        );
        if ctx.stats.cache_hits + ctx.stats.cache_misses > 0 {
            let _ = std::fmt::Write::write_fmt(
                &mut out,
                format_args!(
                    "-- buffer cache: {} hit(s), {} miss(es), {} eviction(s)\n",
                    ctx.stats.cache_hits, ctx.stats.cache_misses, ctx.stats.cache_evictions,
                ),
            );
        }
        if gov.is_armed() {
            let _ = std::fmt::Write::write_fmt(
                &mut out,
                format_args!("-- {}\n", gov.summary().render()),
            );
        }
        Ok(out)
    }

    /// Current session parameters.
    pub fn session_params(&self) -> SessionParams {
        *self.params.read()
    }

    /// Sets a session parameter (`0` clears, Snowflake-style); returns its
    /// canonical name.
    pub fn set_session_param(&self, name: &str, value: u64) -> Result<&'static str> {
        self.params.write().set(name, value)
    }

    /// Clears a session parameter; returns its canonical name.
    pub fn unset_session_param(&self, name: &str) -> Result<&'static str> {
        self.params.write().unset(name)
    }

    /// Executes any statement: queries return rows, DDL/DML return a message.
    ///
    /// `INSERT` rebuilds the table snapshot (tables are immutable); it is meant
    /// for interactive use, not bulk loading — use [`Database::load_table`]
    /// for that.
    pub fn execute(&self, sql: &str) -> Result<StatementResult> {
        match parse_statement(sql)? {
            Statement::Query(_) => Ok(StatementResult::Rows(self.query(sql)?)),
            Statement::Verify(query_sql) => {
                let report = crate::verify::verify_sql(
                    self,
                    &query_sql,
                    &crate::verify::default_lattice(self.effective_threads()),
                    crate::verify::DEFAULT_EPSILON,
                )?;
                Ok(StatementResult::Message(report.render()))
            }
            Statement::Explain(q) => {
                let bound = crate::plan::bind_query(&q, &CatalogView(self))?;
                let plan = crate::optimize::optimize(bound)?;
                Ok(StatementResult::Message(crate::plan::explain(&plan)))
            }
            Statement::ExplainAnalyze(q) => {
                let bound = crate::plan::bind_query(&q, &CatalogView(self))?;
                let plan = crate::optimize::optimize(bound)?;
                Ok(StatementResult::Message(self.explain_analyze_plan(&plan)?))
            }
            Statement::CreateTable { name, columns } => {
                if self.table(&name).is_some() {
                    return Err(SnowError::Catalog(format!("table '{name}' already exists")));
                }
                let schema = columns
                    .into_iter()
                    .map(|(n, ty)| crate::storage::ColumnDef::new(n, ty))
                    .collect();
                self.load_table(&name, schema, std::iter::empty())?;
                Ok(StatementResult::Message(format!("created table {name}")))
            }
            Statement::Insert { table, rows } => {
                let t = self.table(&table).ok_or_else(|| {
                    SnowError::Catalog(format!("table '{table}' does not exist"))
                })?;
                // Evaluate each VALUES tuple as literal expressions.
                let mut ctx = ExecCtx::default();
                let chunk = crate::exec::Chunk { cols: Vec::new(), rows: 1 };
                let parts = [(&chunk, 0usize)];
                let view = crate::exec::RowView::new(&parts);
                let mut new_rows: Vec<Vec<Variant>> = Vec::with_capacity(rows.len());
                for tuple in rows {
                    if tuple.len() != t.schema().len() {
                        return Err(SnowError::Catalog(format!(
                            "INSERT arity {} does not match table arity {}",
                            tuple.len(),
                            t.schema().len()
                        )));
                    }
                    let mut row = Vec::with_capacity(tuple.len());
                    for e in tuple {
                        let bound = crate::plan::binder::bind_expr(&e, &[], None)?;
                        row.push(crate::exec::eval(&bound, view, &mut ctx)?);
                    }
                    new_rows.push(row);
                }
                let inserted = new_rows.len();
                // Rebuild: existing rows + new rows. Disk-backed partitions
                // are materialized through the buffer cache.
                let mut all: Vec<Vec<Variant>> = Vec::with_capacity(t.row_count() + inserted);
                for part in t.partitions() {
                    let mem = part.to_mem()?;
                    for r in 0..mem.row_count() {
                        all.push((0..t.schema().len()).map(|c| mem.column(c).get(r)).collect());
                    }
                }
                all.extend(new_rows);
                self.load_table(&table, t.schema().to_vec(), all)?;
                Ok(StatementResult::Message(format!("inserted {inserted} row(s)")))
            }
            Statement::DropTable { name, if_exists } => {
                let existed = self.drop_table_checked(&name)?;
                if !existed && !if_exists {
                    return Err(SnowError::Catalog(format!("table '{name}' does not exist")));
                }
                Ok(StatementResult::Message(format!("dropped table {name}")))
            }
            Statement::Set { name, value } => {
                let canonical = self.set_session_param(&name, value)?;
                Ok(StatementResult::Message(if value == 0 {
                    format!("{canonical} cleared")
                } else {
                    format!("{canonical} set to {value}")
                }))
            }
            Statement::Unset { name } => {
                let canonical = self.unset_session_param(&name)?;
                Ok(StatementResult::Message(format!("{canonical} cleared")))
            }
        }
    }

    /// Runs a query and requires a single scalar result.
    pub fn query_scalar(&self, sql: &str) -> Result<Variant> {
        let res = self.query(sql)?;
        res.scalar()
            .cloned()
            .ok_or_else(|| SnowError::Exec("query produced no rows".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::ColumnType;

    fn db_with_nums() -> Database {
        let db = Database::new();
        db.load_table(
            "nums",
            vec![
                ColumnDef::new("A", ColumnType::Int),
                ColumnDef::new("B", ColumnType::Float),
            ],
            (0..10).map(|i| vec![Variant::Int(i), Variant::Float(i as f64 * 0.5)]),
        )
        .unwrap();
        db
    }

    #[test]
    fn basic_select_where() {
        let db = db_with_nums();
        let r = db.query("SELECT a FROM nums WHERE a >= 7 ORDER BY a").unwrap();
        assert_eq!(r.rows.len(), 3);
        assert_eq!(r.rows[0][0], Variant::Int(7));
        assert_eq!(r.columns, vec!["A"]);
    }

    #[test]
    fn aggregate_group_by() {
        let db = db_with_nums();
        let r = db
            .query("SELECT a % 2 AS p, count(*) AS c, sum(a) AS s FROM nums GROUP BY a % 2 ORDER BY p")
            .unwrap();
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0], vec![Variant::Int(0), Variant::Int(5), Variant::Int(20)]);
        assert_eq!(r.rows[1], vec![Variant::Int(1), Variant::Int(5), Variant::Int(25)]);
    }

    #[test]
    fn global_aggregate_over_empty_input() {
        let db = db_with_nums();
        let r = db.query("SELECT count(*), sum(a) FROM nums WHERE a > 100").unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0], Variant::Int(0));
        assert!(r.rows[0][1].is_null());
    }

    #[test]
    fn unknown_table_is_a_plan_error() {
        let db = Database::new();
        match db.query("SELECT * FROM missing") {
            Err(SnowError::Plan(_)) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn profile_reports_bytes_scanned() {
        let db = db_with_nums();
        let full = db.query("SELECT a, b FROM nums").unwrap();
        let narrow = db.query("SELECT a FROM nums").unwrap();
        assert!(full.profile.scan.bytes_scanned > narrow.profile.scan.bytes_scanned);
        assert!(narrow.profile.scan.bytes_scanned > 0);
    }

    #[test]
    fn zone_map_pruning_skips_partitions() {
        let db = Database::new();
        db.load_table_with_partition_rows(
            "t",
            vec![ColumnDef::new("X", ColumnType::Int)],
            (0..100).map(|i| vec![Variant::Int(i)]),
            10,
        )
        .unwrap();
        let r = db.query("SELECT x FROM t WHERE x >= 95").unwrap();
        assert_eq!(r.rows.len(), 5);
        assert_eq!(r.profile.scan.partitions_total, 10);
        assert_eq!(r.profile.scan.partitions_scanned, 1);
    }

    #[test]
    fn union_all_and_limit() {
        let db = db_with_nums();
        let r = db
            .query("SELECT a FROM nums UNION ALL SELECT a FROM nums ORDER BY a LIMIT 4")
            .unwrap();
        assert_eq!(r.rows.len(), 4);
        assert_eq!(r.rows[0][0], Variant::Int(0));
        assert_eq!(r.rows[1][0], Variant::Int(0));
    }

    #[test]
    fn distinct_dedups() {
        let db = db_with_nums();
        let r = db.query("SELECT DISTINCT a % 3 AS m FROM nums ORDER BY m").unwrap();
        assert_eq!(r.rows.len(), 3);
    }

    #[test]
    fn select_without_from() {
        let db = Database::new();
        let r = db.query("SELECT 1 + 2 AS x, 'hi' AS y").unwrap();
        assert_eq!(r.rows, vec![vec![Variant::Int(3), Variant::str("hi")]]);
    }
}
