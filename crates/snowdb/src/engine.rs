//! The engine facade: a multi-version catalog plus the compile/execute query
//! pipeline.
//!
//! Every statement pins one immutable [`CatalogSnapshot`] and runs against it
//! end to end — concurrent commits never change what an in-flight query sees.
//! Writers prepare partitions off to the side and commit through an optimistic
//! compare-and-swap on the catalog version ([`Database::commit_writes`]); a
//! lost race surfaces as [`SnowError::WriteConflict`] and the auto-commit DML
//! paths retry on a fresh snapshot under a seeded, bounded backoff.

use std::sync::atomic::{AtomicU64, Ordering as AtomicOrd};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::RwLock;

use crate::catalog::{CatalogSnapshot, SharedCatalog, TableEntry, TableWrite, WriteSet};
use crate::error::{Result, SnowError};
use crate::exec::metrics::OpMetrics;
use crate::exec::{pipeline, ExecCtx};
use crate::govern::retry::{self, RetryPolicy};
use crate::govern::{
    GovernorSummary, QueryFailure, QueryGovernor, QueryHandle, SessionParams,
};
use crate::optimize::optimize;
use crate::plan::physical::{lower, PhysNode};
use crate::plan::{bind_query, Field, Node, PExpr};
use crate::sql::ast::{Expr, Travel};
use crate::sql::{parse_query, parse_statement, Statement};
use crate::storage::{
    ColumnDef, MemSink, MicroPartition, PartitionSink, ScanSource, ScanStats, Table, TableBuilder,
    DEFAULT_PARTITION_ROWS,
};
use crate::store::Store;
use crate::variant::Variant;

/// Timing and scan metrics for one query, split exactly like the paper's §V:
/// compilation (parse + bind + optimize) versus execution, plus bytes scanned.
#[derive(Clone, Debug, Default)]
pub struct QueryProfile {
    pub compile_time: Duration,
    pub exec_time: Duration,
    pub scan: ScanStats,
    /// Per-operator metrics tree mirroring the executed plan (rows in/out,
    /// batches, busy time, peak intermediate rows/bytes, parallelism).
    pub metrics: Option<OpMetrics>,
    /// Governance accounting (time vs. deadline, memory and bytes scanned vs.
    /// budgets). Present when any session limit or fault schedule was armed.
    pub governed: Option<GovernorSummary>,
}

impl QueryProfile {
    /// Total in-engine time (the paper's "total query runtime in Snowflake").
    pub fn total_time(&self) -> Duration {
        self.compile_time + self.exec_time
    }
}

/// Outcome of [`Database::execute`].
// One value per statement, immediately consumed; boxing `Rows` would add an
// indirection for no measurable gain.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum StatementResult {
    Rows(QueryResult),
    Message(String),
}

/// A completed query: column names, row-major results, and the profile.
#[derive(Clone, Debug)]
pub struct QueryResult {
    pub columns: Vec<String>,
    pub rows: Vec<Vec<Variant>>,
    pub profile: QueryProfile,
}

impl QueryResult {
    /// Single scalar convenience accessor (first column of first row).
    pub fn scalar(&self) -> Option<&Variant> {
        self.rows.first().and_then(|r| r.first())
    }
}

/// An embedded Snowflake-like database: a multi-version catalog of immutable
/// table snapshots plus the query pipeline.
///
/// The catalog is MVCC: readers pin an `Arc`'d [`CatalogSnapshot`] and never
/// block writers; writers commit optimistically and serialize only on the
/// commit point itself. Cloning handles is cheap; table data is never behind
/// a lock.
#[derive(Default)]
pub struct Database {
    /// The current catalog version plus the commit serialization point.
    catalog: SharedCatalog,
    /// Explicit worker-thread override; `None` falls back to the
    /// `SNOWDB_THREADS` environment variable, then to the machine's
    /// available parallelism.
    threads: RwLock<Option<usize>>,
    /// Session parameters (`SET STATEMENT_TIMEOUT_IN_SECONDS = ...`); a fresh
    /// [`QueryGovernor`] is armed from them for every statement run directly
    /// on the database. [`crate::session::Session`]s carry their own.
    params: RwLock<SessionParams>,
    /// Attached persistent store ([`Database::open`] / [`Database::persist_to`]);
    /// `None` for a purely in-memory database. When attached, every catalog
    /// commit also commits a new manifest version and newly loaded tables
    /// stream their partitions to disk.
    store: RwLock<Option<Arc<Store>>>,
    /// Monotonic counter feeding per-commit retry-jitter seeds, so contending
    /// writers on one database desynchronize deterministically.
    commit_seq: AtomicU64,
}

/// Sink adapter charging every sealed partition against a query governor
/// before handing it to the real destination — this is what bounds (and
/// faults, under chaos schedules) streaming ingest and DML rewrites.
struct GovernedSink {
    inner: Box<dyn PartitionSink>,
    gov: Arc<QueryGovernor>,
}

impl PartitionSink for GovernedSink {
    fn flush(&self, part: MicroPartition) -> Result<Arc<ScanSource>> {
        self.gov.charge_memory(part.total_bytes(), "Ingest")?;
        self.inner.flush(part)
    }
}

/// Per-call execution options for [`Database::query_with`].
///
/// The defaults reproduce [`Database::query`]: optimized plan, thread count
/// resolved from the database override / `SNOWDB_THREADS` / machine
/// parallelism. The verification oracle uses explicit options to walk the
/// configuration lattice without mutating shared database state.
#[derive(Clone, Copy, Debug)]
pub struct QueryOptions {
    /// Run the optimizer passes (`false` executes the raw bound plan).
    pub optimize: bool,
    /// Explicit worker-thread count; `None` uses the database default.
    pub threads: Option<usize>,
    /// Use the typed vectorized kernels; `None` resolves from
    /// `SNOWDB_VECTORIZE` (on unless set to `0`/`false`/`off`).
    pub vectorize: Option<bool>,
    /// Let encoded (dictionary / run-length) column blocks flow into the
    /// executor; `None` resolves from `SNOWDB_ENCODE` (on unless set to
    /// `0`/`false`/`off`). When off, scans decode every block at the
    /// pipeline boundary.
    pub encode: Option<bool>,
}

impl Default for QueryOptions {
    fn default() -> QueryOptions {
        QueryOptions { optimize: true, threads: None, vectorize: None, encode: None }
    }
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Loads a table from rows in one shot, replacing any same-named table.
    pub fn load_table<I>(&self, name: &str, schema: Vec<ColumnDef>, rows: I) -> Result<()>
    where
        I: IntoIterator<Item = Vec<Variant>>,
    {
        self.load_table_with_partition_rows(
            name,
            schema,
            rows,
            crate::storage::DEFAULT_PARTITION_ROWS,
        )
    }

    /// Loads a table with an explicit micro-partition size.
    pub fn load_table_with_partition_rows<I>(
        &self,
        name: &str,
        schema: Vec<ColumnDef>,
        rows: I,
        partition_rows: usize,
    ) -> Result<()>
    where
        I: IntoIterator<Item = Vec<Variant>>,
    {
        self.load_table_stream(name, schema, rows.into_iter().map(Ok), partition_rows)
    }

    /// Streaming loader core: rows arrive through a fallible iterator (so a
    /// file/parse error aborts the load, not the process), partitions seal
    /// and flush incrementally — straight to partition files when a
    /// persistent store is attached — and every sealed partition is charged
    /// against a governor armed from the session parameters. Peak memory is
    /// one open partition regardless of table size.
    ///
    /// A load *replaces* any same-named table (last writer wins); it commits
    /// against the catalog version current at commit time and therefore never
    /// trips a write conflict.
    pub fn load_table_stream<I>(
        &self,
        name: &str,
        schema: Vec<ColumnDef>,
        rows: I,
        partition_rows: usize,
    ) -> Result<()>
    where
        I: IntoIterator<Item = Result<Vec<Variant>>>,
    {
        let upper = name.to_ascii_uppercase();
        let gov = Arc::new(QueryGovernor::from_params(&self.session_params()));
        let store = self.store();
        let inner: Box<dyn PartitionSink> = match &store {
            Some(s) => Box::new(s.sink(schema.clone())),
            None => Box::new(MemSink),
        };
        let sink = GovernedSink { inner, gov };
        let mut b =
            TableBuilder::with_sink(upper.clone(), schema.clone(), partition_rows, Box::new(sink));
        for row in rows {
            b.push_row(&row?)?;
        }
        let table = Arc::new(b.finish()?);
        // Publish atomically; on failure the fresh partition files stay
        // invisible debris (swept on the next write-open) and the previous
        // table version remains live.
        self.commit_latest(WriteSet::single(&upper, TableWrite::Put {
            table,
            expect_absent: false,
        }))?;
        Ok(())
    }

    /// Opens (or initializes) a persistent database directory with the write
    /// lock. Every committed table is reconstructed lazily — footers are
    /// read, column data is not — and subsequent catalog commits write new
    /// manifest versions to the same directory. A directory already
    /// write-locked by a *different live process* is refused with a typed
    /// [`SnowError::Storage`]; use [`Database::open_read_only`] to read past
    /// the lock.
    pub fn open(dir: impl AsRef<std::path::Path>) -> Result<Database> {
        Database::open_mode(dir, false)
    }

    /// Opens a persistent database directory without taking the write lock:
    /// always succeeds alongside a live writer process, but every catalog
    /// mutation on the returned database is refused with a typed error.
    pub fn open_read_only(dir: impl AsRef<std::path::Path>) -> Result<Database> {
        Database::open_mode(dir, true)
    }

    fn open_mode(dir: impl AsRef<std::path::Path>, read_only: bool) -> Result<Database> {
        let (store, tables) = if read_only {
            Store::open_read_only(dir)?
        } else {
            Store::open(dir)?
        };
        let version = store.version();
        let mut map = std::collections::BTreeMap::new();
        for t in tables {
            let name = t.name().to_ascii_uppercase();
            map.insert(name, TableEntry { table: Arc::new(t), committed_at: version });
        }
        let mut snapshot = CatalogSnapshot::new(version, map);
        snapshot.set_pin(store.pin_current());
        let db = Database {
            catalog: SharedCatalog::new(snapshot),
            ..Database::default()
        };
        db.catalog.set_capacity(store.retention());
        *db.store.write() = Some(store);
        Ok(db)
    }

    /// Persists the current catalog into a fresh database directory and
    /// attaches it: every partition is written as an immutable partition
    /// file, all tables are committed in **one** manifest version, and the
    /// in-memory snapshots are swapped for their disk-backed (lazily read)
    /// versions. Refuses a directory that already holds a database.
    pub fn persist_to(&self, dir: impl AsRef<std::path::Path>) -> Result<()> {
        let store = Store::create(dir)?;
        // Hold the commit lock across the whole persist so no commit can
        // slip between the catalog snapshot and the attach.
        let _guard = self.catalog.lock_commits();
        let current = self.catalog.snapshot();
        let mut writes = Vec::new();
        for (name, entry) in current.entries() {
            let t = &entry.table;
            let mut sources = Vec::with_capacity(t.partitions().len());
            for part in t.partitions() {
                let (src, _pref) = store.write_partition(&part.to_mem()?, t.schema())?;
                sources.push(src);
            }
            let table =
                Arc::new(Table::from_parts(t.name().to_string(), t.schema().to_vec(), sources));
            writes.push((name.clone(), TableWrite::Put { table, expect_absent: false }));
        }
        if writes.is_empty() {
            *self.store.write() = Some(store);
            return Ok(());
        }
        let set = WriteSet { writes };
        store.commit_writes(&set)?;
        let next = current.apply(current.version(), &set)?;
        *self.store.write() = Some(store);
        self.catalog.publish(Arc::new(next));
        Ok(())
    }

    /// The attached persistent store, if any.
    pub fn store(&self) -> Option<Arc<Store>> {
        self.store.read().clone()
    }

    /// Pins the current catalog version. Everything resolved through the
    /// returned snapshot is immutable: concurrent commits publish *new*
    /// versions and never mutate a pinned one.
    pub fn snapshot(&self) -> Arc<CatalogSnapshot> {
        self.catalog.snapshot()
    }

    /// Commits a write set against `base_version` (the version the writer
    /// read its inputs from): the optimistic compare-and-swap. Under the
    /// commit lock the set is validated against the *current* version
    /// ([`CatalogSnapshot::apply`]); on success it is made durable first
    /// (when a store is attached) and then published. A validation failure
    /// surfaces as [`SnowError::WriteConflict`] with nothing changed.
    pub(crate) fn commit_writes(
        &self,
        base_version: u64,
        set: WriteSet,
    ) -> Result<Arc<CatalogSnapshot>> {
        let _guard = self.catalog.lock_commits();
        let current = self.catalog.snapshot();
        self.commit_locked(&current, base_version, set)
    }

    /// Commits a write set against whatever version is current at the commit
    /// point — replace/last-writer-wins semantics (bulk load, register,
    /// drop). Never trips a write conflict for plain `Put`s and `Drop`s.
    fn commit_latest(&self, set: WriteSet) -> Result<Arc<CatalogSnapshot>> {
        let _guard = self.catalog.lock_commits();
        let current = self.catalog.snapshot();
        let base = current.version();
        self.commit_locked(&current, base, set)
    }

    fn commit_locked(
        &self,
        current: &Arc<CatalogSnapshot>,
        base_version: u64,
        set: WriteSet,
    ) -> Result<Arc<CatalogSnapshot>> {
        let mut next = current.apply(base_version, &set)?;
        if let Some(s) = self.store() {
            // Durability first: the manifest CAS is the real commit point.
            // If it fails, nothing was published and prepared partition
            // files remain invisible debris.
            s.commit_writes(&set)?;
            // Pin the new version's files for the snapshot's lifetime: a
            // query holding this snapshot can outlive the version's stay in
            // the retention window, and GC must defer, not unlink.
            next.set_pin(s.pin_current());
        }
        let next = Arc::new(next);
        self.catalog.publish(next.clone());
        Ok(next)
    }

    /// A fresh deterministic-jitter seed for one auto-commit retry loop.
    pub(crate) fn next_commit_seed(&self) -> u64 {
        crate::govern::chaos::splitmix64(
            self.commit_seq.fetch_add(1, AtomicOrd::Relaxed).wrapping_add(0x5EED),
        )
    }

    /// Registers a pre-built table snapshot, replacing any same-named table.
    /// When a persistent store is attached the partitions are written to
    /// disk first so the commit is durable.
    pub fn register(&self, table: Table) -> Result<()> {
        let upper = table.name().to_ascii_uppercase();
        let table = match self.store() {
            Some(s) => {
                let mut sources = Vec::with_capacity(table.partitions().len());
                for part in table.partitions() {
                    let (src, _pref) = s.write_partition(&part.to_mem()?, table.schema())?;
                    sources.push(src);
                }
                Arc::new(Table::from_parts(
                    table.name().to_string(),
                    table.schema().to_vec(),
                    sources,
                ))
            }
            None => Arc::new(table),
        };
        self.commit_latest(WriteSet::single(&upper, TableWrite::Put {
            table,
            expect_absent: false,
        }))?;
        Ok(())
    }

    /// Removes a table; returns whether it existed. Infallible legacy shim
    /// over [`Database::drop_table_checked`]; a failed persistent-catalog
    /// commit reports `false` and leaves the table in place.
    pub fn drop_table(&self, name: &str) -> bool {
        self.drop_table_checked(name).unwrap_or(false)
    }

    /// Removes a table, committing the drop to the persistent catalog when a
    /// store is attached. The in-memory catalog only changes after the commit
    /// succeeds, so a failed commit leaves both views consistent. Drops are
    /// idempotent and never conflict.
    pub fn drop_table_checked(&self, name: &str) -> Result<bool> {
        let upper = name.to_ascii_uppercase();
        let base = self.snapshot();
        if base.table(&upper).is_none() {
            return Ok(false);
        }
        self.commit_writes(base.version(), WriteSet::single(&upper, TableWrite::Drop))?;
        Ok(true)
    }

    /// Current schema generation — the catalog version; changes whenever the
    /// catalog does. Anything compiled against the catalog (cached
    /// translations, prepared plans) should treat a different stamp as a
    /// different database.
    pub fn schema_generation(&self) -> u64 {
        self.catalog.snapshot().version()
    }

    /// Fetches a table snapshot from the current catalog version.
    pub fn table(&self, name: &str) -> Option<Arc<Table>> {
        self.catalog.snapshot().table(name)
    }

    /// Names of all tables in the current catalog version.
    pub fn table_names(&self) -> Vec<String> {
        self.catalog.snapshot().table_names()
    }

    /// Compiles a SQL query to an optimized plan (parse + bind + optimize).
    pub fn compile(&self, sql: &str) -> Result<Node> {
        self.compile_with(sql, true)
    }

    /// Compiles a SQL query, optionally skipping the optimizer: the raw bound
    /// plan executes on the same pipeline, which is what lets the verification
    /// oracle compare optimized against unoptimized results.
    pub fn compile_with(&self, sql: &str, optimize_plan: bool) -> Result<Node> {
        self.compile_on(&self.snapshot(), sql, optimize_plan)
    }

    /// Compiles against an explicit pinned snapshot (sessions compile inside
    /// their transaction's effective catalog). Binds run through a
    /// [`TravelCatalog`], so `AT`/`BEFORE` clauses resolve retained
    /// historical versions while plain references stay on the snapshot.
    pub(crate) fn compile_on(
        &self,
        cat: &CatalogSnapshot,
        sql: &str,
        optimize_plan: bool,
    ) -> Result<Node> {
        let ast = parse_query(sql)?;
        let bound = bind_query(&ast, &TravelCatalog { db: self, base: cat })?;
        if optimize_plan {
            optimize(bound)
        } else {
            Ok(bound)
        }
    }

    /// Overrides the worker-thread count for this database's queries.
    /// `None` restores the default resolution (`SNOWDB_THREADS` environment
    /// variable, then available parallelism); values are clamped to ≥ 1.
    pub fn set_threads(&self, threads: Option<usize>) {
        *self.threads.write() = threads.map(|t| t.max(1));
    }

    /// Worker count for the next query: explicit override, else the
    /// `SNOWDB_THREADS` environment variable (re-read per query), else the
    /// machine's available parallelism. 1 means fully inline serial
    /// execution — no threads are spawned.
    pub fn effective_threads(&self) -> usize {
        if let Some(t) = *self.threads.read() {
            return t;
        }
        if let Some(t) = std::env::var("SNOWDB_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
        {
            return t.max(1);
        }
        std::thread::available_parallelism().map_or(1, |n| n.get())
    }

    /// Runs a SQL query end to end, reporting a per-phase [`QueryProfile`].
    pub fn query(&self, sql: &str) -> Result<QueryResult> {
        self.query_with(sql, &QueryOptions::default())
    }

    /// Runs a SQL query under explicit execution options (optimizer on/off,
    /// thread count) without touching the database-wide defaults. The query
    /// runs under a governor armed from the session parameters.
    pub fn query_with(&self, sql: &str, opts: &QueryOptions) -> Result<QueryResult> {
        let gov = Arc::new(QueryGovernor::from_params(&self.session_params()));
        self.query_governed(sql, opts, gov).map_err(SnowError::from)
    }

    /// Runs a SQL query under an explicit [`QueryGovernor`]. On failure the
    /// [`QueryFailure`] carries the typed error plus the partial per-operator
    /// metrics tree accumulated up to the abort — the diagnosable form of a
    /// cancellation, deadline, or budget trip. The chaos harness drives this
    /// entry point directly with fault-schedule governors.
    // The large Err carries the whole diagnosis (summary + partial metrics);
    // it is built once on an already-failed, cold path.
    #[allow(clippy::result_large_err)]
    pub fn query_governed(
        &self,
        sql: &str,
        opts: &QueryOptions,
        gov: Arc<QueryGovernor>,
    ) -> std::result::Result<QueryResult, QueryFailure> {
        self.query_on(&self.snapshot(), sql, opts, gov)
    }

    /// [`Database::query_governed`] against an explicit pinned snapshot — the
    /// statement sees exactly one catalog version from bind to last batch.
    #[allow(clippy::result_large_err)]
    pub(crate) fn query_on(
        &self,
        cat: &CatalogSnapshot,
        sql: &str,
        opts: &QueryOptions,
        gov: Arc<QueryGovernor>,
    ) -> std::result::Result<QueryResult, QueryFailure> {
        let t0 = Instant::now();
        let plan = match self.compile_on(cat, sql, opts.optimize) {
            Ok(p) => p,
            Err(error) => {
                return Err(QueryFailure {
                    error,
                    partial_metrics: None,
                    summary: gov.summary(),
                })
            }
        };
        let compile_time = t0.elapsed();

        let threads = opts.threads.map_or_else(|| self.effective_threads(), |t| t.max(1));
        let vectorize =
            opts.vectorize.unwrap_or_else(crate::exec::vectorize_from_env);
        let encode = opts.encode.unwrap_or_else(crate::storage::encode_from_env);
        let (batches, phys_metrics, ctx, exec_time) =
            self.run_physical(&plan, threads, vectorize, encode, gov.clone());
        let batches = match batches {
            Ok(b) => b,
            Err(error) => {
                return Err(QueryFailure {
                    error,
                    partial_metrics: Some(phys_metrics),
                    summary: gov.summary(),
                })
            }
        };

        let columns = plan.fields.iter().map(|f| f.name.clone()).collect();
        let mut rows = Vec::with_capacity(pipeline::total_rows(&batches));
        for chunk in batches {
            // Result boundary: drain each batch's columns into row vectors —
            // values are moved, never cloned per cell.
            rows.extend(chunk.into_rows());
        }
        Ok(QueryResult {
            columns,
            rows,
            profile: QueryProfile {
                compile_time,
                exec_time,
                scan: ctx.stats,
                metrics: Some(phys_metrics),
                governed: gov.is_armed().then(|| gov.summary()),
            },
        })
    }

    /// Submits a query on a background thread, returning a cancellable
    /// [`QueryHandle`]. The governor is armed from the session parameters at
    /// submit time; [`QueryHandle::cancel`] trips it at the next batch
    /// boundary.
    pub fn execute_governed(self: &Arc<Database>, sql: &str) -> QueryHandle {
        let gov = Arc::new(QueryGovernor::from_params(&self.session_params()));
        let db = Arc::clone(self);
        let g = gov.clone();
        let sql = sql.to_string();
        #[allow(clippy::result_large_err)]
        let join = std::thread::spawn(move || {
            db.query_governed(&sql, &QueryOptions::default(), g)
        });
        QueryHandle::new(gov, join)
    }

    /// Executes an optimized plan on the morsel-parallel pipeline, returning
    /// batches, the metrics snapshot, the execution context, and wall time.
    /// Metrics and context come back even when execution fails — that is what
    /// makes a governance trip diagnosable from its partial metrics tree.
    fn run_physical(
        &self,
        plan: &Node,
        threads: usize,
        vectorize: bool,
        encode: bool,
        gov: Arc<QueryGovernor>,
    ) -> (Result<Vec<crate::exec::Chunk>>, OpMetrics, ExecCtx, Duration) {
        let t = Instant::now();
        let phys: PhysNode<'_> = lower(plan, threads);
        let mut ctx = ExecCtx::worker(gov, vectorize, encode);
        // Last line of panic isolation: a panic escaping the morsel layer's
        // catch_unwind (e.g. one injected at a claim gate) must not cross the
        // engine boundary. The catalog is only read during execution and all
        // engine locks are parking_lot (non-poisoning), so unwinding to here
        // leaves the database fully usable.
        let batches = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pipeline::execute_physical(&phys, &mut ctx)
        }))
        .unwrap_or_else(|payload| {
            Err(SnowError::internal(
                "executor",
                crate::govern::panic_message(&*payload),
            ))
        });
        let exec_time = t.elapsed();
        (batches, phys.snapshot(), ctx, exec_time)
    }

    /// Renders the optimized plan of a query (`EXPLAIN`).
    pub fn explain(&self, sql: &str) -> Result<String> {
        Ok(crate::plan::explain(&self.compile(sql)?))
    }

    /// Renders the plan with or without the optimizer passes applied — the
    /// divergence reports of the verification oracle show both.
    pub fn explain_with(&self, sql: &str, optimize_plan: bool) -> Result<String> {
        Ok(crate::plan::explain(&self.compile_with(sql, optimize_plan)?))
    }

    /// Runs the query and renders its plan annotated with the measured
    /// per-operator metrics (`EXPLAIN ANALYZE`).
    pub fn explain_analyze(&self, sql: &str) -> Result<String> {
        let plan = self.compile(sql)?;
        self.explain_analyze_plan(&plan)
    }

    fn explain_analyze_plan(&self, plan: &Node) -> Result<String> {
        let gov = Arc::new(QueryGovernor::from_params(&self.session_params()));
        let (batches, metrics, ctx, exec_time) = self.run_physical(
            plan,
            self.effective_threads(),
            crate::exec::vectorize_from_env(),
            crate::storage::encode_from_env(),
            gov.clone(),
        );
        let batches = batches?;
        let rows = pipeline::total_rows(&batches);
        let mut out = crate::plan::explain_analyze(plan, &metrics);
        let _ = std::fmt::Write::write_fmt(
            &mut out,
            format_args!(
                "-- {} row(s) in {:.3?}; {} bytes scanned, {}/{} partitions\n",
                rows,
                exec_time,
                ctx.stats.bytes_scanned,
                ctx.stats.partitions_scanned,
                ctx.stats.partitions_total,
            ),
        );
        let _ = std::fmt::Write::write_fmt(
            &mut out,
            format_args!(
                "-- pruned: {} partition(s), {} column block(s) skipped, {} bytes saved\n",
                ctx.stats.partitions_pruned, ctx.stats.columns_skipped, ctx.stats.bytes_skipped,
            ),
        );
        if ctx.stats.cache_hits + ctx.stats.cache_misses > 0 {
            let _ = std::fmt::Write::write_fmt(
                &mut out,
                format_args!(
                    "-- buffer cache: {} hit(s), {} miss(es), {} eviction(s)\n",
                    ctx.stats.cache_hits, ctx.stats.cache_misses, ctx.stats.cache_evictions,
                ),
            );
        }
        if gov.is_armed() {
            let _ = std::fmt::Write::write_fmt(
                &mut out,
                format_args!("-- {}\n", gov.summary().render()),
            );
        }
        Ok(out)
    }

    /// Current session parameters.
    pub fn session_params(&self) -> SessionParams {
        *self.params.read()
    }

    /// Sets a session parameter (`0` clears, Snowflake-style); returns its
    /// canonical name.
    pub fn set_session_param(&self, name: &str, value: u64) -> Result<&'static str> {
        self.params.write().set(name, value)
    }

    /// Clears a session parameter; returns its canonical name.
    pub fn unset_session_param(&self, name: &str) -> Result<&'static str> {
        self.params.write().unset(name)
    }

    /// Executes any statement: queries return rows, DDL/DML return a message.
    ///
    /// DML (`INSERT`/`UPDATE`/`DELETE`) auto-commits: it plans against a
    /// pinned snapshot, prepares partitions off to the side, and commits
    /// optimistically, retrying lost races on a fresh snapshot under a
    /// seeded bounded backoff. Explicit transactions need a
    /// [`crate::session::Session`].
    pub fn execute(&self, sql: &str) -> Result<StatementResult> {
        match parse_statement(sql)? {
            Statement::Query(_) => Ok(StatementResult::Rows(self.query(sql)?)),
            Statement::Verify(query_sql) => {
                let report = crate::verify::verify_sql(
                    self,
                    &query_sql,
                    &crate::verify::default_lattice(self.effective_threads()),
                    crate::verify::DEFAULT_EPSILON,
                )?;
                Ok(StatementResult::Message(report.render()))
            }
            Statement::Explain(q) => {
                let snap = self.snapshot();
                let bound =
                    crate::plan::bind_query(&q, &TravelCatalog { db: self, base: &snap })?;
                let plan = crate::optimize::optimize(bound)?;
                Ok(StatementResult::Message(crate::plan::explain(&plan)))
            }
            Statement::ExplainAnalyze(q) => {
                let snap = self.snapshot();
                let bound =
                    crate::plan::bind_query(&q, &TravelCatalog { db: self, base: &snap })?;
                let plan = crate::optimize::optimize(bound)?;
                Ok(StatementResult::Message(self.explain_analyze_plan(&plan)?))
            }
            Statement::CreateTable { name, columns } => {
                let upper = name.to_ascii_uppercase();
                let schema: Vec<ColumnDef> = columns
                    .into_iter()
                    .map(|(n, ty)| crate::storage::ColumnDef::new(n, ty))
                    .collect();
                let policy = RetryPolicy::commit_default(self.next_commit_seed());
                retry::run(&policy, |_| {
                    let base = self.snapshot();
                    if base.table(&upper).is_some() {
                        return Err(SnowError::Catalog(format!(
                            "table '{name}' already exists"
                        )));
                    }
                    let table =
                        Arc::new(Table::from_parts(upper.clone(), schema.clone(), Vec::new()));
                    self.commit_writes(
                        base.version(),
                        WriteSet::single(&upper, TableWrite::Put { table, expect_absent: true }),
                    )
                })?;
                Ok(StatementResult::Message(format!("created table {name}")))
            }
            stmt @ (Statement::Insert { .. }
            | Statement::Update { .. }
            | Statement::Delete { .. }) => {
                self.autocommit_dml(&stmt, &self.session_params())
            }
            Statement::DropTable { name, if_exists } => {
                let existed = self.drop_table_checked(&name)?;
                if !existed && !if_exists {
                    return Err(SnowError::Catalog(format!("table '{name}' does not exist")));
                }
                Ok(StatementResult::Message(format!("dropped table {name}")))
            }
            Statement::Undrop { name } => {
                let version = self.undrop_table(&name)?;
                Ok(StatementResult::Message(format!(
                    "undropped table {name} (restored from version {version})"
                )))
            }
            Statement::CloneTable { name, source, travel } => {
                self.clone_table(&name, &source, travel.as_ref())?;
                Ok(StatementResult::Message(format!(
                    "created table {name} as zero-copy clone of {source}"
                )))
            }
            Statement::Set { name, value } if name.eq_ignore_ascii_case(RETENTION_PARAM) => {
                if value == 0 {
                    return Err(SnowError::Catalog(format!(
                        "{RETENTION_PARAM} must be at least 1 \
                         (the current version is always retained)"
                    )));
                }
                let v = self.set_retention(value)?;
                Ok(StatementResult::Message(format!("{RETENTION_PARAM} set to {v}")))
            }
            Statement::Set { name, value } => {
                let canonical = self.set_session_param(&name, value)?;
                Ok(StatementResult::Message(if value == 0 {
                    format!("{canonical} cleared")
                } else {
                    format!("{canonical} set to {value}")
                }))
            }
            Statement::Unset { name } => {
                let canonical = self.unset_session_param(&name)?;
                Ok(StatementResult::Message(format!("{canonical} cleared")))
            }
            Statement::Begin | Statement::Commit | Statement::Rollback => {
                Err(SnowError::Catalog(
                    "explicit transactions require a session: open a snowdb::Session \
                     and run BEGIN/COMMIT/ROLLBACK there"
                        .into(),
                ))
            }
        }
    }

    /// Auto-commits one DML statement: plan against a pinned snapshot,
    /// prepare partitions, commit via CAS, retry lost races on a fresh
    /// snapshot under a seeded bounded backoff.
    pub(crate) fn autocommit_dml(
        &self,
        stmt: &Statement,
        params: &SessionParams,
    ) -> Result<StatementResult> {
        let gov = Arc::new(QueryGovernor::from_params(params));
        self.autocommit_dml_governed(stmt, &gov)
    }

    /// [`Database::autocommit_dml`] under an explicit governor, so a caller
    /// holding the governor (the network service layer, a `QueryHandle`) can
    /// cancel the rewrite mid-flight. One governor spans every retry attempt:
    /// the statement deadline covers the whole statement, and a cancellation
    /// requested during backoff aborts the next attempt at its first
    /// checkpoint.
    pub(crate) fn autocommit_dml_governed(
        &self,
        stmt: &Statement,
        gov: &Arc<QueryGovernor>,
    ) -> Result<StatementResult> {
        let policy = RetryPolicy::commit_default(self.next_commit_seed());
        retry::run(&policy, |_| {
            let base = self.snapshot();
            let (name, write, msg) = self.plan_dml(&base, stmt, gov)?;
            if let Some(w) = write {
                self.commit_writes(base.version(), WriteSet::single(&name, w))?;
            }
            Ok(StatementResult::Message(msg))
        })
    }

    /// Plans one DML statement against a pinned snapshot, returning the
    /// table name, the prepared write (or `None` when the statement touched
    /// no partition), and the result message. Pure with respect to the
    /// catalog: nothing is committed. Sessions call this against their
    /// transaction's effective catalog.
    pub(crate) fn plan_dml(
        &self,
        cat: &CatalogSnapshot,
        stmt: &Statement,
        gov: &Arc<QueryGovernor>,
    ) -> Result<(String, Option<TableWrite>, String)> {
        match stmt {
            Statement::Insert { table, rows } => self.plan_insert(cat, table, rows, gov),
            Statement::Update { table, sets, predicate } => {
                self.plan_update(cat, table, sets, predicate.as_ref(), gov)
            }
            Statement::Delete { table, predicate } => {
                self.plan_delete(cat, table, predicate.as_ref(), gov)
            }
            other => Err(SnowError::internal(
                "engine",
                format!("plan_dml called with non-DML statement {other:?}"),
            )),
        }
    }

    /// `INSERT`: evaluates the `VALUES` tuples and seals them into fresh
    /// partitions (streamed straight to partition files when a store is
    /// attached). The append merges with concurrent appends at commit time;
    /// existing partitions are never rewritten.
    fn plan_insert(
        &self,
        cat: &CatalogSnapshot,
        table: &str,
        rows: &[Vec<Expr>],
        gov: &Arc<QueryGovernor>,
    ) -> Result<(String, Option<TableWrite>, String)> {
        let upper = table.to_ascii_uppercase();
        let t = cat
            .table(&upper)
            .ok_or_else(|| SnowError::Catalog(format!("table '{table}' does not exist")))?;
        // Evaluate each VALUES tuple as literal expressions.
        let mut ctx = ExecCtx::default();
        let chunk = crate::exec::Chunk { cols: Vec::new(), rows: 1 };
        let parts = [(&chunk, 0usize)];
        let view = crate::exec::RowView::new(&parts);
        let mut new_rows: Vec<Vec<Variant>> = Vec::with_capacity(rows.len());
        for tuple in rows {
            if tuple.len() != t.schema().len() {
                return Err(SnowError::Catalog(format!(
                    "INSERT arity {} does not match table arity {}",
                    tuple.len(),
                    t.schema().len()
                )));
            }
            let mut row = Vec::with_capacity(tuple.len());
            for e in tuple {
                let bound = crate::plan::binder::bind_expr(e, &[], None)?;
                row.push(crate::exec::eval(&bound, view, &mut ctx)?);
            }
            new_rows.push(row);
        }
        let inserted = new_rows.len();
        let schema = t.schema().to_vec();
        let parts = self.build_partitions(&upper, &schema, &new_rows, DEFAULT_PARTITION_ROWS, gov)?;
        let write = (!parts.is_empty()).then_some(TableWrite::Append { parts, schema });
        Ok((upper, write, format!("inserted {inserted} row(s)")))
    }

    /// `DELETE`: copy-on-write partition rewrite. Partitions with no matching
    /// row keep their `Arc` (zero copy, and — because conflict detection is
    /// by partition identity — zero conflict surface); partitions losing all
    /// rows are removed outright; mixed partitions are rebuilt from their
    /// surviving rows. Rows are deleted iff the predicate is `TRUE`
    /// (`FALSE`-or-`NULL` rows survive — SQL three-valued logic).
    fn plan_delete(
        &self,
        cat: &CatalogSnapshot,
        table: &str,
        predicate: Option<&Expr>,
        gov: &Arc<QueryGovernor>,
    ) -> Result<(String, Option<TableWrite>, String)> {
        let upper = table.to_ascii_uppercase();
        let t = cat
            .table(&upper)
            .ok_or_else(|| SnowError::Catalog(format!("table '{table}' does not exist")))?;
        let schema = t.schema().to_vec();
        let bound = self.bind_dml_predicate(&t, predicate)?;
        let mut removed = Vec::new();
        let mut added = Vec::new();
        let mut deleted = 0usize;
        for part in t.partitions() {
            gov.checkpoint("Rewrite")?;
            let rows = part.row_count();
            if rows == 0 {
                continue;
            }
            let (mask, cols) = self.match_rows(part, &schema, bound.as_ref(), gov)?;
            let hits = mask.iter().filter(|&&m| m).count();
            if hits == 0 {
                continue;
            }
            deleted += hits;
            removed.push(part.clone());
            if hits == rows {
                continue;
            }
            let mut survivors: Vec<Vec<Variant>> = Vec::with_capacity(rows - hits);
            for (r, &dead) in mask.iter().enumerate() {
                if !dead {
                    survivors.push(cols.iter().map(|c| c.get(r)).collect());
                }
            }
            added.extend(self.build_partitions(&upper, &schema, &survivors, rows, gov)?);
        }
        let write = (!removed.is_empty()).then_some(TableWrite::Rewrite { removed, added });
        Ok((upper, write, format!("deleted {deleted} row(s)")))
    }

    /// `UPDATE`: copy-on-write partition rewrite. Untouched partitions keep
    /// their `Arc`; a partition with at least one matching row is rebuilt
    /// with the `SET` expressions applied to matching rows (evaluated
    /// against the *old* row, so `SET a = a + 1` is well-defined).
    fn plan_update(
        &self,
        cat: &CatalogSnapshot,
        table: &str,
        sets: &[(String, Expr)],
        predicate: Option<&Expr>,
        gov: &Arc<QueryGovernor>,
    ) -> Result<(String, Option<TableWrite>, String)> {
        let upper = table.to_ascii_uppercase();
        let t = cat
            .table(&upper)
            .ok_or_else(|| SnowError::Catalog(format!("table '{table}' does not exist")))?;
        let schema = t.schema().to_vec();
        let fields = self.dml_fields(&t);
        let mut set_cols: Vec<(usize, PExpr)> = Vec::with_capacity(sets.len());
        for (col, e) in sets {
            let idx = t.column_index(col).ok_or_else(|| {
                SnowError::Plan(format!("unknown column '{col}' in UPDATE SET"))
            })?;
            set_cols.push((idx, crate::plan::binder::bind_expr(e, &fields, None)?));
        }
        let bound = self.bind_dml_predicate(&t, predicate)?;
        let mut removed = Vec::new();
        let mut added = Vec::new();
        let mut updated = 0usize;
        for part in t.partitions() {
            gov.checkpoint("Rewrite")?;
            let rows = part.row_count();
            if rows == 0 {
                continue;
            }
            let (mask, cols) = self.match_rows(part, &schema, bound.as_ref(), gov)?;
            let hits = mask.iter().filter(|&&m| m).count();
            if hits == 0 {
                continue;
            }
            updated += hits;
            removed.push(part.clone());
            // Re-materialize the whole partition, substituting the SET
            // expressions on matching rows.
            let chunk = self.partition_chunk(&cols, rows);
            let mut ctx = ExecCtx::default();
            let mut rebuilt: Vec<Vec<Variant>> = Vec::with_capacity(rows);
            for (r, &hit) in mask.iter().enumerate() {
                let mut row: Vec<Variant> = cols.iter().map(|c| c.get(r)).collect();
                if hit {
                    let parts = [(&chunk, r)];
                    let view = crate::exec::RowView::new(&parts);
                    for (idx, e) in &set_cols {
                        row[*idx] = crate::exec::eval(e, view, &mut ctx)?;
                    }
                }
                rebuilt.push(row);
            }
            added.extend(self.build_partitions(&upper, &schema, &rebuilt, rows, gov)?);
        }
        let write = (!removed.is_empty()).then_some(TableWrite::Rewrite { removed, added });
        Ok((upper, write, format!("updated {updated} row(s)")))
    }

    /// Bind fields for DML predicates/SET expressions: every column,
    /// qualified by the table name.
    fn dml_fields(&self, t: &Table) -> Vec<Field> {
        t.schema()
            .iter()
            .map(|c| Field::new(Some(t.name()), c.name.clone()))
            .collect()
    }

    fn bind_dml_predicate(&self, t: &Table, predicate: Option<&Expr>) -> Result<Option<PExpr>> {
        let fields = self.dml_fields(t);
        predicate
            .map(|p| crate::plan::binder::bind_expr(p, &fields, None))
            .transpose()
    }

    /// Reads every column of a partition (governed) and evaluates the
    /// predicate per row: `mask[r]` is true iff the predicate is `TRUE` on
    /// row `r` (no predicate matches every row).
    fn match_rows(
        &self,
        part: &Arc<ScanSource>,
        schema: &[ColumnDef],
        pred: Option<&PExpr>,
        gov: &QueryGovernor,
    ) -> Result<(Vec<bool>, Vec<Arc<crate::storage::ColumnData>>)> {
        let rows = part.row_count();
        let mut cols = Vec::with_capacity(schema.len());
        for i in 0..schema.len() {
            cols.push(part.read_column_governed(i, gov, "Rewrite")?.data);
        }
        let mask = match pred {
            None => vec![true; rows],
            Some(p) => {
                let chunk = self.partition_chunk(&cols, rows);
                let mut ctx = ExecCtx::default();
                let mut mask = Vec::with_capacity(rows);
                for r in 0..rows {
                    let parts = [(&chunk, r)];
                    let view = crate::exec::RowView::new(&parts);
                    let v = crate::exec::eval(p, view, &mut ctx)?;
                    mask.push(crate::exec::truth(&v)? == Some(true));
                }
                mask
            }
        };
        Ok((mask, cols))
    }

    fn partition_chunk(
        &self,
        cols: &[Arc<crate::storage::ColumnData>],
        rows: usize,
    ) -> crate::exec::Chunk {
        crate::exec::Chunk {
            cols: cols
                .iter()
                .map(|c| crate::exec::ColumnVec::from_column_data(c, 0, rows, false))
                .collect(),
            rows,
        }
    }

    /// Seals rows into fresh partitions through the standard builder path
    /// (type validation, stats, zone maps), streaming to partition files
    /// when a store is attached and charging the governor for every sealed
    /// partition.
    pub(crate) fn build_partitions(
        &self,
        name: &str,
        schema: &[ColumnDef],
        rows: &[Vec<Variant>],
        partition_rows: usize,
        gov: &Arc<QueryGovernor>,
    ) -> Result<Vec<Arc<ScanSource>>> {
        if rows.is_empty() {
            return Ok(Vec::new());
        }
        let inner: Box<dyn PartitionSink> = match self.store() {
            Some(s) => Box::new(s.sink(schema.to_vec())),
            None => Box::new(MemSink),
        };
        let sink = GovernedSink { inner, gov: gov.clone() };
        let mut b = TableBuilder::with_sink(
            name.to_string(),
            schema.to_vec(),
            partition_rows.max(1),
            Box::new(sink),
        );
        for row in rows {
            b.push_row(row)?;
        }
        Ok(b.finish()?.partitions().to_vec())
    }

    /// Sets the retention window (number of committed versions kept for time
    /// travel / `UNDROP` / clones, including the current one; clamped ≥ 1).
    /// For a persistent database the change is itself a commit — shrinking
    /// immediately evicts (and GCs) history beyond the new window.
    pub fn set_retention(&self, versions: u64) -> Result<u64> {
        let versions = versions.max(1);
        let _guard = self.catalog.lock_commits();
        if let Some(s) = self.store() {
            let current = self.catalog.snapshot();
            s.set_retention(versions)?;
            // The store committed a version of its own; publish the matching
            // (table-wise empty) catalog version to keep the two counters —
            // and their histories — in lockstep.
            let mut next = current.apply(current.version(), &WriteSet::default())?;
            next.set_pin(s.pin_current());
            self.catalog.set_capacity(versions);
            self.catalog.publish(Arc::new(next));
        } else {
            self.catalog.set_capacity(versions);
        }
        Ok(versions)
    }

    /// The configured retention window in versions.
    pub fn retention(&self) -> u64 {
        match self.store() {
            Some(s) => s.retention(),
            None => self.catalog.capacity(),
        }
    }

    /// Resolves a table as of a retained historical version, for `AT`/
    /// `BEFORE` clauses, `UNDROP`, and versioned clones. Resolution order:
    /// the base snapshot itself, then the store's manifest history (whose
    /// reconstructed partitions carry a GC [`crate::store::VersionPin`]),
    /// then the in-memory snapshot history (purely in-memory databases,
    /// where no GC exists). Evicted or unknown versions surface as typed
    /// errors, never a wrong answer.
    pub(crate) fn table_at_version(
        &self,
        name: &str,
        travel: &Travel,
        base: &CatalogSnapshot,
    ) -> Result<Arc<Table>> {
        let version = if travel.before {
            travel.version.checked_sub(1).ok_or_else(|| {
                SnowError::Plan("BEFORE(VERSION => 0) has no predecessor version".into())
            })?
        } else {
            travel.version
        };
        let upper = name.to_ascii_uppercase();
        if version > base.version() {
            return Err(SnowError::Catalog(format!(
                "version {version} has not been committed yet (current version: {})",
                base.version()
            )));
        }
        let missing = || {
            SnowError::Catalog(format!("table '{name}' did not exist at version {version}"))
        };
        if version == base.version() {
            return base.table(&upper).ok_or_else(missing);
        }
        if let Some(s) = self.store() {
            return match s.open_table_at(version, &upper)? {
                Some(t) => Ok(Arc::new(t)),
                None => Err(missing()),
            };
        }
        match self.catalog.at_version(version) {
            Some(snap) => snap.table(&upper).ok_or_else(missing),
            None => Err(SnowError::Storage(format!(
                "version {version} is outside the retention window \
                 (retention: {} versions)",
                self.catalog.capacity()
            ))),
        }
    }

    /// `UNDROP TABLE`: restores the table from the most recent retained
    /// version that still holds it, as a `CREATE`-style commit (conflicts if
    /// the name was concurrently re-created). Returns the version restored
    /// from; a table absent from every retained version is a typed catalog
    /// error.
    pub fn undrop_table(&self, name: &str) -> Result<u64> {
        let upper = name.to_ascii_uppercase();
        let policy = RetryPolicy::commit_default(self.next_commit_seed());
        retry::run(&policy, |_| {
            let base = self.snapshot();
            if base.table(&upper).is_some() {
                return Err(SnowError::Catalog(format!(
                    "table '{name}' already exists (drop it before UNDROP)"
                )));
            }
            let (table, version) = self.latest_retained(&upper)?;
            let table = Arc::new(Table::from_parts(
                upper.clone(),
                table.schema().to_vec(),
                table.partitions().to_vec(),
            ));
            self.commit_writes(
                base.version(),
                WriteSet::single(&upper, TableWrite::Put { table, expect_absent: true }),
            )?;
            Ok(version)
        })
    }

    /// The newest retained historical version holding `upper`, walking the
    /// manifest history when a store is attached (it survives restarts),
    /// else the in-memory snapshot history.
    fn latest_retained(&self, upper: &str) -> Result<(Arc<Table>, u64)> {
        if let Some(s) = self.store() {
            for v in s.retained_versions().into_iter().rev() {
                if let Some(t) = s.open_table_at(v, upper)? {
                    return Ok((Arc::new(t), v));
                }
            }
        } else {
            let current = self.catalog.snapshot().version();
            for v in (1..=current).rev() {
                let Some(snap) = self.catalog.at_version(v) else { break };
                if let Some(t) = snap.table(upper) {
                    return Ok((t, v));
                }
            }
        }
        Err(SnowError::Catalog(format!(
            "table '{upper}' is not present in any retained version \
             (retention: {} versions)",
            self.retention()
        )))
    }

    /// `CREATE TABLE ... CLONE src [AT/BEFORE(VERSION => n)]`: a zero-copy
    /// metadata operation. The clone shares the source's immutable partition
    /// `Arc`s — no partition bytes are read or written; on a persistent
    /// database the manifest simply references the same files from both
    /// tables, and copy-on-write DML diverges them from there.
    pub fn clone_table(&self, name: &str, source: &str, travel: Option<&Travel>) -> Result<()> {
        let upper = name.to_ascii_uppercase();
        let src_upper = source.to_ascii_uppercase();
        let policy = RetryPolicy::commit_default(self.next_commit_seed());
        retry::run(&policy, |_| {
            let base = self.snapshot();
            if base.table(&upper).is_some() {
                return Err(SnowError::Catalog(format!("table '{name}' already exists")));
            }
            let src = match travel {
                Some(t) => self.table_at_version(&src_upper, t, &base)?,
                None => base.table(&src_upper).ok_or_else(|| {
                    SnowError::Catalog(format!("table '{source}' does not exist"))
                })?,
            };
            let table = Arc::new(Table::from_parts(
                upper.clone(),
                src.schema().to_vec(),
                src.partitions().to_vec(),
            ));
            self.commit_writes(
                base.version(),
                WriteSet::single(&upper, TableWrite::Put { table, expect_absent: true }),
            )?;
            Ok(())
        })
    }

    /// Runs a query and requires a single scalar result.
    pub fn query_scalar(&self, sql: &str) -> Result<Variant> {
        let res = self.query(sql)?;
        res.scalar()
            .cloned()
            .ok_or_else(|| SnowError::Exec("query produced no rows".into()))
    }
}

/// Statement name of the retention knob (`SET DATA_RETENTION_VERSIONS = n`),
/// intercepted ahead of the ordinary session parameters because it mutates
/// durable store state, not per-session limits.
pub(crate) const RETENTION_PARAM: &str = "DATA_RETENTION_VERSIONS";

/// The binder-facing catalog for one statement: plain table references
/// resolve on the pinned base snapshot; `AT`/`BEFORE` clauses reach through
/// the database into retained history ([`Database::table_at_version`]).
pub(crate) struct TravelCatalog<'a> {
    pub(crate) db: &'a Database,
    pub(crate) base: &'a CatalogSnapshot,
}

impl crate::plan::Catalog for TravelCatalog<'_> {
    fn table(&self, name: &str) -> Option<Arc<Table>> {
        self.base.table(name)
    }

    fn table_at(&self, name: &str, travel: &Travel) -> Result<Arc<Table>> {
        self.db.table_at_version(name, travel, self.base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::ColumnType;

    fn db_with_nums() -> Database {
        let db = Database::new();
        db.load_table(
            "nums",
            vec![
                ColumnDef::new("A", ColumnType::Int),
                ColumnDef::new("B", ColumnType::Float),
            ],
            (0..10).map(|i| vec![Variant::Int(i), Variant::Float(i as f64 * 0.5)]),
        )
        .unwrap();
        db
    }

    #[test]
    fn basic_select_where() {
        let db = db_with_nums();
        let r = db.query("SELECT a FROM nums WHERE a >= 7 ORDER BY a").unwrap();
        assert_eq!(r.rows.len(), 3);
        assert_eq!(r.rows[0][0], Variant::Int(7));
        assert_eq!(r.columns, vec!["A"]);
    }

    #[test]
    fn aggregate_group_by() {
        let db = db_with_nums();
        let r = db
            .query("SELECT a % 2 AS p, count(*) AS c, sum(a) AS s FROM nums GROUP BY a % 2 ORDER BY p")
            .unwrap();
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0], vec![Variant::Int(0), Variant::Int(5), Variant::Int(20)]);
        assert_eq!(r.rows[1], vec![Variant::Int(1), Variant::Int(5), Variant::Int(25)]);
    }

    #[test]
    fn global_aggregate_over_empty_input() {
        let db = db_with_nums();
        let r = db.query("SELECT count(*), sum(a) FROM nums WHERE a > 100").unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0], Variant::Int(0));
        assert!(r.rows[0][1].is_null());
    }

    #[test]
    fn unknown_table_is_a_plan_error() {
        let db = Database::new();
        match db.query("SELECT * FROM missing") {
            Err(SnowError::Plan(_)) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn profile_reports_bytes_scanned() {
        let db = db_with_nums();
        let full = db.query("SELECT a, b FROM nums").unwrap();
        let narrow = db.query("SELECT a FROM nums").unwrap();
        assert!(full.profile.scan.bytes_scanned > narrow.profile.scan.bytes_scanned);
        assert!(narrow.profile.scan.bytes_scanned > 0);
    }

    #[test]
    fn zone_map_pruning_skips_partitions() {
        let db = Database::new();
        db.load_table_with_partition_rows(
            "t",
            vec![ColumnDef::new("X", ColumnType::Int)],
            (0..100).map(|i| vec![Variant::Int(i)]),
            10,
        )
        .unwrap();
        let r = db.query("SELECT x FROM t WHERE x >= 95").unwrap();
        assert_eq!(r.rows.len(), 5);
        assert_eq!(r.profile.scan.partitions_total, 10);
        assert_eq!(r.profile.scan.partitions_scanned, 1);
    }

    #[test]
    fn union_all_and_limit() {
        let db = db_with_nums();
        let r = db
            .query("SELECT a FROM nums UNION ALL SELECT a FROM nums ORDER BY a LIMIT 4")
            .unwrap();
        assert_eq!(r.rows.len(), 4);
        assert_eq!(r.rows[0][0], Variant::Int(0));
        assert_eq!(r.rows[1][0], Variant::Int(0));
    }

    #[test]
    fn distinct_dedups() {
        let db = db_with_nums();
        let r = db.query("SELECT DISTINCT a % 3 AS m FROM nums ORDER BY m").unwrap();
        assert_eq!(r.rows.len(), 3);
    }

    #[test]
    fn select_without_from() {
        let db = Database::new();
        let r = db.query("SELECT 1 + 2 AS x, 'hi' AS y").unwrap();
        assert_eq!(r.rows, vec![vec![Variant::Int(3), Variant::str("hi")]]);
    }

    #[test]
    fn snapshot_pins_a_catalog_version() {
        let db = db_with_nums();
        let snap = db.snapshot();
        let before = snap.table("nums").unwrap().row_count();
        db.execute("INSERT INTO nums VALUES (100, 1.0)").unwrap();
        // The pinned snapshot still sees the old version; a fresh one sees
        // the new row.
        assert_eq!(snap.table("nums").unwrap().row_count(), before);
        assert_eq!(db.table("nums").unwrap().row_count(), before + 1);
        assert!(db.snapshot().version() > snap.version());
    }

    #[test]
    fn update_and_delete_rewrite_only_touched_partitions() {
        let db = Database::new();
        db.load_table_with_partition_rows(
            "t",
            vec![ColumnDef::new("X", ColumnType::Int)],
            (0..100).map(|i| vec![Variant::Int(i)]),
            10,
        )
        .unwrap();
        let before: Vec<_> = db.table("t").unwrap().partitions().to_vec();
        // Touches only the partition holding 95..100.
        match db.execute("DELETE FROM t WHERE x >= 95").unwrap() {
            StatementResult::Message(m) => assert_eq!(m, "deleted 5 row(s)"),
            other => panic!("unexpected {other:?}"),
        }
        let after = db.table("t").unwrap();
        assert_eq!(after.row_count(), 95);
        let kept = after
            .partitions()
            .iter()
            .filter(|p| before.iter().any(|q| Arc::ptr_eq(p, q)))
            .count();
        assert_eq!(kept, 9, "untouched partitions must be shared, not copied");

        match db.execute("UPDATE t SET x = x + 1000 WHERE x < 5").unwrap() {
            StatementResult::Message(m) => assert_eq!(m, "updated 5 row(s)"),
            other => panic!("unexpected {other:?}"),
        }
        let sum = db.query_scalar("SELECT sum(x) FROM t WHERE x >= 1000").unwrap();
        assert_eq!(sum, Variant::Int(1000 + 1001 + 1002 + 1003 + 1004));
        assert_eq!(db.table("t").unwrap().row_count(), 95);
    }

    #[test]
    fn delete_with_null_predicate_keeps_null_rows() {
        let db = Database::new();
        db.load_table(
            "t",
            vec![ColumnDef::new("X", ColumnType::Int)],
            vec![vec![Variant::Int(1)], vec![Variant::Null], vec![Variant::Int(3)]],
        )
        .unwrap();
        // x > 2 is NULL on the NULL row: the row must survive.
        match db.execute("DELETE FROM t WHERE x > 2").unwrap() {
            StatementResult::Message(m) => assert_eq!(m, "deleted 1 row(s)"),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(db.table("t").unwrap().row_count(), 2);
    }

    #[test]
    fn transactions_on_the_bare_database_point_at_sessions() {
        let db = db_with_nums();
        for sql in ["BEGIN", "COMMIT", "ROLLBACK"] {
            match db.execute(sql) {
                Err(SnowError::Catalog(m)) => assert!(m.contains("Session"), "{m}"),
                other => panic!("unexpected {other:?}"),
            }
        }
    }
}
