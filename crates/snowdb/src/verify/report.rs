//! Divergence reports: the renderable outcome of one oracle run.

use std::fmt::Write as _;

/// Outcome of verifying one query across a configuration lattice.
#[derive(Clone, Debug)]
pub struct VerifyReport {
    /// The verified query text.
    pub query: String,
    /// Label of the baseline configuration every other one is compared to.
    pub baseline: String,
    /// One entry per configuration, in lattice order.
    pub outcomes: Vec<ConfigOutcome>,
    /// One entry per configuration that disagreed with the baseline.
    pub divergences: Vec<Divergence>,
}

/// What one configuration produced.
#[derive(Clone, Debug)]
pub struct ConfigOutcome {
    pub label: String,
    /// Result cardinality; `None` when the configuration errored.
    pub rows: Option<usize>,
    pub error: Option<String>,
    /// Whether this configuration agreed with the baseline.
    pub agrees: bool,
}

/// A minimized repro for one disagreeing configuration: the first differing
/// row (or the error asymmetry), both plans, and both metrics trees.
#[derive(Clone, Debug)]
pub struct Divergence {
    pub candidate: String,
    pub detail: DivergenceDetail,
    /// `EXPLAIN` of the baseline plan.
    pub baseline_plan: String,
    /// `EXPLAIN` of the candidate plan.
    pub candidate_plan: String,
    /// Baseline plan annotated with measured per-operator metrics.
    pub baseline_metrics: String,
    /// Candidate plan annotated with measured per-operator metrics.
    pub candidate_metrics: String,
}

/// How the candidate disagreed.
#[derive(Clone, Debug)]
pub enum DivergenceDetail {
    /// Result sets differ; rows are pre-rendered, `None` marks the shorter
    /// side running out of rows.
    Row { index: usize, baseline_row: Option<String>, candidate_row: Option<String> },
    /// One side errored (or both, with different messages).
    Error { baseline_error: Option<String>, candidate_error: Option<String> },
}

impl VerifyReport {
    /// True when every configuration agreed with the baseline.
    pub fn agrees(&self) -> bool {
        self.divergences.is_empty()
    }

    /// Renders the report: a per-configuration summary, then a full repro for
    /// each divergence.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "VERIFY {}", self.query);
        let _ = writeln!(
            out,
            "{} configuration(s), baseline: {}",
            self.outcomes.len(),
            self.baseline
        );
        for o in &self.outcomes {
            let status = match (&o.error, o.agrees) {
                (Some(e), true) => format!("error (matches baseline): {e}"),
                (Some(e), false) => format!("DIVERGED: error: {e}"),
                (None, true) => format!("{} row(s), agrees", o.rows.unwrap_or(0)),
                (None, false) => format!("{} row(s), DIVERGED", o.rows.unwrap_or(0)),
            };
            let _ = writeln!(out, "  {:<28} {}", o.label, status);
        }
        if self.agrees() {
            let _ = writeln!(out, "result: all configurations agree");
            return out;
        }
        for d in &self.divergences {
            let _ = writeln!(out, "\ndivergence: {} vs baseline {}", d.candidate, self.baseline);
            match &d.detail {
                DivergenceDetail::Row { index, baseline_row, candidate_row } => {
                    let _ = writeln!(out, "  first differing row (canonical order) #{index}:");
                    let _ = writeln!(
                        out,
                        "    baseline:  {}",
                        baseline_row.as_deref().unwrap_or("<no row>")
                    );
                    let _ = writeln!(
                        out,
                        "    candidate: {}",
                        candidate_row.as_deref().unwrap_or("<no row>")
                    );
                }
                DivergenceDetail::Error { baseline_error, candidate_error } => {
                    let _ = writeln!(
                        out,
                        "  baseline:  {}",
                        baseline_error.as_deref().unwrap_or("<ok>")
                    );
                    let _ = writeln!(
                        out,
                        "  candidate: {}",
                        candidate_error.as_deref().unwrap_or("<ok>")
                    );
                }
            }
            let _ = writeln!(out, "  baseline plan:");
            indent_into(&mut out, &d.baseline_plan);
            let _ = writeln!(out, "  candidate plan:");
            indent_into(&mut out, &d.candidate_plan);
            if !d.baseline_metrics.is_empty() {
                let _ = writeln!(out, "  baseline metrics:");
                indent_into(&mut out, &d.baseline_metrics);
            }
            if !d.candidate_metrics.is_empty() {
                let _ = writeln!(out, "  candidate metrics:");
                indent_into(&mut out, &d.candidate_metrics);
            }
        }
        out
    }
}

fn indent_into(out: &mut String, text: &str) {
    for line in text.lines() {
        let _ = writeln!(out, "    {line}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_shows_divergence_repro() {
        let report = VerifyReport {
            query: "SELECT x FROM t".into(),
            baseline: "optimized/threads=1".into(),
            outcomes: vec![
                ConfigOutcome {
                    label: "optimized/threads=1".into(),
                    rows: Some(3),
                    error: None,
                    agrees: true,
                },
                ConfigOutcome {
                    label: "raw/threads=2".into(),
                    rows: Some(2),
                    error: None,
                    agrees: false,
                },
            ],
            divergences: vec![Divergence {
                candidate: "raw/threads=2".into(),
                detail: DivergenceDetail::Row {
                    index: 2,
                    baseline_row: Some("[3]".into()),
                    candidate_row: None,
                },
                baseline_plan: "Scan t".into(),
                candidate_plan: "Filter\n  Scan t".into(),
                baseline_metrics: String::new(),
                candidate_metrics: String::new(),
            }],
        };
        assert!(!report.agrees());
        let text = report.render();
        assert!(text.contains("DIVERGED"));
        assert!(text.contains("first differing row"));
        assert!(text.contains("<no row>"));
        assert!(text.contains("candidate plan:"));
    }

    #[test]
    fn render_agreement_is_compact() {
        let report = VerifyReport {
            query: "SELECT 1".into(),
            baseline: "optimized/threads=1".into(),
            outcomes: vec![ConfigOutcome {
                label: "optimized/threads=1".into(),
                rows: Some(1),
                error: None,
                agrees: true,
            }],
            divergences: vec![],
        };
        assert!(report.agrees());
        assert!(report.render().contains("all configurations agree"));
    }
}
