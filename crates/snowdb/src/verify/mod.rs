//! Differential correctness oracle over the SQL execution-configuration
//! lattice.
//!
//! The paper's central claim is semantic equivalence under translation: a
//! query must return the same answer no matter which of the engine's execution
//! configurations runs it. This module executes one query across
//! {optimizer on/off} × {thread counts} and compares the results under a
//! canonical ordering with epsilon-aware equality ([`compare`]); on
//! disagreement it emits a minimized repro ([`report`]) carrying the query
//! text, `EXPLAIN` of both plans, the first differing row, and both
//! per-operator metrics trees.
//!
//! The JSONiq-level axes of the lattice (nested strategy, interpreter ground
//! truth) live in `jsoniq-core::verify`, which layers on top of the
//! primitives here — `snowdb` cannot depend on its own front-ends.

pub mod compare;
pub mod report;

pub use compare::{canonical_rows, cmp_rows, first_diff, rows_eq_eps, variant_eq_eps};
pub use report::{ConfigOutcome, Divergence, DivergenceDetail, VerifyReport};

use std::sync::Arc;

use crate::engine::{Database, QueryOptions};
use crate::error::{Result, SnowError};
use crate::govern::chaos::ChaosSchedule;
use crate::govern::QueryGovernor;
use crate::variant::Variant;

/// Default relative epsilon for float comparison: wide enough to absorb
/// accumulation-order differences between plans, far too narrow to hide a
/// wrong answer.
pub const DEFAULT_EPSILON: f64 = 1e-9;

/// One point of the SQL-side configuration lattice.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SqlConfig {
    /// Run the optimizer passes (pushdown, join detection, pruning) or
    /// execute the raw bound plan.
    pub optimize: bool,
    /// Worker threads for the morsel-parallel pipeline.
    pub threads: usize,
    /// Run the typed vectorized kernels or force the row-at-a-time path.
    pub vectorize: bool,
    /// Let encoded (dictionary / run-length) blocks flow into the executor,
    /// or decode every block at the scan boundary.
    pub encode: bool,
}

impl SqlConfig {
    /// Human-readable label used in reports.
    pub fn label(&self) -> String {
        format!(
            "{}/threads={}/{}/{}",
            if self.optimize { "optimized" } else { "raw" },
            self.threads,
            if self.vectorize { "vec" } else { "row" },
            if self.encode { "enc" } else { "dec" }
        )
    }
}

/// The default lattice: {optimized, raw} × {1, 2, `max_threads`} ×
/// {vectorized, row-at-a-time} × {encoded, decoded} with duplicate thread
/// counts collapsed. The optimized serial vectorized encoded configuration
/// comes first and acts as the baseline.
pub fn default_lattice(max_threads: usize) -> Vec<SqlConfig> {
    let mut threads = vec![1usize, 2, max_threads.max(1)];
    threads.sort_unstable();
    threads.dedup();
    let mut out = Vec::with_capacity(threads.len() * 8);
    for optimize in [true, false] {
        for &t in &threads {
            for vectorize in [true, false] {
                for encode in [true, false] {
                    out.push(SqlConfig { optimize, threads: t, vectorize, encode });
                }
            }
        }
    }
    out
}

/// Runs `sql` under every configuration and compares each result to the
/// first configuration's (the baseline). A configuration agrees when both
/// produce equal canonicalized results, or both fail with the same error;
/// anything else records a [`Divergence`] with a full repro.
pub fn verify_sql(
    db: &Database,
    sql: &str,
    configs: &[SqlConfig],
    epsilon: f64,
) -> Result<VerifyReport> {
    if configs.is_empty() {
        return Err(SnowError::Exec("verify: empty configuration lattice".into()));
    }

    struct Run {
        config: SqlConfig,
        rows: Option<Vec<Vec<Variant>>>,
        error: Option<String>,
        metrics: String,
    }

    let mut runs = Vec::with_capacity(configs.len());
    for cfg in configs {
        let opts = QueryOptions {
            optimize: cfg.optimize,
            threads: Some(cfg.threads),
            vectorize: Some(cfg.vectorize),
            encode: Some(cfg.encode),
        };
        match db.query_with(sql, &opts) {
            Ok(result) => {
                // Annotate the plan with the measured metrics now, while both
                // are in hand; the repro only needs the rendered text.
                let metrics = match (&result.profile.metrics, db.compile_with(sql, cfg.optimize))
                {
                    (Some(m), Ok(plan)) => crate::plan::explain_analyze(&plan, m),
                    _ => String::new(),
                };
                runs.push(Run {
                    config: *cfg,
                    rows: Some(canonical_rows(result.rows)),
                    error: None,
                    metrics,
                });
            }
            Err(e) => runs.push(Run {
                config: *cfg,
                rows: None,
                error: Some(e.to_string()),
                metrics: String::new(),
            }),
        }
    }

    let baseline = &runs[0];
    let baseline_plan = db
        .explain_with(sql, baseline.config.optimize)
        .unwrap_or_else(|e| format!("<explain failed: {e}>"));

    let mut outcomes = Vec::with_capacity(runs.len());
    let mut divergences = Vec::new();
    for (i, run) in runs.iter().enumerate() {
        let (agrees, detail) = if i == 0 {
            (true, None)
        } else {
            diff_runs(
                baseline.rows.as_deref(),
                baseline.error.as_deref(),
                run.rows.as_deref(),
                run.error.as_deref(),
                epsilon,
            )
        };
        outcomes.push(ConfigOutcome {
            label: run.config.label(),
            rows: run.rows.as_ref().map(Vec::len),
            error: run.error.clone(),
            agrees,
        });
        if let Some(detail) = detail {
            divergences.push(Divergence {
                candidate: run.config.label(),
                detail,
                baseline_plan: baseline_plan.clone(),
                candidate_plan: db
                    .explain_with(sql, run.config.optimize)
                    .unwrap_or_else(|e| format!("<explain failed: {e}>")),
                baseline_metrics: baseline.metrics.clone(),
                candidate_metrics: run.metrics.clone(),
            });
        }
    }

    Ok(VerifyReport {
        query: sql.to_string(),
        baseline: baseline.config.label(),
        outcomes,
        divergences,
    })
}

/// Outcome of one seeded fault schedule in [`verify_sql_chaos`].
#[derive(Clone, Debug)]
pub struct ChaosOutcome {
    /// The schedule's seed; re-running with `ChaosSchedule::new(seed)` and
    /// one thread reproduces the exact injection decisions.
    pub seed: u64,
    /// One-line description: `completed, agrees` or the typed error.
    pub outcome: String,
    /// False when this seed violated the soundness property.
    pub sound: bool,
}

/// Result of driving one query through [`verify_sql_chaos`].
#[derive(Clone, Debug)]
pub struct ChaosReport {
    pub query: String,
    pub threads: usize,
    pub outcomes: Vec<ChaosOutcome>,
    /// Full repro text for every unsound seed.
    pub failures: Vec<String>,
}

impl ChaosReport {
    /// True when every schedule ended in the correct result or a typed error
    /// *and* the engine answered the un-faulted re-run correctly afterwards.
    pub fn sound(&self) -> bool {
        self.failures.is_empty()
    }

    /// Seeds under which the query still completed with the right answer.
    pub fn completed(&self) -> usize {
        self.outcomes.iter().filter(|o| o.outcome.starts_with("completed")).count()
    }

    pub fn render(&self) -> String {
        let mut out = format!(
            "==== chaos: {} schedule(s), threads={} ====\n{}\n",
            self.outcomes.len(),
            self.threads,
            self.query.trim()
        );
        for o in &self.outcomes {
            out.push_str(&format!(
                "  seed {:<6} {} {}\n",
                o.seed,
                if o.sound { "ok:" } else { "UNSOUND:" },
                o.outcome
            ));
        }
        for f in &self.failures {
            out.push('\n');
            out.push_str(f);
            out.push('\n');
        }
        out
    }
}

/// Drives `sql` through a list of seeded fault-injection schedules and checks
/// the governance soundness property for each:
///
/// 1. the faulted run must either complete with the baseline's answer or
///    fail with a typed [`SnowError`] — the chaos panics a schedule injects
///    must have been isolated into typed errors by then (an unisolated panic
///    would abort the test process, which is itself a detection);
/// 2. immediately afterwards the *un-faulted* engine must produce the
///    baseline answer again — injected faults must not poison engine state.
///
/// The baseline is one un-faulted run under the same `threads`/optimizer
/// configuration. Each failure carries the seed, so a CI failure replays with
/// `ChaosSchedule::new(seed)` at `SNOWDB_THREADS=1`.
pub fn verify_sql_chaos(
    db: &Database,
    sql: &str,
    seeds: &[u64],
    threads: usize,
    epsilon: f64,
) -> Result<ChaosReport> {
    let opts = QueryOptions {
        optimize: true,
        threads: Some(threads),
        vectorize: None,
        encode: None,
    };
    let baseline = match db.query_with(sql, &opts) {
        Ok(r) => Ok(canonical_rows(r.rows)),
        Err(e) => Err(e.to_string()),
    };

    let mut outcomes = Vec::with_capacity(seeds.len());
    let mut failures = Vec::new();
    for &seed in seeds {
        let gov =
            Arc::new(QueryGovernor::unbounded().with_chaos(ChaosSchedule::new(seed)));
        let faulted = match db.query_governed(sql, &opts, gov) {
            Ok(r) => Ok(canonical_rows(r.rows)),
            Err(f) => Err(f.error.to_string()),
        };

        let (sound, outcome) = match (&baseline, &faulted) {
            // A faulted run that completes must have the right answer.
            (Ok(b), Ok(c)) => match first_diff(b, c, epsilon) {
                None => (true, "completed, agrees".to_string()),
                Some((index, br, cr)) => (
                    false,
                    format!(
                        "completed with WRONG ANSWER at row {index}: baseline {:?}, \
                         faulted {:?}",
                        br.map(render_row),
                        cr.map(render_row)
                    ),
                ),
            },
            // Any typed error is a sound outcome under injected faults.
            (_, Err(e)) => (true, format!("typed error: {e}")),
            (Err(b), Ok(_)) => (
                false,
                format!("completed but the un-faulted baseline fails with: {b}"),
            ),
        };
        if !sound {
            failures.push(format!(
                "chaos divergence (seed {seed}, threads {threads})\n  query: {}\n  {}",
                sql.trim(),
                outcome
            ));
        }
        outcomes.push(ChaosOutcome { seed, outcome, sound });

        // Recovery: the engine must answer the same query un-faulted,
        // identically to the baseline, after every schedule.
        let recovered = match db.query_with(sql, &opts) {
            Ok(r) => Ok(canonical_rows(r.rows)),
            Err(e) => Err(e.to_string()),
        };
        let recovery_ok = match (&baseline, &recovered) {
            (Ok(b), Ok(c)) => first_diff(b, c, epsilon).is_none(),
            (Err(b), Err(c)) => b == c,
            _ => false,
        };
        if !recovery_ok {
            failures.push(format!(
                "engine failed to recover after chaos seed {seed} (threads \
                 {threads})\n  query: {}\n  baseline: {}\n  after-chaos: {}",
                sql.trim(),
                describe(&baseline),
                describe(&recovered)
            ));
        }
    }

    Ok(ChaosReport { query: sql.to_string(), threads, outcomes, failures })
}

fn describe(r: &std::result::Result<Vec<Vec<Variant>>, String>) -> String {
    match r {
        Ok(rows) => format!("{} row(s)", rows.len()),
        Err(e) => format!("error: {e}"),
    }
}

/// Compares one run against the baseline; on disagreement returns the repro
/// detail.
fn diff_runs(
    baseline_rows: Option<&[Vec<Variant>]>,
    baseline_err: Option<&str>,
    candidate_rows: Option<&[Vec<Variant>]>,
    candidate_err: Option<&str>,
    epsilon: f64,
) -> (bool, Option<DivergenceDetail>) {
    match (baseline_rows, candidate_rows) {
        (Some(b), Some(c)) => match first_diff(b, c, epsilon) {
            None => (true, None),
            Some((index, br, cr)) => (
                false,
                Some(DivergenceDetail::Row {
                    index,
                    baseline_row: br.map(render_row),
                    candidate_row: cr.map(render_row),
                }),
            ),
        },
        // At least one side errored: agreement requires both to fail the same
        // way — a plan that errors only under one configuration is a real
        // divergence (e.g. a predicate pushed onto rows the unpushed plan
        // never evaluates).
        _ if baseline_err.is_some() && baseline_err == candidate_err => (true, None),
        _ => (
            false,
            Some(DivergenceDetail::Error {
                baseline_error: baseline_err.map(str::to_string),
                candidate_error: candidate_err.map(str::to_string),
            }),
        ),
    }
}

/// Renders one row for a report: `[v1, v2, ...]` with strings quoted. Public
/// so the JSONiq-level lattice (`jsoniq-core::verify`) renders rows the same
/// way.
pub fn render_row(row: &[Variant]) -> String {
    let mut out = String::from("[");
    for (i, v) in row.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        match v {
            Variant::Str(s) => {
                out.push('\'');
                out.push_str(s);
                out.push('\'');
            }
            other => out.push_str(&other.to_string()),
        }
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::{ColumnDef, ColumnType};

    fn db() -> Database {
        let d = Database::new();
        d.load_table_with_partition_rows(
            "t",
            vec![
                ColumnDef::new("ID", ColumnType::Int),
                ColumnDef::new("X", ColumnType::Float),
            ],
            (0..40).map(|i| vec![Variant::Int(i), Variant::Float(i as f64 / 4.0)]),
            8,
        )
        .unwrap();
        d
    }

    #[test]
    fn default_lattice_covers_both_optimizer_modes() {
        let l = default_lattice(4);
        assert_eq!(l.len(), 24);
        assert!(l.iter().any(|c| c.optimize && c.threads == 4 && c.vectorize && c.encode));
        assert!(l.iter().any(|c| !c.optimize && c.threads == 1 && !c.vectorize && !c.encode));
        // Duplicate thread counts collapse.
        assert_eq!(default_lattice(1).len(), 16);
        assert_eq!(
            l[0],
            SqlConfig { optimize: true, threads: 1, vectorize: true, encode: true }
        );
    }

    #[test]
    fn verify_agreement_on_plain_aggregate() {
        let d = db();
        let report = verify_sql(
            &d,
            "SELECT ID % 3 AS g, SUM(X) AS s FROM t GROUP BY ID % 3",
            &default_lattice(4),
            DEFAULT_EPSILON,
        )
        .unwrap();
        assert!(report.agrees(), "{}", report.render());
        assert!(report.outcomes.iter().all(|o| o.rows == Some(3)));
    }

    #[test]
    fn verify_agreement_on_matching_errors() {
        let d = db();
        // Division by zero fails identically under every configuration.
        let report = verify_sql(
            &d,
            "SELECT 1 / (ID - ID) FROM t",
            &default_lattice(2),
            DEFAULT_EPSILON,
        )
        .unwrap();
        assert!(report.agrees(), "{}", report.render());
        assert!(report.outcomes.iter().all(|o| o.error.is_some()));
    }

    #[test]
    fn chaos_schedules_are_sound_on_aggregate() {
        let d = db();
        // Quiet the default hook for injected chaos panics only; everything
        // else keeps printing.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !msg.contains(crate::govern::chaos::CHAOS_PANIC_MARKER) {
                eprintln!("panic: {msg}");
            }
        }));
        let report = verify_sql_chaos(
            &d,
            "SELECT ID % 3 AS g, SUM(X) AS s FROM t GROUP BY ID % 3",
            &(0..8).collect::<Vec<u64>>(),
            2,
            DEFAULT_EPSILON,
        );
        std::panic::set_hook(prev);
        let report = report.unwrap();
        assert_eq!(report.outcomes.len(), 8);
        assert!(report.sound(), "{}", report.render());
    }

    #[test]
    fn verify_statement_surfaces_report() {
        let d = db();
        match d.execute("VERIFY SELECT COUNT(*) FROM t WHERE X > 2.0").unwrap() {
            crate::engine::StatementResult::Message(m) => {
                assert!(m.contains("all configurations agree"), "{m}");
            }
            other => panic!("expected message, got {other:?}"),
        }
    }
}
