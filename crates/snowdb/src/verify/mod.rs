//! Differential correctness oracle over the SQL execution-configuration
//! lattice.
//!
//! The paper's central claim is semantic equivalence under translation: a
//! query must return the same answer no matter which of the engine's execution
//! configurations runs it. This module executes one query across
//! {optimizer on/off} × {thread counts} and compares the results under a
//! canonical ordering with epsilon-aware equality ([`compare`]); on
//! disagreement it emits a minimized repro ([`report`]) carrying the query
//! text, `EXPLAIN` of both plans, the first differing row, and both
//! per-operator metrics trees.
//!
//! The JSONiq-level axes of the lattice (nested strategy, interpreter ground
//! truth) live in `jsoniq-core::verify`, which layers on top of the
//! primitives here — `snowdb` cannot depend on its own front-ends.

pub mod compare;
pub mod report;

pub use compare::{canonical_rows, cmp_rows, first_diff, rows_eq_eps, variant_eq_eps};
pub use report::{ConfigOutcome, Divergence, DivergenceDetail, VerifyReport};

use crate::engine::{Database, QueryOptions};
use crate::error::{Result, SnowError};
use crate::variant::Variant;

/// Default relative epsilon for float comparison: wide enough to absorb
/// accumulation-order differences between plans, far too narrow to hide a
/// wrong answer.
pub const DEFAULT_EPSILON: f64 = 1e-9;

/// One point of the SQL-side configuration lattice.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SqlConfig {
    /// Run the optimizer passes (pushdown, join detection, pruning) or
    /// execute the raw bound plan.
    pub optimize: bool,
    /// Worker threads for the morsel-parallel pipeline.
    pub threads: usize,
}

impl SqlConfig {
    /// Human-readable label used in reports.
    pub fn label(&self) -> String {
        format!(
            "{}/threads={}",
            if self.optimize { "optimized" } else { "raw" },
            self.threads
        )
    }
}

/// The default lattice: {optimized, raw} × {1, 2, `max_threads`} with
/// duplicate thread counts collapsed. The optimized serial configuration
/// comes first and acts as the baseline.
pub fn default_lattice(max_threads: usize) -> Vec<SqlConfig> {
    let mut threads = vec![1usize, 2, max_threads.max(1)];
    threads.sort_unstable();
    threads.dedup();
    let mut out = Vec::with_capacity(threads.len() * 2);
    for optimize in [true, false] {
        for &t in &threads {
            out.push(SqlConfig { optimize, threads: t });
        }
    }
    out
}

/// Runs `sql` under every configuration and compares each result to the
/// first configuration's (the baseline). A configuration agrees when both
/// produce equal canonicalized results, or both fail with the same error;
/// anything else records a [`Divergence`] with a full repro.
pub fn verify_sql(
    db: &Database,
    sql: &str,
    configs: &[SqlConfig],
    epsilon: f64,
) -> Result<VerifyReport> {
    if configs.is_empty() {
        return Err(SnowError::Exec("verify: empty configuration lattice".into()));
    }

    struct Run {
        config: SqlConfig,
        rows: Option<Vec<Vec<Variant>>>,
        error: Option<String>,
        metrics: String,
    }

    let mut runs = Vec::with_capacity(configs.len());
    for cfg in configs {
        let opts = QueryOptions { optimize: cfg.optimize, threads: Some(cfg.threads) };
        match db.query_with(sql, &opts) {
            Ok(result) => {
                // Annotate the plan with the measured metrics now, while both
                // are in hand; the repro only needs the rendered text.
                let metrics = match (&result.profile.metrics, db.compile_with(sql, cfg.optimize))
                {
                    (Some(m), Ok(plan)) => crate::plan::explain_analyze(&plan, m),
                    _ => String::new(),
                };
                runs.push(Run {
                    config: *cfg,
                    rows: Some(canonical_rows(result.rows)),
                    error: None,
                    metrics,
                });
            }
            Err(e) => runs.push(Run {
                config: *cfg,
                rows: None,
                error: Some(e.to_string()),
                metrics: String::new(),
            }),
        }
    }

    let baseline = &runs[0];
    let baseline_plan = db
        .explain_with(sql, baseline.config.optimize)
        .unwrap_or_else(|e| format!("<explain failed: {e}>"));

    let mut outcomes = Vec::with_capacity(runs.len());
    let mut divergences = Vec::new();
    for (i, run) in runs.iter().enumerate() {
        let (agrees, detail) = if i == 0 {
            (true, None)
        } else {
            diff_runs(
                baseline.rows.as_deref(),
                baseline.error.as_deref(),
                run.rows.as_deref(),
                run.error.as_deref(),
                epsilon,
            )
        };
        outcomes.push(ConfigOutcome {
            label: run.config.label(),
            rows: run.rows.as_ref().map(Vec::len),
            error: run.error.clone(),
            agrees,
        });
        if let Some(detail) = detail {
            divergences.push(Divergence {
                candidate: run.config.label(),
                detail,
                baseline_plan: baseline_plan.clone(),
                candidate_plan: db
                    .explain_with(sql, run.config.optimize)
                    .unwrap_or_else(|e| format!("<explain failed: {e}>")),
                baseline_metrics: baseline.metrics.clone(),
                candidate_metrics: run.metrics.clone(),
            });
        }
    }

    Ok(VerifyReport {
        query: sql.to_string(),
        baseline: baseline.config.label(),
        outcomes,
        divergences,
    })
}

/// Compares one run against the baseline; on disagreement returns the repro
/// detail.
fn diff_runs(
    baseline_rows: Option<&[Vec<Variant>]>,
    baseline_err: Option<&str>,
    candidate_rows: Option<&[Vec<Variant>]>,
    candidate_err: Option<&str>,
    epsilon: f64,
) -> (bool, Option<DivergenceDetail>) {
    match (baseline_rows, candidate_rows) {
        (Some(b), Some(c)) => match first_diff(b, c, epsilon) {
            None => (true, None),
            Some((index, br, cr)) => (
                false,
                Some(DivergenceDetail::Row {
                    index,
                    baseline_row: br.map(render_row),
                    candidate_row: cr.map(render_row),
                }),
            ),
        },
        // At least one side errored: agreement requires both to fail the same
        // way — a plan that errors only under one configuration is a real
        // divergence (e.g. a predicate pushed onto rows the unpushed plan
        // never evaluates).
        _ if baseline_err.is_some() && baseline_err == candidate_err => (true, None),
        _ => (
            false,
            Some(DivergenceDetail::Error {
                baseline_error: baseline_err.map(str::to_string),
                candidate_error: candidate_err.map(str::to_string),
            }),
        ),
    }
}

/// Renders one row for a report: `[v1, v2, ...]` with strings quoted. Public
/// so the JSONiq-level lattice (`jsoniq-core::verify`) renders rows the same
/// way.
pub fn render_row(row: &[Variant]) -> String {
    let mut out = String::from("[");
    for (i, v) in row.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        match v {
            Variant::Str(s) => {
                out.push('\'');
                out.push_str(s);
                out.push('\'');
            }
            other => out.push_str(&other.to_string()),
        }
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::{ColumnDef, ColumnType};

    fn db() -> Database {
        let d = Database::new();
        d.load_table_with_partition_rows(
            "t",
            vec![
                ColumnDef::new("ID", ColumnType::Int),
                ColumnDef::new("X", ColumnType::Float),
            ],
            (0..40).map(|i| vec![Variant::Int(i), Variant::Float(i as f64 / 4.0)]),
            8,
        )
        .unwrap();
        d
    }

    #[test]
    fn default_lattice_covers_both_optimizer_modes() {
        let l = default_lattice(4);
        assert_eq!(l.len(), 6);
        assert!(l.iter().any(|c| c.optimize && c.threads == 4));
        assert!(l.iter().any(|c| !c.optimize && c.threads == 1));
        // Duplicate thread counts collapse.
        assert_eq!(default_lattice(1).len(), 4);
        assert_eq!(l[0], SqlConfig { optimize: true, threads: 1 });
    }

    #[test]
    fn verify_agreement_on_plain_aggregate() {
        let d = db();
        let report = verify_sql(
            &d,
            "SELECT ID % 3 AS g, SUM(X) AS s FROM t GROUP BY ID % 3",
            &default_lattice(4),
            DEFAULT_EPSILON,
        )
        .unwrap();
        assert!(report.agrees(), "{}", report.render());
        assert!(report.outcomes.iter().all(|o| o.rows == Some(3)));
    }

    #[test]
    fn verify_agreement_on_matching_errors() {
        let d = db();
        // Division by zero fails identically under every configuration.
        let report = verify_sql(
            &d,
            "SELECT 1 / (ID - ID) FROM t",
            &default_lattice(2),
            DEFAULT_EPSILON,
        )
        .unwrap();
        assert!(report.agrees(), "{}", report.render());
        assert!(report.outcomes.iter().all(|o| o.error.is_some()));
    }

    #[test]
    fn verify_statement_surfaces_report() {
        let d = db();
        match d.execute("VERIFY SELECT COUNT(*) FROM t WHERE X > 2.0").unwrap() {
            crate::engine::StatementResult::Message(m) => {
                assert!(m.contains("all configurations agree"), "{m}");
            }
            other => panic!("expected message, got {other:?}"),
        }
    }
}
