//! Canonical ordering and epsilon-aware equality for result comparison.
//!
//! Two configurations "agree" when their result multisets are equal under a
//! canonical row order and a tolerant notion of value equality: floating-point
//! aggregates may legitimately differ in the last bits between plans that
//! accumulate in different orders (hash join vs. nested loop, serial vs.
//! merged partial aggregates), so numbers compare with a relative epsilon and
//! `NaN` equals `NaN`.

use std::cmp::Ordering;

use crate::variant::{cmp_variants, NumericPair, Variant};

/// Sorts rows into the canonical order: lexicographic by [`cmp_variants`],
/// shorter rows first on a shared prefix. Queries without a total `ORDER BY`
/// may return rows in any order (and parallel plans do), so every comparison
/// starts from this normal form.
pub fn canonical_rows(mut rows: Vec<Vec<Variant>>) -> Vec<Vec<Variant>> {
    rows.sort_by(|a, b| cmp_rows(a, b));
    rows
}

/// Total order over rows used by [`canonical_rows`].
pub fn cmp_rows(a: &[Variant], b: &[Variant]) -> Ordering {
    for (x, y) in a.iter().zip(b.iter()) {
        let c = cmp_variants(x, y);
        if c != Ordering::Equal {
            return c;
        }
    }
    a.len().cmp(&b.len())
}

/// Epsilon-aware value equality: numbers within relative `epsilon` are equal,
/// `NaN` equals `NaN`, containers compare element-wise (objects key-wise,
/// order-insensitively), everything else falls back to exact equality.
pub fn variant_eq_eps(a: &Variant, b: &Variant, epsilon: f64) -> bool {
    match (a, b) {
        (Variant::Array(x), Variant::Array(y)) => {
            x.len() == y.len()
                && x.iter().zip(y.iter()).all(|(xi, yi)| variant_eq_eps(xi, yi, epsilon))
        }
        (Variant::Object(x), Variant::Object(y)) => {
            x.len() == y.len()
                && x.iter().all(|(k, vx)| {
                    y.iter()
                        .find(|(ky, _)| *ky == k)
                        .is_some_and(|(_, vy)| variant_eq_eps(vx, vy, epsilon))
                })
        }
        _ => match NumericPair::coerce(a, b) {
            Some(NumericPair::Int(x, y)) => x == y,
            Some(NumericPair::Float(x, y)) => float_eq_eps(x, y, epsilon),
            None => a == b,
        },
    }
}

/// Relative-epsilon float equality with `NaN == NaN`.
fn float_eq_eps(x: f64, y: f64, epsilon: f64) -> bool {
    if x == y || (x.is_nan() && y.is_nan()) {
        return true;
    }
    (x - y).abs() <= epsilon * x.abs().max(y.abs()).max(1.0)
}

/// Row equality under [`variant_eq_eps`].
pub fn rows_eq_eps(a: &[Variant], b: &[Variant], epsilon: f64) -> bool {
    a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| variant_eq_eps(x, y, epsilon))
}

/// `(row index, row from a, row from b)`; a `None` side means that result set
/// ran out of rows first.
pub type RowDiff<'a> = (usize, Option<&'a [Variant]>, Option<&'a [Variant]>);

/// Finds the first position where two canonicalized result sets differ.
pub fn first_diff<'a>(
    a: &'a [Vec<Variant>],
    b: &'a [Vec<Variant>],
    epsilon: f64,
) -> Option<RowDiff<'a>> {
    for i in 0..a.len().max(b.len()) {
        match (a.get(i), b.get(i)) {
            (Some(x), Some(y)) if rows_eq_eps(x, y, epsilon) => continue,
            (x, y) => return Some((i, x.map(Vec::as_slice), y.map(Vec::as_slice))),
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_order_is_deterministic() {
        let rows = vec![
            vec![Variant::Int(2)],
            vec![Variant::Null],
            vec![Variant::Int(1), Variant::Int(9)],
            vec![Variant::Int(1)],
        ];
        let sorted = canonical_rows(rows);
        assert_eq!(sorted[0], vec![Variant::Int(1)]);
        assert_eq!(sorted[1], vec![Variant::Int(1), Variant::Int(9)]);
        assert_eq!(sorted[2], vec![Variant::Int(2)]);
        assert!(sorted[3][0].is_null());
    }

    #[test]
    fn epsilon_absorbs_accumulation_order_noise() {
        let a = Variant::Float(1.0e15);
        let b = Variant::Float(1.0e15 + 1.0);
        assert!(variant_eq_eps(&a, &b, 1e-9));
        assert!(!variant_eq_eps(&a, &b, 1e-18));
        // NaN agrees with NaN, and ints stay exact.
        assert!(variant_eq_eps(
            &Variant::Float(f64::NAN),
            &Variant::Float(f64::NAN),
            1e-9
        ));
        assert!(!variant_eq_eps(&Variant::Int(1), &Variant::Int(2), 1e-9));
    }

    #[test]
    fn first_diff_reports_row_and_length_mismatches() {
        let a = vec![vec![Variant::Int(1)], vec![Variant::Int(2)]];
        let b = vec![vec![Variant::Int(1)], vec![Variant::Int(3)]];
        let (i, x, y) = first_diff(&a, &b, 1e-9).unwrap();
        assert_eq!(i, 1);
        assert_eq!(x.unwrap()[0], Variant::Int(2));
        assert_eq!(y.unwrap()[0], Variant::Int(3));

        let short = vec![vec![Variant::Int(1)]];
        let (i, x, y) = first_diff(&a, &short, 1e-9).unwrap();
        assert_eq!(i, 1);
        assert!(x.is_some() && y.is_none());
        assert!(first_diff(&a, &a, 1e-9).is_none());
    }
}
