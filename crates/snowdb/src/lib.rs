//! `snowdb` — an embedded, Snowflake-like analytical SQL engine.
//!
//! This crate is the substrate that stands in for the Snowflake Database in the
//! reproduction of *"Addressing the Nested Data Processing Gap: JSONiq Queries on
//! Snowflake Through Snowpark"* (ICDE 2024). It provides the properties the paper's
//! evaluation depends on:
//!
//! - a [`variant::Variant`] data type for schema-less nested data, with a first-party
//!   JSON parser/serializer;
//! - micro-partitioned, columnar [`storage`] with per-partition zone maps, partition
//!   pruning, and scanned-bytes accounting;
//! - a persistent micro-partition [`store`]: immutable columnar partition files,
//!   a versioned catalog with atomic commit, lazy column-granular reads, and a
//!   shared buffer cache — so `bytes_scanned` is actual file I/O and databases
//!   survive process restarts ([`Database::open`] / `Database::persist_to`);
//! - a [`sql`] dialect covering `SELECT`/`FROM` (with joins and `LATERAL FLATTEN`),
//!   `WHERE`, `GROUP BY`/`HAVING`, `ORDER BY`, `LIMIT`, `UNION ALL`, `CASE`, casts,
//!   variant path access (`col:field.sub[0]`), and the aggregate/scalar function set
//!   the paper's translation layer requires (`ARRAY_AGG`, `ANY_VALUE`, `BOOLAND_AGG`,
//!   `OBJECT_CONSTRUCT`, `SEQ8`, ...);
//! - a rule-based [`optimize`] layer (constant folding, predicate pushdown, projection
//!   pruning) so that a single translated SQL query is optimized end-to-end, which is
//!   the paper's core argument for avoiding UDFs and interpretation overhead;
//! - an [`engine::Database`] entry point that reports a per-query
//!   [`engine::QueryProfile`] with separate compilation and execution phases plus
//!   bytes scanned — the three quantities measured in the paper's §V;
//! - an MVCC [`catalog`]: every statement pins an immutable
//!   [`catalog::CatalogSnapshot`], writers commit through an optimistic
//!   compare-and-swap (losers surface as typed [`SnowError::WriteConflict`]s),
//!   and [`session::Session`]s layer explicit `BEGIN`/`COMMIT`/`ROLLBACK`
//!   transactions with snapshot isolation on top.

pub mod catalog;
pub mod engine;
pub mod error;
pub mod exec;
pub mod govern;
pub mod optimize;
pub mod plan;
pub mod server;
pub mod session;
pub mod sql;
pub mod storage;
pub mod store;
pub mod variant;
pub mod verify;

pub use catalog::CatalogSnapshot;
pub use engine::{Database, QueryOptions, QueryProfile, QueryResult, StatementResult};
pub use session::Session;
pub use exec::metrics::OpMetrics;
pub use error::{
    AdmissionTrip, DeadlineTrip, InternalTrip, ResourceTrip, Result, SnowError,
    WriteConflictTrip,
};
pub use server::{serve, ServerConfig, ServerHandle};
pub use govern::{
    GovernorSummary, QueryFailure, QueryGovernor, QueryHandle, SessionParams,
};
pub use variant::Variant;
