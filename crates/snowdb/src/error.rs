//! Error type shared across the engine.

use std::fmt;

/// Errors produced while parsing, planning, or executing a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnowError {
    /// Tokenizer-level error: unexpected character, unterminated string, ...
    Lex(String),
    /// Parser-level error: unexpected token, malformed clause, ...
    Parse(String),
    /// Binder/planner error: unknown table or column, ambiguous name, ...
    Plan(String),
    /// Runtime error: type mismatch, bad cast, division by zero, ...
    Exec(String),
    /// Catalog error: duplicate or missing table, schema mismatch on insert.
    Catalog(String),
    /// JSON text could not be parsed into a [`crate::Variant`].
    Json(String),
}

impl fmt::Display for SnowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnowError::Lex(m) => write!(f, "lex error: {m}"),
            SnowError::Parse(m) => write!(f, "parse error: {m}"),
            SnowError::Plan(m) => write!(f, "plan error: {m}"),
            SnowError::Exec(m) => write!(f, "execution error: {m}"),
            SnowError::Catalog(m) => write!(f, "catalog error: {m}"),
            SnowError::Json(m) => write!(f, "json error: {m}"),
        }
    }
}

impl std::error::Error for SnowError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SnowError>;
