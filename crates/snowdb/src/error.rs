//! Error type shared across the engine.

use std::fmt;

/// Errors produced while parsing, planning, or executing a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnowError {
    /// Tokenizer-level error: unexpected character, unterminated string, ...
    Lex(String),
    /// Parser-level error: unexpected token, malformed clause, ...
    Parse(String),
    /// Binder/planner error: unknown table or column, ambiguous name, ...
    Plan(String),
    /// Runtime error: type mismatch, bad cast, division by zero, ...
    Exec(String),
    /// Catalog error: duplicate or missing table, schema mismatch on insert.
    Catalog(String),
    /// JSON text could not be parsed into a [`crate::Variant`].
    Json(String),
    /// The persistent micro-partition store failed: I/O error, corrupt
    /// partition file (bad magic, version, or checksum), torn manifest, or a
    /// missing file referenced by the committed catalog. Storage corruption
    /// surfaces as this typed error, never a panic.
    Storage(String),
    /// The query was cancelled cooperatively (via
    /// [`crate::govern::QueryGovernor::cancel`] or a `QueryHandle`). `op` is
    /// the physical operator that observed the cancellation at its batch
    /// boundary.
    Cancelled { op: String },
    /// The query ran past its wall-clock deadline
    /// (`STATEMENT_TIMEOUT_IN_SECONDS`). See [`DeadlineTrip`].
    DeadlineExceeded(Box<DeadlineTrip>),
    /// A resource budget tripped (`STATEMENT_MEMORY_LIMIT` /
    /// `MAX_BYTES_SCANNED`). See [`ResourceTrip`].
    ResourceExhausted(Box<ResourceTrip>),
    /// A worker panicked (or a chaos fault was injected) and the panic was
    /// isolated by the morsel layer instead of aborting the process. See
    /// [`InternalTrip`].
    Internal(Box<InternalTrip>),
    /// An optimistic commit lost the compare-and-swap race: another session
    /// committed a conflicting change to the same table (or the same
    /// partitions) after this writer pinned its base snapshot, and the
    /// bounded retries were exhausted. See [`WriteConflictTrip`]. Retrying
    /// the whole statement on a fresh snapshot may well succeed.
    WriteConflict(Box<WriteConflictTrip>),
    /// The wire protocol was violated: oversized length prefix, truncated
    /// payload, unknown opcode, malformed frame body, or an out-of-order
    /// handshake. The server answers with a typed error frame and closes the
    /// connection; it never panics and never allocates for an untrusted
    /// length.
    Protocol(String),
    /// The admission controller refused to run the statement: the global
    /// concurrency cap plus a full admission queue, a queue-wait deadline
    /// expiry, or a server shutdown that aborted queued work. See
    /// [`AdmissionTrip`]. The connection stays usable; resubmitting later may
    /// well succeed.
    Rejected(Box<AdmissionTrip>),
}

/// Payload of [`SnowError::DeadlineExceeded`]: `op` is the operator that
/// observed the expiry; `elapsed_ms`/`limit_ms` are the measured and
/// configured wall times.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadlineTrip {
    pub op: String,
    pub elapsed_ms: u64,
    pub limit_ms: u64,
}

/// Payload of [`SnowError::ResourceExhausted`]: `resource` names the budget
/// (`"memory"` for `STATEMENT_MEMORY_LIMIT`, `"bytes_scanned"` for
/// `MAX_BYTES_SCANNED`), `op` the operator charging at the time,
/// `used`/`limit` the byte counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceTrip {
    pub resource: String,
    pub op: String,
    pub used: u64,
    pub limit: u64,
}

/// Payload of [`SnowError::Internal`]: `op` is the operator whose worker
/// failed, `detail` the panic payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InternalTrip {
    pub op: String,
    pub detail: String,
}

/// Payload of [`SnowError::WriteConflict`]: `table` is the first table whose
/// conflict detection failed, `base_version` the catalog version the writer
/// pinned, `current_version` the committed version it raced against,
/// `attempts` how many optimistic attempts were made before surfacing, and
/// `detail` what specifically conflicted (concurrent drop, rewritten
/// partitions, schema change, ...).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteConflictTrip {
    pub table: String,
    pub base_version: u64,
    pub current_version: u64,
    pub attempts: u32,
    pub detail: String,
}

/// Payload of [`SnowError::Rejected`]: `reason` says why admission failed
/// (`"queue full"`, `"queue-wait deadline"`, `"server shutting down"`),
/// `session` is the server-assigned session id, and `queued_ms` how long the
/// statement waited in the admission queue before being refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdmissionTrip {
    pub reason: String,
    pub session: u64,
    pub queued_ms: u64,
}

impl SnowError {
    /// Convenience constructor used by the admission controller.
    pub fn rejected(reason: impl Into<String>, session: u64, queued_ms: u64) -> SnowError {
        SnowError::Rejected(Box::new(AdmissionTrip {
            reason: reason.into(),
            session,
            queued_ms,
        }))
    }

    /// Convenience constructor used by the panic-isolation layer.
    pub fn internal(op: impl Into<String>, detail: impl Into<String>) -> SnowError {
        SnowError::Internal(Box::new(InternalTrip {
            op: op.into(),
            detail: detail.into(),
        }))
    }

    /// Convenience constructor used by the optimistic-commit layer.
    pub fn write_conflict(
        table: impl Into<String>,
        base_version: u64,
        current_version: u64,
        detail: impl Into<String>,
    ) -> SnowError {
        SnowError::WriteConflict(Box::new(WriteConflictTrip {
            table: table.into(),
            base_version,
            current_version,
            attempts: 1,
            detail: detail.into(),
        }))
    }

    /// True for errors raised by the query-lifecycle governor rather than by
    /// query semantics: cancellation, deadline, budget, or isolated panics.
    /// Re-running the same query on the same engine may well succeed.
    pub fn is_governance(&self) -> bool {
        matches!(
            self,
            SnowError::Cancelled { .. }
                | SnowError::DeadlineExceeded(_)
                | SnowError::ResourceExhausted(_)
                | SnowError::Internal(_)
        )
    }
}

impl fmt::Display for SnowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnowError::Lex(m) => write!(f, "lex error: {m}"),
            SnowError::Parse(m) => write!(f, "parse error: {m}"),
            SnowError::Plan(m) => write!(f, "plan error: {m}"),
            SnowError::Exec(m) => write!(f, "execution error: {m}"),
            SnowError::Catalog(m) => write!(f, "catalog error: {m}"),
            SnowError::Json(m) => write!(f, "json error: {m}"),
            SnowError::Storage(m) => write!(f, "storage error: {m}"),
            SnowError::Cancelled { op } => {
                write!(f, "query cancelled (observed at {op})")
            }
            SnowError::DeadlineExceeded(t) => write!(
                f,
                "statement timeout: {}ms elapsed, limit {}ms (observed at {})",
                t.elapsed_ms, t.limit_ms, t.op
            ),
            SnowError::ResourceExhausted(t) => write!(
                f,
                "resource exhausted: {} used {} bytes, limit {} (charged at {})",
                t.resource, t.used, t.limit, t.op
            ),
            SnowError::Internal(t) => {
                write!(f, "internal error in {}: {}", t.op, t.detail)
            }
            SnowError::WriteConflict(t) => write!(
                f,
                "write conflict on table '{}': {} (base version {}, committed version {}, {} attempt(s))",
                t.table, t.detail, t.base_version, t.current_version, t.attempts
            ),
            SnowError::Protocol(m) => write!(f, "protocol error: {m}"),
            SnowError::Rejected(t) => write!(
                f,
                "statement rejected: {} (session {}, queued {}ms)",
                t.reason, t.session, t.queued_ms
            ),
        }
    }
}

impl std::error::Error for SnowError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SnowError>;

#[cfg(test)]
mod tests {
    use super::*;

    /// `Result<Variant>` is the per-row return type of expression evaluation,
    /// so the error arm's width is a hot-path cost. The multi-field
    /// governance trips are boxed to keep the enum at one `String` plus
    /// discriminant; this pins the size so a new variant can't silently
    /// double every fallible return again.
    #[test]
    fn snow_error_stays_hot_path_sized() {
        assert!(
            std::mem::size_of::<SnowError>() <= std::mem::size_of::<String>() + 8,
            "SnowError grew to {} bytes; box large payloads",
            std::mem::size_of::<SnowError>()
        );
    }
}
