//! Multi-version catalog: immutable snapshots plus optimistic commits.
//!
//! This is the engine's MVCC core, built on the same storage model Snowflake
//! gets its concurrency story from: table data lives in *immutable*
//! micro-partitions, so a catalog version is nothing but a map from table
//! names to partition lists — and a snapshot is a cheap `Arc` of that map.
//!
//! - A [`CatalogSnapshot`] is one committed catalog version. Every query and
//!   every explicit transaction pins one and binds/executes entirely against
//!   it, so concurrent DDL/DML can never change what an in-flight statement
//!   sees (no torn multi-table binds, no half-applied drops).
//! - A [`SharedCatalog`] holds the current snapshot behind a lock that is
//!   taken only to *swap* the `Arc` — readers never block writers and
//!   vice versa.
//! - Writers describe their intent as a [`WriteSet`] of per-table
//!   [`TableWrite`]s *relative to the snapshot they pinned*, prepared
//!   entirely off to the side (new partition files included). The commit
//!   point re-checks the intent against the *current* snapshot
//!   ([`CatalogSnapshot::apply`]): a compare-and-swap with partition-level
//!   conflict detection rather than a blind version equality test, so two
//!   appenders to the same table both commit, while a rewrite whose source
//!   partitions were concurrently removed surfaces a typed
//!   [`SnowError::WriteConflict`].
//!
//! Conflict rules (checked per table in the write set):
//!
//! | write | conflicts when |
//! |---|---|
//! | `Put` (load/replace) | table changed after the base snapshot |
//! | `Put { expect_absent }` (CREATE) | table exists in the current snapshot |
//! | `Append` (INSERT) | table dropped, or its schema changed |
//! | `Rewrite` (UPDATE/DELETE) | any source partition no longer live |
//! | `Drop` | never (a concurrent drop makes it a no-op) |
//!
//! Appends merge by construction: partitions are only ever added, so two
//! concurrent `INSERT`s into one table both land, in commit order — exactly
//! the behaviour of Snowflake's own metadata CAS.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use std::sync::MutexGuard;

use crate::error::{Result, SnowError};
use crate::plan::Catalog;
use crate::storage::{ScanSource, Table};

/// One table inside a committed snapshot.
#[derive(Clone, Debug)]
pub struct TableEntry {
    pub table: Arc<Table>,
    /// Catalog version at which this table last changed — the per-table
    /// grain of conflict detection.
    pub committed_at: u64,
}

/// One committed catalog version: an immutable map of table snapshots.
#[derive(Clone, Debug, Default)]
pub struct CatalogSnapshot {
    version: u64,
    tables: BTreeMap<String, TableEntry>,
    /// Store-side GC pin for this version's partition files. Attached by the
    /// engine when the snapshot is published (persistent databases only);
    /// every query clone of the snapshot shares it, so a file under an
    /// in-flight plan is never unlinked.
    pin: Option<Arc<crate::store::VersionPin>>,
}

impl CatalogSnapshot {
    pub(crate) fn new(version: u64, tables: BTreeMap<String, TableEntry>) -> CatalogSnapshot {
        CatalogSnapshot { version, tables, pin: None }
    }

    /// Attaches the store-side GC pin protecting this version's files.
    pub(crate) fn set_pin(&mut self, pin: Arc<crate::store::VersionPin>) {
        self.pin = Some(pin);
    }

    /// The committed version this snapshot pins.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Fetches a table by case-insensitive name.
    pub fn table(&self, name: &str) -> Option<Arc<Table>> {
        self.tables.get(&name.to_ascii_uppercase()).map(|e| e.table.clone())
    }

    /// Sorted table names.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.keys().cloned().collect()
    }

    /// All entries (upper-cased name → entry).
    pub(crate) fn entries(&self) -> &BTreeMap<String, TableEntry> {
        &self.tables
    }

    /// Validates `set` (prepared against catalog version `base_version`)
    /// against *this* (current) snapshot and, if conflict-free, produces the
    /// successor snapshot at `self.version() + 1`. This is the optimistic
    /// compare-and-swap: pure, no I/O — the caller publishes the result only
    /// after the manifest commit succeeds.
    pub(crate) fn apply(&self, base_version: u64, set: &WriteSet) -> Result<CatalogSnapshot> {
        let new_version = self.version + 1;
        let mut tables = self.tables.clone();
        for (name, write) in &set.writes {
            let conflict = |detail: &str| {
                SnowError::write_conflict(name, base_version, self.version, detail)
            };
            match write {
                TableWrite::Put { table, expect_absent, .. } => {
                    if let Some(entry) = tables.get(name) {
                        if *expect_absent {
                            // CREATE raced a concurrent CREATE. (A table that
                            // already existed at the base snapshot is caught
                            // at statement time as a catalog error.)
                            return Err(conflict("table was created concurrently"));
                        }
                        if entry.committed_at > base_version {
                            return Err(conflict("table changed concurrently"));
                        }
                    }
                    tables.insert(
                        name.clone(),
                        TableEntry { table: table.clone(), committed_at: new_version },
                    );
                }
                TableWrite::Append { parts, schema, .. } => {
                    let Some(entry) = tables.get(name) else {
                        return Err(conflict("table was dropped concurrently"));
                    };
                    let cur = &entry.table;
                    // Appended partitions were built against the base schema;
                    // a concurrent reload may have changed it out from under
                    // them, and gluing mismatched partitions onto the new
                    // table would corrupt scans.
                    if cur.schema() != schema.as_slice() {
                        return Err(conflict("table schema changed concurrently"));
                    }
                    let mut partitions = cur.partitions().to_vec();
                    partitions.extend(parts.iter().cloned());
                    tables.insert(
                        name.clone(),
                        TableEntry {
                            table: Arc::new(Table::from_parts(
                                cur.name().to_string(),
                                cur.schema().to_vec(),
                                partitions,
                            )),
                            committed_at: new_version,
                        },
                    );
                }
                TableWrite::Rewrite { removed, added, .. } => {
                    let Some(entry) = tables.get(name) else {
                        return Err(conflict("table was dropped concurrently"));
                    };
                    let cur = &entry.table;
                    // Every source partition of the rewrite must still be
                    // live: if a concurrent UPDATE/DELETE (or a reload)
                    // replaced one, blindly swapping would silently undo
                    // that committed change.
                    for r in removed {
                        if !cur.partitions().iter().any(|p| Arc::ptr_eq(p, r)) {
                            return Err(conflict(
                                "a source partition of the rewrite was removed concurrently",
                            ));
                        }
                    }
                    let mut partitions: Vec<Arc<ScanSource>> = cur
                        .partitions()
                        .iter()
                        .filter(|p| !removed.iter().any(|r| Arc::ptr_eq(p, r)))
                        .cloned()
                        .collect();
                    partitions.extend(added.iter().cloned());
                    tables.insert(
                        name.clone(),
                        TableEntry {
                            table: Arc::new(Table::from_parts(
                                cur.name().to_string(),
                                cur.schema().to_vec(),
                                partitions,
                            )),
                            committed_at: new_version,
                        },
                    );
                }
                // A concurrent drop makes this drop an idempotent no-op.
                TableWrite::Drop => {
                    tables.remove(name);
                }
            }
        }
        Ok(CatalogSnapshot { version: new_version, tables, pin: None })
    }
}

impl Catalog for CatalogSnapshot {
    fn table(&self, name: &str) -> Option<Arc<Table>> {
        CatalogSnapshot::table(self, name)
    }
}

/// One table's intended change, prepared against a pinned base snapshot.
/// Partition data — including freshly written partition files, for a
/// persistent database — is fully prepared before commit; the write set only
/// carries the sources. Manifest-side file references are derived from the
/// disk-backed sources at commit time.
#[derive(Clone, Debug)]
pub enum TableWrite {
    /// Install a complete table snapshot: CREATE TABLE (`expect_absent`),
    /// bulk load, or register.
    Put { table: Arc<Table>, expect_absent: bool },
    /// INSERT: append partitions to whatever the table holds at commit time.
    /// Merges with any concurrent append. `schema` is the schema the new
    /// partitions were built against (conflict detection re-checks it).
    Append {
        parts: Vec<Arc<ScanSource>>,
        schema: Vec<crate::storage::ColumnDef>,
    },
    /// UPDATE/DELETE copy-on-write: replace `removed` (identified by `Arc`
    /// identity — partitions are immutable, so identity is version identity)
    /// with `added`.
    Rewrite {
        removed: Vec<Arc<ScanSource>>,
        added: Vec<Arc<ScanSource>>,
    },
    /// DROP TABLE.
    Drop,
}

/// A set of per-table writes committed atomically (one catalog version).
#[derive(Clone, Debug, Default)]
pub struct WriteSet {
    /// Upper-cased table name → write. One write per table.
    pub writes: Vec<(String, TableWrite)>,
}

impl WriteSet {
    pub fn single(name: &str, write: TableWrite) -> WriteSet {
        WriteSet { writes: vec![(name.to_ascii_uppercase(), write)] }
    }
}

/// The current catalog version plus the commit serialization point.
///
/// Readers call [`SharedCatalog::snapshot`] (an `Arc` clone under a read
/// lock); writers serialize on [`SharedCatalog::lock_commits`] for the
/// check-commit-publish critical section. Snapshot reads never wait on a
/// commit's manifest I/O: the write lock is only taken for the final swap.
#[derive(Debug)]
pub struct SharedCatalog {
    current: RwLock<Arc<CatalogSnapshot>>,
    commit_lock: Mutex<()>,
    /// Recently superseded snapshots, oldest first — the in-memory half of
    /// the retention window. Holding these (with their pins) keeps time
    /// travel to recent versions allocation-free and GC-safe; older retained
    /// versions are reconstructed from the manifest history instead.
    history: Mutex<std::collections::VecDeque<Arc<CatalogSnapshot>>>,
    /// Retention window (number of versions including current, ≥ 1).
    capacity: std::sync::atomic::AtomicU64,
}

impl Default for SharedCatalog {
    fn default() -> SharedCatalog {
        SharedCatalog::new(CatalogSnapshot::default())
    }
}

impl SharedCatalog {
    pub fn new(snapshot: CatalogSnapshot) -> SharedCatalog {
        SharedCatalog {
            current: RwLock::new(Arc::new(snapshot)),
            commit_lock: Mutex::new(()),
            history: Mutex::new(std::collections::VecDeque::new()),
            capacity: std::sync::atomic::AtomicU64::new(crate::store::DEFAULT_RETENTION),
        }
    }

    /// Pins the current committed snapshot.
    pub fn snapshot(&self) -> Arc<CatalogSnapshot> {
        self.current.read().clone()
    }

    /// Serializes commits: hold the guard across conflict check, manifest
    /// commit, and [`SharedCatalog::publish`].
    pub(crate) fn lock_commits(&self) -> MutexGuard<'_, ()> {
        self.commit_lock.lock()
    }

    /// Publishes a new committed snapshot (caller holds the commit lock).
    /// The superseded snapshot moves into the in-memory history, bounded by
    /// the retention capacity.
    pub(crate) fn publish(&self, snapshot: Arc<CatalogSnapshot>) {
        debug_assert!(snapshot.version() > self.current.read().version());
        let prev = {
            let mut cur = self.current.write();
            std::mem::replace(&mut *cur, snapshot)
        };
        let keep = self.capacity.load(std::sync::atomic::Ordering::Relaxed).max(1) - 1;
        let mut history = self.history.lock();
        history.push_back(prev);
        while history.len() as u64 > keep {
            history.pop_front();
        }
    }

    /// A retained in-memory snapshot at exactly `version`, if still held.
    pub(crate) fn at_version(&self, version: u64) -> Option<Arc<CatalogSnapshot>> {
        let current = self.snapshot();
        if current.version() == version {
            return Some(current);
        }
        self.history
            .lock()
            .iter()
            .rev()
            .find(|s| s.version() == version)
            .cloned()
    }

    /// The in-memory retention window (number of versions including current).
    pub(crate) fn capacity(&self) -> u64 {
        self.capacity.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Re-bounds the in-memory retention window (truncating immediately).
    pub(crate) fn set_capacity(&self, versions: u64) {
        let versions = versions.max(1);
        self.capacity.store(versions, std::sync::atomic::Ordering::Relaxed);
        let mut history = self.history.lock();
        while history.len() as u64 > versions - 1 {
            history.pop_front();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::{ColumnDef, ColumnType, TableBuilder};
    use crate::variant::Variant;

    fn table(name: &str, vals: &[i64]) -> Arc<Table> {
        let mut b = TableBuilder::with_partition_rows(
            name,
            vec![ColumnDef::new("A", ColumnType::Int)],
            2,
        );
        for v in vals {
            b.push_row(&[Variant::Int(*v)]).unwrap();
        }
        Arc::new(b.finish().unwrap())
    }

    fn put(t: Arc<Table>) -> TableWrite {
        TableWrite::Put { table: t, expect_absent: false }
    }

    #[test]
    fn concurrent_appends_merge() {
        let base = CatalogSnapshot::default()
            .apply(0, &WriteSet::single("T", put(table("T", &[1, 2, 3]))))
            .unwrap();
        // Two writers pin version 1 and each prepare an append.
        let w1 = table("W1", &[10]);
        let w2 = table("W2", &[20]);
        let a1 = WriteSet::single(
            "T",
            TableWrite::Append {
                parts: w1.partitions().to_vec(),
                schema: vec![ColumnDef::new("A", ColumnType::Int)],
            },
        );
        let a2 = WriteSet::single(
            "T",
            TableWrite::Append {
                parts: w2.partitions().to_vec(),
                schema: vec![ColumnDef::new("A", ColumnType::Int)],
            },
        );
        let v2 = base.apply(base.version(), &a1).unwrap();
        // Writer 2 commits against v2 but prepared against v1: still merges.
        let v3 = v2.apply(base.version(), &a2).unwrap();
        assert_eq!(v3.table("T").unwrap().row_count(), 5);
        assert_eq!(v3.version(), 3);
    }

    #[test]
    fn rewrite_of_concurrently_removed_partition_conflicts() {
        let base = CatalogSnapshot::default()
            .apply(0, &WriteSet::single("T", put(table("T", &[1, 2, 3, 4]))))
            .unwrap();
        let victim = base.table("T").unwrap().partitions()[0].clone();
        // Writer A rewrites partition 0 and commits.
        let rw = |src: &Arc<ScanSource>| {
            WriteSet::single(
                "T",
                TableWrite::Rewrite {
                    removed: vec![src.clone()],
                    added: table("N", &[9]).partitions().to_vec(),
                },
            )
        };
        let v2 = base.apply(base.version(), &rw(&victim)).unwrap();
        // Writer B prepared a rewrite of the same (now dead) partition.
        let err = v2.apply(base.version(), &rw(&victim)).unwrap_err();
        assert!(matches!(err, SnowError::WriteConflict(_)), "{err}");
    }

    #[test]
    fn put_conflicts_only_when_table_changed_after_base() {
        let v1 = CatalogSnapshot::default()
            .apply(0, &WriteSet::single("T", put(table("T", &[1]))))
            .unwrap();
        let v2 = v1.apply(1, &WriteSet::single("T", put(table("T", &[2])))).unwrap();
        // A replace prepared at v1 now races the v2 replace.
        let err = v2.apply(1, &WriteSet::single("T", put(table("T", &[3])))).unwrap_err();
        assert!(matches!(err, SnowError::WriteConflict(_)), "{err}");
        // The same replace prepared at v2 is fine.
        assert!(v2.apply(2, &WriteSet::single("T", put(table("T", &[3])))).is_ok());
        // CREATE semantics conflict on any concurrent existence.
        let create = WriteSet::single(
            "T",
            TableWrite::Put { table: table("T", &[4]), expect_absent: true },
        );
        assert!(v2.apply(2, &create).is_err());
    }

    #[test]
    fn append_to_dropped_table_conflicts_and_drop_is_idempotent() {
        let v1 = CatalogSnapshot::default()
            .apply(0, &WriteSet::single("T", put(table("T", &[1]))))
            .unwrap();
        let v2 = v1.apply(1, &WriteSet::single("T", TableWrite::Drop)).unwrap();
        let append = WriteSet::single(
            "T",
            TableWrite::Append {
                parts: table("X", &[5]).partitions().to_vec(),
                schema: vec![ColumnDef::new("A", ColumnType::Int)],
            },
        );
        assert!(matches!(
            v2.apply(1, &append).unwrap_err(),
            SnowError::WriteConflict(_)
        ));
        // Dropping again is a no-op, not a conflict.
        let v3 = v2.apply(1, &WriteSet::single("T", TableWrite::Drop)).unwrap();
        assert!(v3.table("T").is_none());
    }
}
