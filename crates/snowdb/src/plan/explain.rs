//! Plan rendering for `EXPLAIN`, `EXPLAIN ANALYZE`, and debugging.

use std::fmt::Write;

use std::collections::HashMap;

use super::{AggExpr, AggKind, CastType, Node, NodeKind, PExpr, PStep};
use crate::exec::metrics::OpMetrics;
use crate::optimize::cost;
use crate::sql::{BinOp, JoinKind, UnaryOp};

/// Renders a bound plan as an indented operator tree, each line annotated
/// with the cost model's estimated output rows and cumulative cost.
pub fn explain(node: &Node) -> String {
    let ests = cost::estimate_map(node);
    let mut out = String::new();
    walk(node, 0, None, &ests, &mut out);
    out
}

/// Renders a bound plan annotated with measured per-operator metrics: the
/// `EXPLAIN ANALYZE` body. The metrics tree mirrors the plan shape (it is the
/// snapshot of the physical plan lowered from `node`), so the two are walked
/// in lockstep. Estimated rows print next to measured ones so estimation
/// error is visible per operator.
pub fn explain_analyze(node: &Node, metrics: &OpMetrics) -> String {
    let ests = cost::estimate_map(node);
    let mut out = String::new();
    walk(node, 0, Some(metrics), &ests, &mut out);
    out
}

fn indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn walk(
    node: &Node,
    depth: usize,
    metrics: Option<&OpMetrics>,
    ests: &HashMap<usize, (f64, f64)>,
    out: &mut String,
) {
    indent(depth, out);
    out.push_str(&node_line(node));
    if let Some(&(rows, c)) = ests.get(&(node as *const Node as usize)) {
        let _ = write!(out, "  (est_rows={rows:.0} cost={c:.0})");
    }
    if let Some(m) = metrics {
        let _ = write!(out, "  [{}]", m.annotation());
    }
    out.push('\n');
    for (i, child) in node.kind.inputs().into_iter().enumerate() {
        walk(child, depth + 1, metrics.and_then(|m| m.children.get(i)), ests, out);
    }
}

/// One operator line, without trailing newline or children.
fn node_line(node: &Node) -> String {
    let mut out = String::new();
    match &node.kind {
        NodeKind::Values => out.push_str("Values (1 row)"),
        NodeKind::Scan { table, pushed, materialize } => {
            let cols: Vec<&str> = table
                .schema()
                .iter()
                .zip(materialize)
                .filter(|(_, &m)| m)
                .map(|(c, _)| c.name.as_str())
                .collect();
            let _ = write!(out, "Scan {} cols=[{}]", table.name(), cols.join(", "));
            if !pushed.is_empty() {
                let preds: Vec<String> = pushed
                    .iter()
                    .map(|p| {
                        if p.cmp.starts_with("IS") {
                            format!("#{} {}", p.col, p.cmp)
                        } else {
                            format!("#{} {} {:?}", p.col, p.cmp, p.lit)
                        }
                    })
                    .collect();
                let _ = write!(out, " prune=[{}]", preds.join(", "));
            }
        }
        NodeKind::Project { exprs, .. } => {
            let rendered: Vec<String> = exprs.iter().map(expr_str).collect();
            let _ = write!(out, "Project [{}]", rendered.join(", "));
        }
        NodeKind::Filter { pred, .. } => {
            let _ = write!(out, "Filter {}", expr_str(pred));
        }
        NodeKind::Flatten { expr, outer, .. } => {
            let _ = write!(
                out,
                "Flatten{} input={}",
                if *outer { " OUTER" } else { "" },
                expr_str(expr)
            );
        }
        NodeKind::Aggregate { groups, aggs, .. } => {
            let g: Vec<String> = groups.iter().map(expr_str).collect();
            let a: Vec<String> = aggs.iter().map(agg_str).collect();
            let _ = write!(out, "Aggregate group=[{}] aggs=[{}]", g.join(", "), a.join(", "));
        }
        NodeKind::Join { kind, on, .. } => {
            let k = match kind {
                JoinKind::Inner => "Inner",
                JoinKind::LeftOuter => "LeftOuter",
                JoinKind::Cross => "Cross",
            };
            let on_str = on.as_ref().map(expr_str).unwrap_or_default();
            let _ = write!(out, "{k}Join on={on_str}");
        }
        NodeKind::Sort { keys, .. } => {
            let ks: Vec<String> = keys
                .iter()
                .map(|k| format!("{}{}", expr_str(&k.expr), if k.desc { " DESC" } else { "" }))
                .collect();
            let _ = write!(out, "Sort [{}]", ks.join(", "));
        }
        NodeKind::Limit { n, .. } => {
            let _ = write!(out, "Limit {n}");
        }
        NodeKind::UnionAll { .. } => out.push_str("UnionAll"),
        NodeKind::Distinct { .. } => out.push_str("Distinct"),
    }
    out
}

fn agg_str(a: &AggExpr) -> String {
    let name = match a.kind {
        AggKind::CountStar => return "COUNT(*)".into(),
        AggKind::Count => "COUNT",
        AggKind::CountDistinct => "COUNT_DISTINCT",
        AggKind::Sum => "SUM",
        AggKind::Min => "MIN",
        AggKind::Max => "MAX",
        AggKind::Avg => "AVG",
        AggKind::ArrayAgg => "ARRAY_AGG",
        AggKind::AnyValue => "ANY_VALUE",
        AggKind::BoolAnd => "BOOLAND_AGG",
        AggKind::BoolOr => "BOOLOR_AGG",
        AggKind::MinBy => "MIN_BY",
        AggKind::MaxBy => "MAX_BY",
    };
    match (&a.arg, &a.arg2) {
        (Some(x), Some(k)) => format!("{name}({}, {})", expr_str(x), expr_str(k)),
        (Some(x), None) => format!("{name}({})", expr_str(x)),
        _ => format!("{name}()"),
    }
}

/// Compact textual form of a bound expression.
pub fn expr_str(e: &PExpr) -> String {
    match e {
        PExpr::Col(i) => format!("#{i}"),
        PExpr::Lit(v) => format!("{v:?}"),
        PExpr::Unary { op, expr } => match op {
            UnaryOp::Neg => format!("(-{})", expr_str(expr)),
            UnaryOp::Plus => expr_str(expr),
        },
        PExpr::Binary { left, op, right } => {
            let o = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Mod => "%",
                BinOp::Eq => "=",
                BinOp::NotEq => "<>",
                BinOp::Lt => "<",
                BinOp::LtEq => "<=",
                BinOp::Gt => ">",
                BinOp::GtEq => ">=",
                BinOp::And => "AND",
                BinOp::Or => "OR",
                BinOp::Concat => "||",
            };
            format!("({} {o} {})", expr_str(left), expr_str(right))
        }
        PExpr::Not(x) => format!("(NOT {})", expr_str(x)),
        PExpr::IsNull { expr, negated } => format!(
            "({} IS {}NULL)",
            expr_str(expr),
            if *negated { "NOT " } else { "" }
        ),
        PExpr::InList { expr, list, negated } => {
            let items: Vec<String> = list.iter().map(expr_str).collect();
            format!(
                "({} {}IN ({}))",
                expr_str(expr),
                if *negated { "NOT " } else { "" },
                items.join(", ")
            )
        }
        PExpr::Case { .. } => "CASE ...".into(),
        PExpr::Func { f, args } => {
            let items: Vec<String> = args.iter().map(expr_str).collect();
            format!("{f:?}({})", items.join(", "))
        }
        PExpr::Cast { expr, ty } => {
            let t = match ty {
                CastType::Int => "INT",
                CastType::Float => "DOUBLE",
                CastType::Bool => "BOOLEAN",
                CastType::Str => "VARCHAR",
                CastType::Variant => "VARIANT",
            };
            format!("({}::{t})", expr_str(expr))
        }
        PExpr::Path { base, steps } => {
            let mut s = expr_str(base);
            for st in steps {
                match st {
                    PStep::Field(f) => {
                        s.push(':');
                        s.push_str(f);
                    }
                    PStep::Index(i) => {
                        s.push_str(&format!("[{i}]"));
                    }
                    PStep::IndexExpr(e) => {
                        s.push_str(&format!("[{}]", expr_str(e)));
                    }
                }
            }
            s
        }
        PExpr::Like { expr, pattern, negated } => format!(
            "({} {}LIKE {})",
            expr_str(expr),
            if *negated { "NOT " } else { "" },
            expr_str(pattern)
        ),
    }
}

#[cfg(test)]
mod tests {
    use crate::storage::{ColumnDef, ColumnType};
    use crate::{Database, Variant};

    #[test]
    fn explain_shows_operators_and_pruned_columns() {
        let db = Database::new();
        db.load_table(
            "t",
            vec![
                ColumnDef::new("A", ColumnType::Int),
                ColumnDef::new("B", ColumnType::Int),
            ],
            (0..3).map(|i| vec![Variant::Int(i), Variant::Int(i * 2)]),
        )
        .unwrap();
        let plan = db.compile("SELECT a FROM t WHERE a > 1 ORDER BY a").unwrap();
        let text = super::explain(&plan);
        assert!(text.contains("Sort"), "{text}");
        assert!(text.contains("Filter"), "{text}");
        assert!(text.contains("Scan T"), "{text}");
        assert!(text.contains("prune="), "{text}");
        assert!(!text.contains(", B]"), "B must be pruned: {text}");
    }

    #[test]
    fn explain_annotates_cost_estimates() {
        let db = Database::new();
        db.load_table(
            "t",
            vec![ColumnDef::new("A", ColumnType::Int)],
            (0..100).map(|i| vec![Variant::Int(i)]),
        )
        .unwrap();
        let plan = db.compile("SELECT a FROM t WHERE a IS NOT NULL").unwrap();
        let text = super::explain(&plan);
        // Every operator line carries the estimate annotation.
        for line in text.lines() {
            assert!(line.contains("est_rows="), "missing estimate: {line}");
            assert!(line.contains("cost="), "missing cost: {line}");
        }
        // The scan line sees the true base cardinality from catalog stats.
        assert!(text.contains("est_rows=100"), "{text}");
        // Null-presence prune predicates render without a literal.
        assert!(text.contains("IS NOT NULL]"), "{text}");
        assert!(!text.contains("IS NOT NULL Null"), "{text}");
    }
}
