//! Plan rendering for `EXPLAIN` and debugging.

use std::fmt::Write;

use super::{AggExpr, AggKind, CastType, Node, NodeKind, PExpr, PStep};
use crate::sql::{BinOp, JoinKind, UnaryOp};

/// Renders a bound plan as an indented operator tree.
pub fn explain(node: &Node) -> String {
    let mut out = String::new();
    walk(node, 0, &mut out);
    out
}

fn indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn walk(node: &Node, depth: usize, out: &mut String) {
    indent(depth, out);
    match &node.kind {
        NodeKind::Values => {
            out.push_str("Values (1 row)\n");
        }
        NodeKind::Scan { table, pushed, materialize } => {
            let cols: Vec<&str> = table
                .schema()
                .iter()
                .zip(materialize)
                .filter(|(_, &m)| m)
                .map(|(c, _)| c.name.as_str())
                .collect();
            let _ = write!(out, "Scan {} cols=[{}]", table.name(), cols.join(", "));
            if !pushed.is_empty() {
                let preds: Vec<String> = pushed
                    .iter()
                    .map(|p| format!("#{} {} {:?}", p.col, p.cmp, p.lit))
                    .collect();
                let _ = write!(out, " prune=[{}]", preds.join(", "));
            }
            out.push('\n');
        }
        NodeKind::Project { input, exprs } => {
            let rendered: Vec<String> = exprs.iter().map(expr_str).collect();
            let _ = writeln!(out, "Project [{}]", rendered.join(", "));
            walk(input, depth + 1, out);
        }
        NodeKind::Filter { input, pred } => {
            let _ = writeln!(out, "Filter {}", expr_str(pred));
            walk(input, depth + 1, out);
        }
        NodeKind::Flatten { input, expr, outer } => {
            let _ = writeln!(
                out,
                "Flatten{} input={}",
                if *outer { " OUTER" } else { "" },
                expr_str(expr)
            );
            walk(input, depth + 1, out);
        }
        NodeKind::Aggregate { input, groups, aggs } => {
            let g: Vec<String> = groups.iter().map(expr_str).collect();
            let a: Vec<String> = aggs.iter().map(agg_str).collect();
            let _ = writeln!(out, "Aggregate group=[{}] aggs=[{}]", g.join(", "), a.join(", "));
            walk(input, depth + 1, out);
        }
        NodeKind::Join { left, right, kind, on } => {
            let k = match kind {
                JoinKind::Inner => "Inner",
                JoinKind::LeftOuter => "LeftOuter",
                JoinKind::Cross => "Cross",
            };
            let on_str = on.as_ref().map(expr_str).unwrap_or_default();
            let _ = writeln!(out, "{k}Join on={on_str}");
            walk(left, depth + 1, out);
            walk(right, depth + 1, out);
        }
        NodeKind::Sort { input, keys } => {
            let ks: Vec<String> = keys
                .iter()
                .map(|k| format!("{}{}", expr_str(&k.expr), if k.desc { " DESC" } else { "" }))
                .collect();
            let _ = writeln!(out, "Sort [{}]", ks.join(", "));
            walk(input, depth + 1, out);
        }
        NodeKind::Limit { input, n } => {
            let _ = writeln!(out, "Limit {n}");
            walk(input, depth + 1, out);
        }
        NodeKind::UnionAll { left, right } => {
            out.push_str("UnionAll\n");
            walk(left, depth + 1, out);
            walk(right, depth + 1, out);
        }
        NodeKind::Distinct { input } => {
            out.push_str("Distinct\n");
            walk(input, depth + 1, out);
        }
    }
}

fn agg_str(a: &AggExpr) -> String {
    let name = match a.kind {
        AggKind::CountStar => return "COUNT(*)".into(),
        AggKind::Count => "COUNT",
        AggKind::CountDistinct => "COUNT_DISTINCT",
        AggKind::Sum => "SUM",
        AggKind::Min => "MIN",
        AggKind::Max => "MAX",
        AggKind::Avg => "AVG",
        AggKind::ArrayAgg => "ARRAY_AGG",
        AggKind::AnyValue => "ANY_VALUE",
        AggKind::BoolAnd => "BOOLAND_AGG",
        AggKind::BoolOr => "BOOLOR_AGG",
        AggKind::MinBy => "MIN_BY",
        AggKind::MaxBy => "MAX_BY",
    };
    match (&a.arg, &a.arg2) {
        (Some(x), Some(k)) => format!("{name}({}, {})", expr_str(x), expr_str(k)),
        (Some(x), None) => format!("{name}({})", expr_str(x)),
        _ => format!("{name}()"),
    }
}

/// Compact textual form of a bound expression.
pub fn expr_str(e: &PExpr) -> String {
    match e {
        PExpr::Col(i) => format!("#{i}"),
        PExpr::Lit(v) => format!("{v:?}"),
        PExpr::Unary { op, expr } => match op {
            UnaryOp::Neg => format!("(-{})", expr_str(expr)),
            UnaryOp::Plus => expr_str(expr),
        },
        PExpr::Binary { left, op, right } => {
            let o = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Mod => "%",
                BinOp::Eq => "=",
                BinOp::NotEq => "<>",
                BinOp::Lt => "<",
                BinOp::LtEq => "<=",
                BinOp::Gt => ">",
                BinOp::GtEq => ">=",
                BinOp::And => "AND",
                BinOp::Or => "OR",
                BinOp::Concat => "||",
            };
            format!("({} {o} {})", expr_str(left), expr_str(right))
        }
        PExpr::Not(x) => format!("(NOT {})", expr_str(x)),
        PExpr::IsNull { expr, negated } => format!(
            "({} IS {}NULL)",
            expr_str(expr),
            if *negated { "NOT " } else { "" }
        ),
        PExpr::InList { expr, list, negated } => {
            let items: Vec<String> = list.iter().map(expr_str).collect();
            format!(
                "({} {}IN ({}))",
                expr_str(expr),
                if *negated { "NOT " } else { "" },
                items.join(", ")
            )
        }
        PExpr::Case { .. } => "CASE ...".into(),
        PExpr::Func { f, args } => {
            let items: Vec<String> = args.iter().map(expr_str).collect();
            format!("{f:?}({})", items.join(", "))
        }
        PExpr::Cast { expr, ty } => {
            let t = match ty {
                CastType::Int => "INT",
                CastType::Float => "DOUBLE",
                CastType::Bool => "BOOLEAN",
                CastType::Str => "VARCHAR",
                CastType::Variant => "VARIANT",
            };
            format!("({}::{t})", expr_str(expr))
        }
        PExpr::Path { base, steps } => {
            let mut s = expr_str(base);
            for st in steps {
                match st {
                    PStep::Field(f) => {
                        s.push(':');
                        s.push_str(f);
                    }
                    PStep::Index(i) => {
                        s.push_str(&format!("[{i}]"));
                    }
                    PStep::IndexExpr(e) => {
                        s.push_str(&format!("[{}]", expr_str(e)));
                    }
                }
            }
            s
        }
        PExpr::Like { expr, pattern, negated } => format!(
            "({} {}LIKE {})",
            expr_str(expr),
            if *negated { "NOT " } else { "" },
            expr_str(pattern)
        ),
    }
}

#[cfg(test)]
mod tests {
    use crate::storage::{ColumnDef, ColumnType};
    use crate::{Database, Variant};

    #[test]
    fn explain_shows_operators_and_pruned_columns() {
        let db = Database::new();
        db.load_table(
            "t",
            vec![
                ColumnDef::new("A", ColumnType::Int),
                ColumnDef::new("B", ColumnType::Int),
            ],
            (0..3).map(|i| vec![Variant::Int(i), Variant::Int(i * 2)]),
        )
        .unwrap();
        let plan = db.compile("SELECT a FROM t WHERE a > 1 ORDER BY a").unwrap();
        let text = super::explain(&plan);
        assert!(text.contains("Sort"), "{text}");
        assert!(text.contains("Filter"), "{text}");
        assert!(text.contains("Scan T"), "{text}");
        assert!(text.contains("prune="), "{text}");
        assert!(!text.contains(", B]"), "B must be pruned: {text}");
    }
}
