//! Bound logical plans and physical expressions.

pub mod binder;
mod explain;
pub mod physical;

pub use binder::{bind_query, Catalog};
pub use explain::{explain, explain_analyze, expr_str};

use std::sync::Arc;

use crate::sql::{BinOp, JoinKind, UnaryOp};
use crate::storage::Table;
use crate::variant::Variant;

/// An output column of a plan node: optional relation qualifier plus name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Field {
    pub qualifier: Option<String>,
    pub name: String,
}

impl Field {
    pub fn new(qualifier: Option<&str>, name: impl Into<String>) -> Field {
        Field { qualifier: qualifier.map(str::to_string), name: name.into() }
    }

    pub fn bare(name: impl Into<String>) -> Field {
        Field { qualifier: None, name: name.into() }
    }
}

/// Cast target types.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CastType {
    Int,
    Float,
    Bool,
    Str,
    Variant,
}

/// Scalar function identifiers resolved at bind time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FuncId {
    Abs,
    Sqrt,
    Power,
    Exp,
    Ln,
    Log,
    Floor,
    Ceil,
    Round,
    Sign,
    Mod,
    Atan,
    Atan2,
    Asin,
    Acos,
    Sin,
    Cos,
    Tan,
    Sinh,
    Cosh,
    Tanh,
    Pi,
    Greatest,
    Least,
    Coalesce,
    Nvl,
    NullIf,
    Iff,
    Div0,
    ObjectConstruct,
    ArrayConstruct,
    ArraySize,
    ArrayCat,
    ArrayContains,
    /// `ARRAY_FILTER(arr, field_or_null, op, literal)` — restricted native
    /// array filtering (paper §VII-B future work): keeps elements whose field
    /// (or the element itself) compares against a literal.
    ArrayFilter,
    Get,
    TypeOf,
    ToDouble,
    Upper,
    Lower,
    Substr,
    Length,
    Concat,
    /// Per-query monotonically increasing row number (stand-in for `SEQ8()`).
    Seq8,
}

impl FuncId {
    /// Resolves a scalar function name.
    pub fn from_name(name: &str) -> Option<FuncId> {
        Some(match name {
            "ABS" => FuncId::Abs,
            "SQRT" => FuncId::Sqrt,
            "POWER" | "POW" => FuncId::Power,
            "EXP" => FuncId::Exp,
            "LN" => FuncId::Ln,
            "LOG" => FuncId::Log,
            "FLOOR" => FuncId::Floor,
            "CEIL" | "CEILING" => FuncId::Ceil,
            "ROUND" => FuncId::Round,
            "SIGN" => FuncId::Sign,
            "MOD" => FuncId::Mod,
            "ATAN" => FuncId::Atan,
            "ATAN2" => FuncId::Atan2,
            "ASIN" => FuncId::Asin,
            "ACOS" => FuncId::Acos,
            "SIN" => FuncId::Sin,
            "COS" => FuncId::Cos,
            "TAN" => FuncId::Tan,
            "SINH" => FuncId::Sinh,
            "COSH" => FuncId::Cosh,
            "TANH" => FuncId::Tanh,
            "PI" => FuncId::Pi,
            "GREATEST" => FuncId::Greatest,
            "LEAST" => FuncId::Least,
            "COALESCE" => FuncId::Coalesce,
            "NVL" | "IFNULL" => FuncId::Nvl,
            "NULLIF" => FuncId::NullIf,
            "IFF" => FuncId::Iff,
            "DIV0" => FuncId::Div0,
            // Both spellings map to keep-null semantics; see the evaluator.
            "OBJECT_CONSTRUCT" | "OBJECT_CONSTRUCT_KEEP_NULL" => FuncId::ObjectConstruct,
            "ARRAY_CONSTRUCT" => FuncId::ArrayConstruct,
            "ARRAY_SIZE" => FuncId::ArraySize,
            "ARRAY_CAT" => FuncId::ArrayCat,
            "ARRAY_CONTAINS" => FuncId::ArrayContains,
            "ARRAY_FILTER" => FuncId::ArrayFilter,
            "GET" => FuncId::Get,
            "TYPEOF" => FuncId::TypeOf,
            "TO_DOUBLE" => FuncId::ToDouble,
            "UPPER" => FuncId::Upper,
            "LOWER" => FuncId::Lower,
            "SUBSTR" | "SUBSTRING" => FuncId::Substr,
            "LENGTH" | "LEN" => FuncId::Length,
            "CONCAT" => FuncId::Concat,
            "SEQ8" => FuncId::Seq8,
            _ => return None,
        })
    }

    /// True for functions whose result depends on evaluation order, which must
    /// never be constant-folded or deduplicated.
    pub fn is_volatile(self) -> bool {
        matches!(self, FuncId::Seq8)
    }
}

/// Aggregate function kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggKind {
    CountStar,
    Count,
    CountDistinct,
    Sum,
    Min,
    Max,
    Avg,
    /// `ARRAY_AGG(x)`: collects non-null values into an array.
    ArrayAgg,
    /// `ANY_VALUE(x)`: first value seen in the group.
    AnyValue,
    /// `BOOLAND_AGG(x)`: conjunction over non-null booleans.
    BoolAnd,
    /// `BOOLOR_AGG(x)`: disjunction over non-null booleans.
    BoolOr,
    /// `MIN_BY(value, key)`: value of the first row with the minimal key.
    MinBy,
    /// `MAX_BY(value, key)`: value of the first row with the maximal key.
    MaxBy,
}

impl AggKind {
    /// Resolves an aggregate function name (before considering DISTINCT/star).
    pub fn from_name(name: &str) -> Option<AggKind> {
        Some(match name {
            "COUNT" => AggKind::Count,
            "SUM" => AggKind::Sum,
            "MIN" => AggKind::Min,
            "MAX" => AggKind::Max,
            "AVG" => AggKind::Avg,
            "ARRAY_AGG" => AggKind::ArrayAgg,
            "ANY_VALUE" => AggKind::AnyValue,
            "BOOLAND_AGG" => AggKind::BoolAnd,
            "BOOLOR_AGG" => AggKind::BoolOr,
            "MIN_BY" => AggKind::MinBy,
            "MAX_BY" => AggKind::MaxBy,
            _ => return None,
        })
    }
}

/// One bound aggregate: kind plus input expression (`None` for `COUNT(*)`).
/// `arg2` carries the key expression of `MIN_BY`/`MAX_BY`.
#[derive(Clone, Debug, PartialEq)]
pub struct AggExpr {
    pub kind: AggKind,
    pub arg: Option<PExpr>,
    pub arg2: Option<PExpr>,
}

/// One step of a bound variant path.
#[derive(Clone, Debug, PartialEq)]
pub enum PStep {
    Field(String),
    Index(i64),
    IndexExpr(Box<PExpr>),
}

/// Bound (physical) scalar expression: column references are positional.
#[derive(Clone, Debug, PartialEq)]
pub enum PExpr {
    Col(usize),
    Lit(Variant),
    Unary { op: UnaryOp, expr: Box<PExpr> },
    Binary { left: Box<PExpr>, op: BinOp, right: Box<PExpr> },
    Not(Box<PExpr>),
    IsNull { expr: Box<PExpr>, negated: bool },
    InList { expr: Box<PExpr>, list: Vec<PExpr>, negated: bool },
    Case {
        operand: Option<Box<PExpr>>,
        branches: Vec<(PExpr, PExpr)>,
        else_expr: Option<Box<PExpr>>,
    },
    Func { f: FuncId, args: Vec<PExpr> },
    Cast { expr: Box<PExpr>, ty: CastType },
    Path { base: Box<PExpr>, steps: Vec<PStep> },
    /// `expr [NOT] LIKE pattern` with `%`/`_` wildcards.
    Like { expr: Box<PExpr>, pattern: Box<PExpr>, negated: bool },
}

impl PExpr {
    /// Collects the column indices referenced by this expression.
    pub fn collect_cols(&self, out: &mut Vec<usize>) {
        match self {
            PExpr::Col(i) => out.push(*i),
            PExpr::Lit(_) => {}
            PExpr::Unary { expr, .. } | PExpr::Not(expr) | PExpr::IsNull { expr, .. } => {
                expr.collect_cols(out)
            }
            PExpr::Binary { left, right, .. } => {
                left.collect_cols(out);
                right.collect_cols(out);
            }
            PExpr::InList { expr, list, .. } => {
                expr.collect_cols(out);
                for e in list {
                    e.collect_cols(out);
                }
            }
            PExpr::Case { operand, branches, else_expr } => {
                if let Some(o) = operand {
                    o.collect_cols(out);
                }
                for (c, v) in branches {
                    c.collect_cols(out);
                    v.collect_cols(out);
                }
                if let Some(e) = else_expr {
                    e.collect_cols(out);
                }
            }
            PExpr::Func { args, .. } => {
                for a in args {
                    a.collect_cols(out);
                }
            }
            PExpr::Cast { expr, .. } => expr.collect_cols(out),
            PExpr::Path { base, steps } => {
                base.collect_cols(out);
                for s in steps {
                    if let PStep::IndexExpr(e) = s {
                        e.collect_cols(out);
                    }
                }
            }
            PExpr::Like { expr, pattern, .. } => {
                expr.collect_cols(out);
                pattern.collect_cols(out);
            }
        }
    }

    /// True when the expression contains a volatile function.
    pub fn is_volatile(&self) -> bool {
        match self {
            PExpr::Col(_) | PExpr::Lit(_) => false,
            PExpr::Unary { expr, .. } | PExpr::Not(expr) | PExpr::IsNull { expr, .. } => {
                expr.is_volatile()
            }
            PExpr::Binary { left, right, .. } => left.is_volatile() || right.is_volatile(),
            PExpr::InList { expr, list, .. } => {
                expr.is_volatile() || list.iter().any(PExpr::is_volatile)
            }
            PExpr::Case { operand, branches, else_expr } => {
                operand.as_deref().is_some_and(PExpr::is_volatile)
                    || branches.iter().any(|(c, v)| c.is_volatile() || v.is_volatile())
                    || else_expr.as_deref().is_some_and(PExpr::is_volatile)
            }
            PExpr::Func { f, args } => f.is_volatile() || args.iter().any(PExpr::is_volatile),
            PExpr::Cast { expr, .. } => expr.is_volatile(),
            PExpr::Path { base, steps } => {
                base.is_volatile()
                    || steps.iter().any(|s| match s {
                        PStep::IndexExpr(e) => e.is_volatile(),
                        _ => false,
                    })
            }
            PExpr::Like { expr, pattern, .. } => expr.is_volatile() || pattern.is_volatile(),
        }
    }

    /// Rewrites column references through a substitution table mapping the
    /// columns of a projection's output to expressions over its input.
    pub fn substitute(&self, subs: &[PExpr]) -> PExpr {
        match self {
            PExpr::Col(i) => subs[*i].clone(),
            PExpr::Lit(v) => PExpr::Lit(v.clone()),
            PExpr::Unary { op, expr } => {
                PExpr::Unary { op: *op, expr: Box::new(expr.substitute(subs)) }
            }
            PExpr::Binary { left, op, right } => PExpr::Binary {
                left: Box::new(left.substitute(subs)),
                op: *op,
                right: Box::new(right.substitute(subs)),
            },
            PExpr::Not(e) => PExpr::Not(Box::new(e.substitute(subs))),
            PExpr::IsNull { expr, negated } => {
                PExpr::IsNull { expr: Box::new(expr.substitute(subs)), negated: *negated }
            }
            PExpr::InList { expr, list, negated } => PExpr::InList {
                expr: Box::new(expr.substitute(subs)),
                list: list.iter().map(|e| e.substitute(subs)).collect(),
                negated: *negated,
            },
            PExpr::Case { operand, branches, else_expr } => PExpr::Case {
                operand: operand.as_ref().map(|o| Box::new(o.substitute(subs))),
                branches: branches
                    .iter()
                    .map(|(c, v)| (c.substitute(subs), v.substitute(subs)))
                    .collect(),
                else_expr: else_expr.as_ref().map(|e| Box::new(e.substitute(subs))),
            },
            PExpr::Func { f, args } => PExpr::Func {
                f: *f,
                args: args.iter().map(|a| a.substitute(subs)).collect(),
            },
            PExpr::Cast { expr, ty } => {
                PExpr::Cast { expr: Box::new(expr.substitute(subs)), ty: *ty }
            }
            PExpr::Path { base, steps } => PExpr::Path {
                base: Box::new(base.substitute(subs)),
                steps: steps
                    .iter()
                    .map(|s| match s {
                        PStep::IndexExpr(e) => PStep::IndexExpr(Box::new(e.substitute(subs))),
                        other => other.clone(),
                    })
                    .collect(),
            },
            PExpr::Like { expr, pattern, negated } => PExpr::Like {
                expr: Box::new(expr.substitute(subs)),
                pattern: Box::new(pattern.substitute(subs)),
                negated: *negated,
            },
        }
    }
}

/// A predicate pushed into a scan for zone-map pruning: `column <cmp> literal`.
///
/// Pruning predicates are advisory — the original `Filter` stays in the plan, so
/// pruning can never change results, only skip partitions that provably cannot
/// contribute.
#[derive(Clone, Debug, PartialEq)]
pub struct ScanPredicate {
    pub col: usize,
    pub cmp: &'static str,
    pub lit: Variant,
}

/// A bound sort key.
#[derive(Clone, Debug, PartialEq)]
pub struct SortKey {
    pub expr: PExpr,
    pub desc: bool,
    pub nulls_first: Option<bool>,
}

/// A bound plan node together with its output schema.
#[derive(Clone, Debug)]
pub struct Node {
    pub kind: NodeKind,
    pub fields: Vec<Field>,
}

/// Plan operators.
#[derive(Clone, Debug)]
pub enum NodeKind {
    /// Base-table scan. `materialize[i]` marks table columns actually consumed
    /// by the query; unmarked columns are neither read nor accounted.
    Scan {
        table: Arc<Table>,
        pushed: Vec<ScanPredicate>,
        materialize: Vec<bool>,
    },
    /// A single row with no columns; basis for `SELECT` without `FROM`.
    Values,
    Project { input: Box<Node>, exprs: Vec<PExpr> },
    Filter { input: Box<Node>, pred: PExpr },
    /// `LATERAL FLATTEN`: appends VALUE, INDEX, KEY, SEQ, THIS columns.
    Flatten { input: Box<Node>, expr: PExpr, outer: bool },
    Aggregate { input: Box<Node>, groups: Vec<PExpr>, aggs: Vec<AggExpr> },
    Join {
        left: Box<Node>,
        right: Box<Node>,
        kind: JoinKind,
        /// Raw ON predicate over the concatenated (left ++ right) schema.
        on: Option<PExpr>,
    },
    Sort { input: Box<Node>, keys: Vec<SortKey> },
    Limit { input: Box<Node>, n: u64 },
    UnionAll { left: Box<Node>, right: Box<Node> },
    Distinct { input: Box<Node> },
}

impl NodeKind {
    /// The operator's input nodes, in order.
    pub fn inputs(&self) -> Vec<&Node> {
        match self {
            NodeKind::Scan { .. } | NodeKind::Values => Vec::new(),
            NodeKind::Project { input, .. }
            | NodeKind::Filter { input, .. }
            | NodeKind::Flatten { input, .. }
            | NodeKind::Aggregate { input, .. }
            | NodeKind::Sort { input, .. }
            | NodeKind::Limit { input, .. }
            | NodeKind::Distinct { input } => vec![input],
            NodeKind::Join { left, right, .. } | NodeKind::UnionAll { left, right } => {
                vec![left, right]
            }
        }
    }
}

impl Node {
    /// Number of output columns.
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// Counts plan nodes, a rough complexity metric used in tests and the
    /// compile-time experiment.
    pub fn node_count(&self) -> usize {
        1 + match &self.kind {
            NodeKind::Scan { .. } | NodeKind::Values => 0,
            NodeKind::Project { input, .. }
            | NodeKind::Filter { input, .. }
            | NodeKind::Flatten { input, .. }
            | NodeKind::Aggregate { input, .. }
            | NodeKind::Sort { input, .. }
            | NodeKind::Limit { input, .. }
            | NodeKind::Distinct { input } => input.node_count(),
            NodeKind::Join { left, right, .. } | NodeKind::UnionAll { left, right } => {
                left.node_count() + right.node_count()
            }
        }
    }
}
