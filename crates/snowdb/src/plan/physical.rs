//! Physical plans: the logical plan annotated for morsel-parallel execution.
//!
//! Lowering walks the bound (and optimized) logical [`Node`] tree and produces
//! a mirror tree of [`PhysNode`]s, each carrying
//! - whether the operator is a *pipeline breaker* (must consume its whole
//!   input before emitting: hash aggregate, hash join, sort, distinct);
//! - the degree of parallelism the executor will use for it;
//! - an [`OpMetricsCell`] that workers update concurrently during execution.
//!
//! The physical tree borrows the logical plan rather than copying it: operator
//! semantics stay defined in one place and lowering stays cheap enough to run
//! per query.

use crate::exec::metrics::{OpMetrics, OpMetricsCell};
use crate::plan::{Node, NodeKind};

/// One operator of the physical plan.
#[derive(Debug)]
pub struct PhysNode<'a> {
    /// The logical operator this node executes.
    pub logical: &'a Node,
    /// Children in the same order as the logical node's inputs.
    pub children: Vec<PhysNode<'a>>,
    /// True when the operator must materialize its entire input before
    /// emitting output (aggregate, join, sort, distinct).
    pub breaker: bool,
    /// Worker count the executor will use for this operator's parallel phase
    /// (1 = inherently serial).
    pub parallelism: usize,
    /// Concurrent metric counters, snapshotted after execution.
    pub metrics: OpMetricsCell,
}

/// Lowers a logical plan for execution with `threads` workers.
pub fn lower(plan: &Node, threads: usize) -> PhysNode<'_> {
    let threads = threads.max(1);
    let children = plan.kind.inputs().into_iter().map(|c| lower(c, threads)).collect();
    let (breaker, parallelism) = match &plan.kind {
        // Scans parallelize across micro-partitions (the morsel unit), so a
        // table with fewer partitions than workers caps the useful degree.
        NodeKind::Scan { table, .. } => {
            (false, threads.min(table.partitions().len().max(1)))
        }
        NodeKind::Values => (false, 1),
        // Filters and projections map over batches. Volatile projections
        // (SEQ8) still parallelize: the executor assigns each batch its
        // deterministic counter base from a prefix sum over the input.
        NodeKind::Project { .. } | NodeKind::Filter { .. } => (false, threads),
        NodeKind::Flatten { .. } => (false, threads),
        // Pipeline breakers: thread-local partial states merged at the
        // barrier (aggregate), build + parallel probe (join), parallel key
        // evaluation then a global merge (sort).
        NodeKind::Aggregate { .. } | NodeKind::Join { .. } | NodeKind::Sort { .. } => {
            (true, threads)
        }
        // Distinct keeps one hash set in input order; limit and union only
        // splice batch lists.
        NodeKind::Distinct { .. } | NodeKind::Limit { .. } | NodeKind::UnionAll { .. } => {
            (true, 1)
        }
    };
    PhysNode { logical: plan, children, breaker, parallelism, metrics: OpMetricsCell::default() }
}

impl PhysNode<'_> {
    /// Short operator label used in metrics and `EXPLAIN ANALYZE`.
    pub fn op_name(&self) -> String {
        match &self.logical.kind {
            NodeKind::Scan { table, .. } => format!("Scan {}", table.name()),
            NodeKind::Values => "Values".into(),
            NodeKind::Project { .. } => "Project".into(),
            NodeKind::Filter { .. } => "Filter".into(),
            NodeKind::Flatten { .. } => "Flatten".into(),
            NodeKind::Aggregate { .. } => "Aggregate".into(),
            NodeKind::Join { kind, .. } => format!("{kind:?}Join"),
            NodeKind::Sort { .. } => "Sort".into(),
            NodeKind::Limit { .. } => "Limit".into(),
            NodeKind::UnionAll { .. } => "UnionAll".into(),
            NodeKind::Distinct { .. } => "Distinct".into(),
        }
    }

    /// Snapshots the metrics tree (call after execution completes).
    pub fn snapshot(&self) -> OpMetrics {
        let children = self.children.iter().map(PhysNode::snapshot).collect();
        self.metrics.snapshot(self.op_name(), self.parallelism, children)
    }

    /// Number of operators in this subtree.
    pub fn op_count(&self) -> usize {
        1 + self.children.iter().map(PhysNode::op_count).sum::<usize>()
    }
}
