//! Binder: resolves a parsed [`Query`] against a catalog into a bound [`Node`] tree.

use std::sync::Arc;

use super::{
    AggExpr, AggKind, CastType, Field, FuncId, Node, NodeKind, PExpr, PStep, SortKey,
};
use crate::error::{Result, SnowError};
use crate::sql::{
    BinOp, Expr, FromItem, PathStep, Query, Select, SelectItem, SetExpr, TableFactor, Travel,
};
use crate::storage::Table;
use crate::variant::Variant;

/// Table lookup interface the binder needs from the engine.
pub trait Catalog {
    /// Fetches a table snapshot by (upper-cased) name.
    fn table(&self, name: &str) -> Option<Arc<Table>>;

    /// Fetches a table as of a retained historical version (`AT`/`BEFORE`).
    /// Contexts without store-backed history — plain snapshots, the
    /// interpreter's ad-hoc catalogs — keep the default, which rejects the
    /// clause with a typed plan error.
    fn table_at(&self, name: &str, travel: &Travel) -> Result<Arc<Table>> {
        let _ = name;
        let _ = travel;
        Err(SnowError::Plan(
            "time travel (AT/BEFORE) is not supported in this context".into(),
        ))
    }
}

/// Binds a query to a logical plan.
pub fn bind_query(q: &Query, catalog: &dyn Catalog) -> Result<Node> {
    Binder { catalog }.query(q)
}

/// Output columns produced by `LATERAL FLATTEN`, in order.
pub const FLATTEN_FIELDS: [&str; 5] = ["VALUE", "INDEX", "KEY", "SEQ", "THIS"];

struct Binder<'a> {
    catalog: &'a dyn Catalog,
}

impl<'a> Binder<'a> {
    fn query(&self, q: &Query) -> Result<Node> {
        let mut node = self.set_expr(&q.body)?;
        if !q.order_by.is_empty() {
            let mut keys = Vec::with_capacity(q.order_by.len());
            for item in &q.order_by {
                let expr = self.order_key(&item.expr, &node.fields)?;
                keys.push(SortKey { expr, desc: item.desc, nulls_first: item.nulls_first });
            }
            let fields = node.fields.clone();
            node = Node { kind: NodeKind::Sort { input: Box::new(node), keys }, fields };
        }
        if let Some(n) = q.limit {
            let fields = node.fields.clone();
            node = Node { kind: NodeKind::Limit { input: Box::new(node), n }, fields };
        }
        Ok(node)
    }

    /// ORDER BY keys resolve against the query output: by ordinal, by output
    /// name, or as an arbitrary expression over output columns.
    fn order_key(&self, e: &Expr, fields: &[Field]) -> Result<PExpr> {
        if let Expr::Literal(Variant::Int(n)) = e {
            let idx = *n - 1;
            if idx < 0 || idx as usize >= fields.len() {
                return Err(SnowError::Plan(format!(
                    "ORDER BY position {n} is out of range (1..={})",
                    fields.len()
                )));
            }
            return Ok(PExpr::Col(idx as usize));
        }
        match bind_expr(e, fields, None) {
            Ok(p) => Ok(p),
            // Projection output drops relation qualifiers, but `ORDER BY t.x`
            // should still find the output column named `x` (Snowflake does).
            Err(first_err) => {
                if let Expr::Ident(parts) = e {
                    if parts.len() == 2 {
                        let bare = Expr::Ident(vec![parts[1].clone()]);
                        if let Ok(p) = bind_expr(&bare, fields, None) {
                            return Ok(p);
                        }
                    }
                }
                Err(first_err)
            }
        }
    }

    fn set_expr(&self, body: &SetExpr) -> Result<Node> {
        match body {
            SetExpr::Select(s) => self.select(s),
            SetExpr::Query(q) => self.query(q),
            SetExpr::UnionAll(l, r) => {
                let left = self.set_expr(l)?;
                let right = self.set_expr(r)?;
                if left.arity() != right.arity() {
                    return Err(SnowError::Plan(format!(
                        "UNION ALL arity mismatch: {} vs {}",
                        left.arity(),
                        right.arity()
                    )));
                }
                let fields = left.fields.clone();
                Ok(Node {
                    kind: NodeKind::UnionAll { left: Box::new(left), right: Box::new(right) },
                    fields,
                })
            }
        }
    }

    fn select(&self, s: &Select) -> Result<Node> {
        // FROM
        let mut node = match &s.from {
            Some(from) => self.bind_from_clause(from)?,
            None => Node { kind: NodeKind::Values, fields: Vec::new() },
        };

        // WHERE
        if let Some(pred) = &s.selection {
            if contains_aggregate(pred) {
                return Err(SnowError::Plan("aggregate functions are not allowed in WHERE".into()));
            }
            let bound = bind_expr(pred, &node.fields, None)?;
            let fields = node.fields.clone();
            node = Node { kind: NodeKind::Filter { input: Box::new(node), pred: bound }, fields };
        }

        let has_aggs = !s.group_by.is_empty()
            || s.having.is_some()
            || s.items.iter().any(|i| match i {
                SelectItem::Expr { expr, .. } => contains_aggregate(expr),
                _ => false,
            });

        node = if has_aggs {
            self.aggregate_select(s, node)?
        } else {
            self.plain_select(s, node)?
        };

        if s.distinct {
            let fields = node.fields.clone();
            node = Node { kind: NodeKind::Distinct { input: Box::new(node) }, fields };
        }
        Ok(node)
    }

    fn plain_select(&self, s: &Select, input: Node) -> Result<Node> {
        let mut exprs = Vec::new();
        let mut fields = Vec::new();
        for item in &s.items {
            match item {
                SelectItem::Wildcard { exclude } => {
                    for (i, f) in input.fields.iter().enumerate() {
                        if exclude.iter().any(|x| x.eq_ignore_ascii_case(&f.name)) {
                            continue;
                        }
                        exprs.push(PExpr::Col(i));
                        fields.push(f.clone());
                    }
                }
                SelectItem::QualifiedWildcard(q) => {
                    let mut any = false;
                    for (i, f) in input.fields.iter().enumerate() {
                        if f.qualifier.as_deref().is_some_and(|fq| fq.eq_ignore_ascii_case(q)) {
                            exprs.push(PExpr::Col(i));
                            fields.push(f.clone());
                            any = true;
                        }
                    }
                    if !any {
                        return Err(SnowError::Plan(format!("unknown relation '{q}' in {q}.*")));
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    let bound = bind_expr(expr, &input.fields, None)?;
                    fields.push(Field::bare(derive_name(expr, alias.as_deref(), fields.len())));
                    exprs.push(bound);
                }
            }
        }
        Ok(Node {
            kind: NodeKind::Project { input: Box::new(input), exprs },
            fields,
        })
    }

    fn aggregate_select(&self, s: &Select, input: Node) -> Result<Node> {
        // Bind GROUP BY expressions over the input.
        let mut groups = Vec::with_capacity(s.group_by.len());
        for g in &s.group_by {
            if contains_aggregate(g) {
                return Err(SnowError::Plan("aggregates are not allowed in GROUP BY".into()));
            }
            groups.push(bind_expr(g, &input.fields, None)?);
        }

        let mut ctx = AggCtx {
            group_asts: &s.group_by,
            n_groups: groups.len(),
            aggs: Vec::new(),
            input_fields: &input.fields,
        };

        // Bind select items and HAVING in the aggregate context; this fills
        // `ctx.aggs` as a side effect.
        let mut out_exprs = Vec::new();
        let mut out_fields = Vec::new();
        for item in &s.items {
            match item {
                SelectItem::Expr { expr, alias } => {
                    let bound = bind_agg_expr(expr, &mut ctx)?;
                    out_fields
                        .push(Field::bare(derive_name(expr, alias.as_deref(), out_fields.len())));
                    out_exprs.push(bound);
                }
                _ => {
                    return Err(SnowError::Plan(
                        "wildcard select items cannot be combined with GROUP BY/aggregates".into(),
                    ))
                }
            }
        }
        let having = s.having.as_ref().map(|h| bind_agg_expr(h, &mut ctx)).transpose()?;

        // Aggregate output fields: groups (named when they are plain columns)
        // then aggregates.
        let mut agg_fields = Vec::with_capacity(ctx.n_groups + ctx.aggs.len());
        for (i, g) in s.group_by.iter().enumerate() {
            let name = match g {
                Expr::Ident(parts) => parts.last().cloned().unwrap_or_else(|| format!("$G{i}")),
                _ => format!("$G{i}"),
            };
            agg_fields.push(Field::bare(name));
        }
        for i in 0..ctx.aggs.len() {
            agg_fields.push(Field::bare(format!("$A{i}")));
        }
        let aggs = ctx.aggs;
        let mut node = Node {
            kind: NodeKind::Aggregate { input: Box::new(input), groups, aggs },
            fields: agg_fields,
        };
        if let Some(h) = having {
            let fields = node.fields.clone();
            node = Node { kind: NodeKind::Filter { input: Box::new(node), pred: h }, fields };
        }
        Ok(Node {
            kind: NodeKind::Project { input: Box::new(node), exprs: out_exprs },
            fields: out_fields,
        })
    }

    fn bind_from_clause(&self, from: &crate::sql::FromClause) -> Result<Node> {
        let mut node = self.table_factor(&from.base)?;
        for item in &from.items {
            match item {
                FromItem::Flatten { input, outer, alias } => {
                    let expr = bind_expr(input, &node.fields, None)?;
                    let mut fields = node.fields.clone();
                    for name in FLATTEN_FIELDS {
                        fields.push(Field::new(Some(alias), name));
                    }
                    node = Node {
                        kind: NodeKind::Flatten { input: Box::new(node), expr, outer: *outer },
                        fields,
                    };
                }
                FromItem::Join { kind, factor, on } => {
                    let right = self.table_factor(factor)?;
                    let mut fields = node.fields.clone();
                    fields.extend(right.fields.iter().cloned());
                    let bound_on = on.as_ref().map(|e| bind_expr(e, &fields, None)).transpose()?;
                    node = Node {
                        kind: NodeKind::Join {
                            left: Box::new(node),
                            right: Box::new(right),
                            kind: *kind,
                            on: bound_on,
                        },
                        fields,
                    };
                }
            }
        }
        Ok(node)
    }

    fn table_factor(&self, f: &TableFactor) -> Result<Node> {
        match f {
            TableFactor::Table { name, alias, travel } => {
                let table = match travel {
                    Some(t) => self.catalog.table_at(name, t)?,
                    None => self.catalog.table(name).ok_or_else(|| {
                        SnowError::Plan(format!("table '{name}' does not exist"))
                    })?,
                };
                let qualifier = alias.clone().unwrap_or_else(|| name.clone());
                let fields = table
                    .schema()
                    .iter()
                    .map(|c| Field::new(Some(&qualifier), c.name.clone()))
                    .collect();
                let n = table.schema().len();
                Ok(Node {
                    kind: NodeKind::Scan {
                        table,
                        pushed: Vec::new(),
                        materialize: vec![true; n],
                    },
                    fields,
                })
            }
            TableFactor::Derived { query, alias } => {
                let mut node = self.query(query)?;
                // With an explicit alias, the alias becomes the qualifier of
                // every output column, hiding inner qualifiers. Without one,
                // inner qualifiers are preserved — a deliberate relaxation of
                // strict SQL scoping that lets the dataframe layer's
                // `SELECT * FROM (...)` wrappers keep flatten aliases (e.g.
                // `F.VALUE`) addressable across nesting levels.
                if alias.is_some() {
                    for f in &mut node.fields {
                        f.qualifier = alias.clone();
                    }
                }
                Ok(node)
            }
        }
    }
}

/// Aggregate-binding context threaded through select-list binding.
struct AggCtx<'a> {
    group_asts: &'a [Expr],
    n_groups: usize,
    aggs: Vec<AggExpr>,
    input_fields: &'a [Field],
}

/// True when the AST contains an aggregate function call.
pub fn contains_aggregate(e: &Expr) -> bool {
    match e {
        Expr::Func { name, args, star, .. } => {
            (AggKind::from_name(name).is_some() && (!args.is_empty() || *star || name == "COUNT"))
                || args.iter().any(contains_aggregate)
        }
        Expr::Literal(_) | Expr::Ident(_) => false,
        Expr::Path { base, steps } => {
            contains_aggregate(base)
                || steps.iter().any(|s| match s {
                    PathStep::IndexExpr(e) => contains_aggregate(e),
                    _ => false,
                })
        }
        Expr::Unary { expr, .. } | Expr::Not(expr) | Expr::IsNull { expr, .. } => {
            contains_aggregate(expr)
        }
        Expr::Binary { left, right, .. } => contains_aggregate(left) || contains_aggregate(right),
        Expr::InList { expr, list, .. } => {
            contains_aggregate(expr) || list.iter().any(contains_aggregate)
        }
        Expr::Between { expr, low, high, .. } => {
            contains_aggregate(expr) || contains_aggregate(low) || contains_aggregate(high)
        }
        Expr::Like { expr, pattern, .. } => {
            contains_aggregate(expr) || contains_aggregate(pattern)
        }
        Expr::Case { operand, branches, else_expr } => {
            operand.as_deref().is_some_and(contains_aggregate)
                || branches.iter().any(|(c, v)| contains_aggregate(c) || contains_aggregate(v))
                || else_expr.as_deref().is_some_and(contains_aggregate)
        }
        Expr::Cast { expr, .. } => contains_aggregate(expr),
    }
}

/// Binds an expression appearing above an aggregation: sub-expressions equal to
/// a GROUP BY expression become group-column references, aggregate calls are
/// collected into the context, and anything else must recurse without touching
/// raw input columns.
fn bind_agg_expr(e: &Expr, ctx: &mut AggCtx<'_>) -> Result<PExpr> {
    // Group-key match takes priority.
    if let Some(i) = ctx.group_asts.iter().position(|g| g == e) {
        return Ok(PExpr::Col(i));
    }
    if let Expr::Func { name, args, distinct, star } = e {
        if let Some(kind) = AggKind::from_name(name) {
            let kind = match (kind, *distinct, *star) {
                (AggKind::Count, false, true) => AggKind::CountStar,
                (AggKind::Count, true, false) => AggKind::CountDistinct,
                (k, false, _) => k,
                (k, true, _) => {
                    return Err(SnowError::Plan(format!("DISTINCT is not supported for {k:?}")))
                }
            };
            let two_arg = matches!(kind, AggKind::MinBy | AggKind::MaxBy);
            let (arg, arg2) = if kind == AggKind::CountStar {
                (None, None)
            } else {
                let want = if two_arg { 2 } else { 1 };
                if args.len() != want {
                    return Err(SnowError::Plan(format!(
                        "aggregate {name} takes exactly {want} argument(s)"
                    )));
                }
                if args.iter().any(contains_aggregate) {
                    return Err(SnowError::Plan("nested aggregate functions".into()));
                }
                let a = Some(bind_expr(&args[0], ctx.input_fields, None)?);
                let b = if two_arg {
                    Some(bind_expr(&args[1], ctx.input_fields, None)?)
                } else {
                    None
                };
                (a, b)
            };
            let idx = ctx.n_groups + ctx.aggs.len();
            ctx.aggs.push(AggExpr { kind, arg, arg2 });
            return Ok(PExpr::Col(idx));
        }
    }
    match e {
        Expr::Literal(v) => Ok(PExpr::Lit(v.clone())),
        Expr::Ident(parts) => Err(SnowError::Plan(format!(
            "column '{}' must appear in GROUP BY or inside an aggregate",
            parts.join(".")
        ))),
        Expr::Path { base, steps } => Ok(PExpr::Path {
            base: Box::new(bind_agg_expr(base, ctx)?),
            steps: steps
                .iter()
                .map(|s| {
                    Ok(match s {
                        PathStep::Field(f) => PStep::Field(f.clone()),
                        PathStep::Index(i) => PStep::Index(*i),
                        PathStep::IndexExpr(e) => PStep::IndexExpr(Box::new(bind_agg_expr(e, ctx)?)),
                    })
                })
                .collect::<Result<_>>()?,
        }),
        Expr::Unary { op, expr } => {
            Ok(PExpr::Unary { op: *op, expr: Box::new(bind_agg_expr(expr, ctx)?) })
        }
        Expr::Binary { left, op, right } => Ok(PExpr::Binary {
            left: Box::new(bind_agg_expr(left, ctx)?),
            op: *op,
            right: Box::new(bind_agg_expr(right, ctx)?),
        }),
        Expr::Not(x) => Ok(PExpr::Not(Box::new(bind_agg_expr(x, ctx)?))),
        Expr::IsNull { expr, negated } => Ok(PExpr::IsNull {
            expr: Box::new(bind_agg_expr(expr, ctx)?),
            negated: *negated,
        }),
        Expr::InList { expr, list, negated } => Ok(PExpr::InList {
            expr: Box::new(bind_agg_expr(expr, ctx)?),
            list: list.iter().map(|e| bind_agg_expr(e, ctx)).collect::<Result<_>>()?,
            negated: *negated,
        }),
        Expr::Between { expr, low, high, negated } => {
            desugar_between(expr, low, high, *negated, &mut |e| bind_agg_expr(e, ctx))
        }
        Expr::Like { expr, pattern, negated } => Ok(PExpr::Like {
            expr: Box::new(bind_agg_expr(expr, ctx)?),
            pattern: Box::new(bind_agg_expr(pattern, ctx)?),
            negated: *negated,
        }),
        Expr::Case { operand, branches, else_expr } => Ok(PExpr::Case {
            operand: operand.as_ref().map(|o| bind_agg_expr(o, ctx)).transpose()?.map(Box::new),
            branches: branches
                .iter()
                .map(|(c, v)| Ok((bind_agg_expr(c, ctx)?, bind_agg_expr(v, ctx)?)))
                .collect::<Result<_>>()?,
            else_expr: else_expr
                .as_ref()
                .map(|x| bind_agg_expr(x, ctx))
                .transpose()?
                .map(Box::new),
        }),
        Expr::Func { name, args, distinct, star } => {
            if *distinct || *star {
                return Err(SnowError::Plan(format!("invalid use of {name}")));
            }
            let f = FuncId::from_name(name)
                .ok_or_else(|| SnowError::Plan(format!("unknown function {name}")))?;
            Ok(PExpr::Func {
                f,
                args: args.iter().map(|a| bind_agg_expr(a, ctx)).collect::<Result<_>>()?,
            })
        }
        Expr::Cast { expr, ty } => Ok(PExpr::Cast {
            expr: Box::new(bind_agg_expr(expr, ctx)?),
            ty: cast_type(ty)?,
        }),
    }
}

/// Binds a scalar expression over the given input fields.
///
/// The `extra` parameter optionally provides a secondary namespace (unused in
/// the base dialect, reserved for future correlated constructs).
pub fn bind_expr(e: &Expr, fields: &[Field], extra: Option<&[Field]>) -> Result<PExpr> {
    let _ = extra;
    match e {
        Expr::Literal(v) => Ok(PExpr::Lit(v.clone())),
        Expr::Ident(parts) => resolve(parts, fields).map(PExpr::Col),
        Expr::Path { base, steps } => Ok(PExpr::Path {
            base: Box::new(bind_expr(base, fields, extra)?),
            steps: steps
                .iter()
                .map(|s| {
                    Ok(match s {
                        PathStep::Field(f) => PStep::Field(f.clone()),
                        PathStep::Index(i) => PStep::Index(*i),
                        PathStep::IndexExpr(x) => {
                            PStep::IndexExpr(Box::new(bind_expr(x, fields, extra)?))
                        }
                    })
                })
                .collect::<Result<_>>()?,
        }),
        Expr::Unary { op, expr } => {
            Ok(PExpr::Unary { op: *op, expr: Box::new(bind_expr(expr, fields, extra)?) })
        }
        Expr::Binary { left, op, right } => Ok(PExpr::Binary {
            left: Box::new(bind_expr(left, fields, extra)?),
            op: *op,
            right: Box::new(bind_expr(right, fields, extra)?),
        }),
        Expr::Not(x) => Ok(PExpr::Not(Box::new(bind_expr(x, fields, extra)?))),
        Expr::IsNull { expr, negated } => Ok(PExpr::IsNull {
            expr: Box::new(bind_expr(expr, fields, extra)?),
            negated: *negated,
        }),
        Expr::InList { expr, list, negated } => Ok(PExpr::InList {
            expr: Box::new(bind_expr(expr, fields, extra)?),
            list: list.iter().map(|x| bind_expr(x, fields, extra)).collect::<Result<_>>()?,
            negated: *negated,
        }),
        Expr::Between { expr, low, high, negated } => {
            desugar_between(expr, low, high, *negated, &mut |x| bind_expr(x, fields, extra))
        }
        Expr::Like { expr, pattern, negated } => Ok(PExpr::Like {
            expr: Box::new(bind_expr(expr, fields, extra)?),
            pattern: Box::new(bind_expr(pattern, fields, extra)?),
            negated: *negated,
        }),
        Expr::Case { operand, branches, else_expr } => Ok(PExpr::Case {
            operand: operand
                .as_ref()
                .map(|o| bind_expr(o, fields, extra))
                .transpose()?
                .map(Box::new),
            branches: branches
                .iter()
                .map(|(c, v)| Ok((bind_expr(c, fields, extra)?, bind_expr(v, fields, extra)?)))
                .collect::<Result<_>>()?,
            else_expr: else_expr
                .as_ref()
                .map(|x| bind_expr(x, fields, extra))
                .transpose()?
                .map(Box::new),
        }),
        Expr::Func { name, args, distinct, star } => {
            if AggKind::from_name(name).is_some() {
                return Err(SnowError::Plan(format!(
                    "aggregate function {name} is not allowed in this context"
                )));
            }
            if *distinct || *star {
                return Err(SnowError::Plan(format!("invalid use of {name}")));
            }
            let f = FuncId::from_name(name)
                .ok_or_else(|| SnowError::Plan(format!("unknown function {name}")))?;
            Ok(PExpr::Func {
                f,
                args: args.iter().map(|a| bind_expr(a, fields, extra)).collect::<Result<_>>()?,
            })
        }
        Expr::Cast { expr, ty } => Ok(PExpr::Cast {
            expr: Box::new(bind_expr(expr, fields, extra)?),
            ty: cast_type(ty)?,
        }),
    }
}

fn desugar_between(
    expr: &Expr,
    low: &Expr,
    high: &Expr,
    negated: bool,
    bind: &mut dyn FnMut(&Expr) -> Result<PExpr>,
) -> Result<PExpr> {
    let e1 = bind(expr)?;
    let e2 = e1.clone();
    let lo = bind(low)?;
    let hi = bind(high)?;
    let both = PExpr::Binary {
        left: Box::new(PExpr::Binary {
            left: Box::new(e1),
            op: BinOp::GtEq,
            right: Box::new(lo),
        }),
        op: BinOp::And,
        right: Box::new(PExpr::Binary {
            left: Box::new(e2),
            op: BinOp::LtEq,
            right: Box::new(hi),
        }),
    };
    Ok(if negated { PExpr::Not(Box::new(both)) } else { both })
}

fn cast_type(name: &str) -> Result<CastType> {
    match name.to_ascii_uppercase().as_str() {
        "INT" | "INTEGER" | "BIGINT" | "NUMBER" | "SMALLINT" => Ok(CastType::Int),
        "FLOAT" | "DOUBLE" | "REAL" | "DECIMAL" => Ok(CastType::Float),
        "BOOLEAN" | "BOOL" => Ok(CastType::Bool),
        "VARCHAR" | "STRING" | "TEXT" | "CHAR" => Ok(CastType::Str),
        "VARIANT" => Ok(CastType::Variant),
        other => Err(SnowError::Plan(format!("unsupported cast target '{other}'"))),
    }
}

/// Resolves a possibly-qualified name to a column index.
fn resolve(parts: &[String], fields: &[Field]) -> Result<usize> {
    let matches: Vec<usize> = match parts {
        [name] => fields
            .iter()
            .enumerate()
            .filter(|(_, f)| f.name.eq_ignore_ascii_case(name))
            .map(|(i, _)| i)
            .collect(),
        [qual, name] => fields
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                f.name.eq_ignore_ascii_case(name)
                    && f.qualifier.as_deref().is_some_and(|q| q.eq_ignore_ascii_case(qual))
            })
            .map(|(i, _)| i)
            .collect(),
        _ => {
            return Err(SnowError::Plan(format!(
                "unsupported name '{}' (too many parts)",
                parts.join(".")
            )))
        }
    };
    match matches.as_slice() {
        [i] => Ok(*i),
        [] => Err(SnowError::Plan(format!("unknown column '{}'", parts.join(".")))),
        _ => Err(SnowError::Plan(format!("ambiguous column '{}'", parts.join(".")))),
    }
}

/// Derives an output column name from an expression and optional alias.
fn derive_name(e: &Expr, alias: Option<&str>, position: usize) -> String {
    if let Some(a) = alias {
        return a.to_string();
    }
    match e {
        Expr::Ident(parts) => parts.last().cloned().unwrap_or_default(),
        Expr::Path { steps, .. } => {
            for s in steps.iter().rev() {
                if let PathStep::Field(f) = s {
                    return f.clone();
                }
            }
            format!("$COL{position}")
        }
        Expr::Func { name, .. } => name.clone(),
        Expr::Cast { expr, .. } => derive_name(expr, None, position),
        _ => format!("$COL{position}"),
    }
}
