//! Seal-time column encodings shared by storage and execution.
//!
//! Micro-partitions encode columns when they are sealed: low-cardinality
//! string columns become dictionaries ([`ColumnData::DictStr`]), repetitive
//! int/bool columns become run-length runs ([`ColumnData::Runs`]). The encoded
//! representation is what the partition file writes (per-block encoding ids in
//! the footer), what the buffer cache holds, and what the scan hands to the
//! executor — [`ColumnVec`](crate::exec::column::ColumnVec) carries matching
//! `DictStr`/`Runs` variants so kernels can evaluate filters and group keys
//! directly on dictionary codes.
//!
//! ## Policy
//!
//! Encoding is *encode-if-smaller*: a column is encoded only when the encoded
//! estimate undercuts the plain estimate, so pathological inputs (unique
//! strings, non-repetitive ints) never pay for an encoding that cannot win.
//! The decision is per column per partition, mirroring how Snowflake picks a
//! compression scheme per micro-partition block.
//!
//! ## Control
//!
//! `SNOWDB_ENCODE=0` disables seal-time encoding process-wide (and flips the
//! default execution-side behaviour, see
//! [`QueryOptions::encode`](crate::engine::QueryOptions)); benches and tests
//! can force either mode with [`set_ingest_encoding`] regardless of the
//! environment.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

use super::ColumnData;

/// Sentinel dictionary code marking a NULL row. Dictionaries are bounded by
/// the partition row count, so the sentinel can never collide with a real
/// code.
pub const NULL_CODE: u32 = u32::MAX;

/// Process-wide ingest-encoding override: 0 = follow the environment,
/// 1 = forced off, 2 = forced on.
static INGEST_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Forces seal-time encoding on or off (`None` returns to the
/// `SNOWDB_ENCODE` environment default). Intended for benches and tests that
/// must build both representations inside one process.
pub fn set_ingest_encoding(on: Option<bool>) {
    let v = match on {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    };
    INGEST_OVERRIDE.store(v, Ordering::SeqCst);
}

/// The `SNOWDB_ENCODE` environment default: encoding is on unless the
/// variable spells it off (same convention as `SNOWDB_VECTORIZE`).
pub fn encode_from_env() -> bool {
    !matches!(
        std::env::var("SNOWDB_ENCODE").as_deref(),
        Ok("0") | Ok("false") | Ok("FALSE") | Ok("off") | Ok("OFF")
    )
}

/// Whether partitions sealed right now should attempt encoding.
pub fn ingest_encoding_enabled() -> bool {
    match INGEST_OVERRIDE.load(Ordering::SeqCst) {
        1 => false,
        2 => true,
        _ => encode_from_env(),
    }
}

/// Applies the encode-if-smaller policy to one sealed column.
pub(crate) fn encode_column(col: ColumnData) -> ColumnData {
    match col {
        ColumnData::Str(vals) => match dict_encode(&vals) {
            Some(enc) => enc,
            None => ColumnData::Str(vals),
        },
        ColumnData::Int(vals) => match rle_encode_int(&vals) {
            Some(enc) => enc,
            None => ColumnData::Int(vals),
        },
        ColumnData::Bool(vals) => match rle_encode_bool(&vals) {
            Some(enc) => enc,
            None => ColumnData::Bool(vals),
        },
        other => other,
    }
}

/// Dictionary-encodes a string column in first-appearance order, or `None`
/// when the dictionary would not be smaller than the plain column.
pub(crate) fn dict_encode(vals: &[Option<Arc<str>>]) -> Option<ColumnData> {
    if vals.len() >= NULL_CODE as usize {
        return None;
    }
    let mut index: HashMap<Arc<str>, u32> = HashMap::new();
    let mut dict: Vec<Arc<str>> = Vec::new();
    let mut codes: Vec<u32> = Vec::with_capacity(vals.len());
    let mut plain_bytes = 0u64;
    for v in vals {
        match v {
            None => {
                plain_bytes += 1;
                codes.push(NULL_CODE);
            }
            Some(s) => {
                plain_bytes += s.len() as u64 + 2;
                let code = match index.get(s) {
                    Some(&c) => c,
                    None => {
                        let c = dict.len() as u32;
                        index.insert(s.clone(), c);
                        dict.push(s.clone());
                        c
                    }
                };
                codes.push(code);
            }
        }
    }
    let dict_bytes: u64 = dict.iter().map(|s| s.len() as u64 + 2).sum();
    let encoded_bytes = codes.len() as u64 * 4 + dict_bytes;
    (encoded_bytes < plain_bytes)
        .then(|| ColumnData::DictStr { codes, dict: Arc::new(dict) })
}

/// Cumulative run ends over a slice of optional values (NULL is its own run
/// value). Returns `None` when the column is too long for `u32` offsets.
fn run_ends<T: PartialEq>(vals: &[Option<T>]) -> Option<(Vec<u32>, Vec<usize>)> {
    if vals.len() >= u32::MAX as usize {
        return None;
    }
    let mut ends: Vec<u32> = Vec::new();
    let mut starts: Vec<usize> = Vec::new();
    for (i, v) in vals.iter().enumerate() {
        if i == 0 || vals[i - 1] != *v {
            starts.push(i);
            ends.push(0);
        }
        *ends.last_mut().expect("run exists for every row") = i as u32 + 1;
    }
    Some((ends, starts))
}

/// Run-length-encodes an int column, or `None` when runs would not be
/// smaller (encoded estimate: 4 bytes of offset + 8 bytes of value per run).
pub(crate) fn rle_encode_int(vals: &[Option<i64>]) -> Option<ColumnData> {
    let (ends, starts) = run_ends(vals)?;
    if ends.len() as u64 * 12 >= vals.len() as u64 * 8 {
        return None;
    }
    let values: Vec<Option<i64>> = starts.iter().map(|&s| vals[s]).collect();
    Some(ColumnData::Runs { ends, values: Box::new(ColumnData::Int(values)) })
}

/// Run-length-encodes a bool column, or `None` when runs would not be
/// smaller (encoded estimate: 4 bytes of offset + 1 byte of value per run).
pub(crate) fn rle_encode_bool(vals: &[Option<bool>]) -> Option<ColumnData> {
    let (ends, starts) = run_ends(vals)?;
    if ends.len() as u64 * 5 >= vals.len() as u64 {
        return None;
    }
    let values: Vec<Option<bool>> = starts.iter().map(|&s| vals[s]).collect();
    Some(ColumnData::Runs { ends, values: Box::new(ColumnData::Bool(values)) })
}

/// Index of the run covering row `i` (rows `ends[r-1]..ends[r]` belong to
/// run `r`).
pub(crate) fn run_index(ends: &[u32], i: usize) -> usize {
    ends.partition_point(|&e| e as usize <= i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variant::Variant;

    fn s(x: &str) -> Option<Arc<str>> {
        Some(Arc::from(x))
    }

    #[test]
    fn dict_encode_low_cardinality_roundtrips() {
        let vals: Vec<Option<Arc<str>>> = (0..100)
            .map(|i| if i % 7 == 0 { None } else { s(["red", "green", "blue"][i % 3]) })
            .collect();
        let enc = dict_encode(&vals).expect("low cardinality must encode");
        let ColumnData::DictStr { codes, dict } = &enc else {
            panic!("expected DictStr")
        };
        assert_eq!(codes.len(), 100);
        assert!(dict.len() <= 3);
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(enc.get(i), v.clone().map_or(Variant::Null, Variant::Str));
        }
        // Encoded estimate must undercut the plain estimate (satellite: the
        // governor charges what is actually held).
        assert!(enc.estimated_size() < ColumnData::Str(vals).estimated_size());
    }

    #[test]
    fn dict_encode_declines_high_cardinality() {
        let vals: Vec<Option<Arc<str>>> =
            (0..100).map(|i| s(&format!("unique-value-{i}"))).collect();
        assert!(dict_encode(&vals).is_none());
    }

    #[test]
    fn rle_encode_roundtrips_and_declines() {
        let vals: Vec<Option<i64>> =
            (0..100).map(|i| if i < 50 { Some(1) } else { None }).collect();
        let enc = rle_encode_int(&vals).expect("two runs must encode");
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(enc.get(i), v.map_or(Variant::Null, Variant::Int));
        }
        assert!(enc.estimated_size() < ColumnData::Int(vals).estimated_size());

        let unique: Vec<Option<i64>> = (0..100).map(|i| Some(i)).collect();
        assert!(rle_encode_int(&unique).is_none());

        let bools: Vec<Option<bool>> = (0..100).map(|i| Some(i < 30)).collect();
        let enc = rle_encode_bool(&bools).expect("two runs must encode");
        assert_eq!(enc.get(29), Variant::Bool(true));
        assert_eq!(enc.get(30), Variant::Bool(false));
    }

    #[test]
    fn run_index_finds_covering_run() {
        let ends = vec![3u32, 5, 9];
        assert_eq!(run_index(&ends, 0), 0);
        assert_eq!(run_index(&ends, 2), 0);
        assert_eq!(run_index(&ends, 3), 1);
        assert_eq!(run_index(&ends, 4), 1);
        assert_eq!(run_index(&ends, 8), 2);
    }

    #[test]
    fn ingest_override_beats_environment() {
        set_ingest_encoding(Some(false));
        assert!(!ingest_encoding_enabled());
        set_ingest_encoding(Some(true));
        assert!(ingest_encoding_enabled());
        set_ingest_encoding(None);
        assert_eq!(ingest_encoding_enabled(), encode_from_env());
    }
}
