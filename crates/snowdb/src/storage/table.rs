//! Tables and micro-partitions.

use std::sync::{Arc, OnceLock};

use super::stats::{ColumnStats, TableStats};
use super::{ColumnData, ColumnType, ScanSource, ZoneMap};
use crate::error::{Result, SnowError};
use crate::variant::Variant;

/// Default number of rows per micro-partition.
///
/// Snowflake sizes partitions at 50–500 MB of uncompressed data; at the event
/// sizes of the ADL workload this row count lands partitions in a proportionally
/// scaled-down range while still giving the optimizer many partitions to prune.
pub const DEFAULT_PARTITION_ROWS: usize = 4096;

/// A column declaration: name plus declared type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ColumnDef {
    pub name: String,
    pub ty: ColumnType,
}

impl ColumnDef {
    pub fn new(name: impl Into<String>, ty: ColumnType) -> ColumnDef {
        ColumnDef { name: name.into(), ty }
    }
}

/// One immutable horizontal shard of a table, resident in memory.
///
/// Columns are individually `Arc`-shared so a scan can hand a column to an
/// operator without copying, and so the disk path can cache decoded blocks
/// under the same representation.
#[derive(Clone, Debug)]
pub struct MicroPartition {
    columns: Vec<Arc<ColumnData>>,
    zone_maps: Vec<Option<ZoneMap>>,
    stats: Vec<ColumnStats>,
    column_bytes: Vec<u64>,
    row_count: usize,
}

impl MicroPartition {
    pub(crate) fn seal(columns: Vec<ColumnData>) -> MicroPartition {
        // Seal-time encoding: each column independently picks the smaller of
        // its plain and encoded representations (dictionary for strings, runs
        // for ints/bools). Everything downstream — zone maps, byte
        // accounting, the partition file writer, the scan — sees the encoded
        // column.
        let encode = super::encode::ingest_encoding_enabled();
        MicroPartition::from_arc_columns(
            columns
                .into_iter()
                .map(|c| {
                    Arc::new(if encode { super::encode::encode_column(c) } else { c })
                })
                .collect(),
        )
    }

    /// Seals pre-shared columns (used by the store when rewriting a table's
    /// partitions without copying the data).
    pub(crate) fn from_arc_columns(columns: Vec<Arc<ColumnData>>) -> MicroPartition {
        let row_count = columns.first().map_or(0, |c| c.len());
        debug_assert!(columns.iter().all(|c| c.len() == row_count));
        let zone_maps = columns.iter().map(|c| ZoneMap::build(c)).collect();
        // Optimizer statistics (NDV sketch, null fraction, histogram, array
        // fan-out) are computed once here, at seal time, like zone maps.
        let stats = columns.iter().map(|c| ColumnStats::build(c)).collect();
        let column_bytes = columns.iter().map(|c| c.estimated_size()).collect();
        MicroPartition { columns, zone_maps, stats, column_bytes, row_count }
    }

    /// Number of rows in the partition.
    pub fn row_count(&self) -> usize {
        self.row_count
    }

    /// Column data by position.
    pub fn column(&self, i: usize) -> &ColumnData {
        self.columns[i].as_ref()
    }

    /// Shared handle to column `i`.
    pub fn column_arc(&self, i: usize) -> Arc<ColumnData> {
        self.columns[i].clone()
    }

    /// Zone map for column `i`, when available.
    pub fn zone_map(&self, i: usize) -> Option<&ZoneMap> {
        self.zone_maps[i].as_ref()
    }

    /// Optimizer statistics for column `i` (always present for sealed
    /// in-memory partitions).
    pub fn column_stats(&self, i: usize) -> Option<&ColumnStats> {
        self.stats.get(i)
    }

    /// Estimated bytes of column `i`.
    pub fn column_bytes(&self, i: usize) -> u64 {
        self.column_bytes[i]
    }

    /// Total estimated bytes across all columns.
    pub fn total_bytes(&self) -> u64 {
        self.column_bytes.iter().sum()
    }
}

/// An immutable snapshot of a table: schema plus sealed partition sources.
///
/// Tables are `Arc`-shared into query executions; ingest builds a fresh snapshot
/// via [`TableBuilder`], which keeps queries free of locking on the data path.
/// Each partition is a [`ScanSource`] — fully resident for in-memory tables,
/// a lazily-read partition file for persistent ones.
#[derive(Clone, Debug)]
pub struct Table {
    name: String,
    schema: Vec<ColumnDef>,
    partitions: Vec<Arc<ScanSource>>,
    row_count: usize,
    stats: OnceLock<Arc<TableStats>>,
}

impl Table {
    /// Assembles a table from already-sealed partition sources (the store's
    /// reopen path).
    pub(crate) fn from_parts(
        name: String,
        schema: Vec<ColumnDef>,
        partitions: Vec<Arc<ScanSource>>,
    ) -> Table {
        let row_count = partitions.iter().map(|p| p.row_count()).sum();
        Table { name, schema, partitions, row_count, stats: OnceLock::new() }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declared schema.
    pub fn schema(&self) -> &[ColumnDef] {
        &self.schema
    }

    /// Position of a column by case-insensitive name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.schema.iter().position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Sealed partition sources.
    pub fn partitions(&self) -> &[Arc<ScanSource>] {
        &self.partitions
    }

    /// Total rows.
    pub fn row_count(&self) -> usize {
        self.row_count
    }

    /// Total bytes across all partitions (estimated in-memory bytes for
    /// memory partitions, exact on-disk block bytes for disk partitions).
    pub fn total_bytes(&self) -> u64 {
        self.partitions.iter().map(|p| p.total_bytes()).sum()
    }

    /// Aggregated optimizer statistics, computed lazily on first use and
    /// cached for the life of this (immutable) snapshot. Metadata-only:
    /// per-partition stats come from sealed partitions or disk footers, so
    /// this never reads column data.
    pub fn stats(&self) -> &Arc<TableStats> {
        self.stats.get_or_init(|| {
            Arc::new(TableStats::aggregate(self.schema.len(), &self.partitions))
        })
    }
}

/// Destination of sealed micro-partitions during ingest.
///
/// The builder streams: as soon as a partition fills, it is sealed and handed
/// to the sink — kept in memory ([`MemSink`]), written straight to a
/// partition file (the store's sink), or wrapped with governor accounting —
/// so ingest memory is bounded by one open partition, not the whole table.
pub trait PartitionSink {
    fn flush(&self, part: MicroPartition) -> Result<Arc<ScanSource>>;
}

/// The default sink: partitions stay resident in memory.
pub struct MemSink;

impl PartitionSink for MemSink {
    fn flush(&self, part: MicroPartition) -> Result<Arc<ScanSource>> {
        Ok(Arc::new(ScanSource::Mem(part)))
    }
}

/// Accumulates rows and seals them into micro-partitions.
pub struct TableBuilder {
    name: String,
    schema: Vec<ColumnDef>,
    partition_rows: usize,
    sink: Box<dyn PartitionSink>,
    sealed: Vec<Arc<ScanSource>>,
    open: Vec<ColumnData>,
    open_rows: usize,
    total_rows: usize,
}

impl TableBuilder {
    /// Starts a builder with the default partition size.
    pub fn new(name: impl Into<String>, schema: Vec<ColumnDef>) -> TableBuilder {
        TableBuilder::with_partition_rows(name, schema, DEFAULT_PARTITION_ROWS)
    }

    /// Starts a builder with an explicit rows-per-partition bound.
    pub fn with_partition_rows(
        name: impl Into<String>,
        schema: Vec<ColumnDef>,
        partition_rows: usize,
    ) -> TableBuilder {
        TableBuilder::with_sink(name, schema, partition_rows, Box::new(MemSink))
    }

    /// Starts a builder flushing sealed partitions into `sink`.
    pub fn with_sink(
        name: impl Into<String>,
        schema: Vec<ColumnDef>,
        partition_rows: usize,
        sink: Box<dyn PartitionSink>,
    ) -> TableBuilder {
        assert!(partition_rows > 0, "partition size must be positive");
        let open = schema.iter().map(|c| ColumnData::empty(c.ty)).collect();
        TableBuilder {
            name: name.into(),
            schema,
            partition_rows,
            sink,
            sealed: Vec::new(),
            open,
            open_rows: 0,
            total_rows: 0,
        }
    }

    /// Appends one row; the row must have exactly one value per schema column.
    pub fn push_row(&mut self, row: &[Variant]) -> Result<()> {
        if row.len() != self.schema.len() {
            return Err(SnowError::Catalog(format!(
                "row arity {} does not match schema arity {} for table {}",
                row.len(),
                self.schema.len(),
                self.name
            )));
        }
        for (col, v) in self.open.iter_mut().zip(row) {
            col.push(v);
        }
        self.open_rows += 1;
        self.total_rows += 1;
        if self.open_rows >= self.partition_rows {
            self.seal_open()?;
        }
        Ok(())
    }

    fn seal_open(&mut self) -> Result<()> {
        if self.open_rows == 0 {
            return Ok(());
        }
        let cols = std::mem::replace(
            &mut self.open,
            self.schema.iter().map(|c| ColumnData::empty(c.ty)).collect(),
        );
        self.sealed.push(self.sink.flush(MicroPartition::seal(cols))?);
        self.open_rows = 0;
        Ok(())
    }

    /// Seals any open partition and produces the immutable table. Fallible
    /// because the final flush may hit the sink (e.g. a disk write).
    pub fn finish(mut self) -> Result<Table> {
        self.seal_open()?;
        Ok(Table {
            name: self.name,
            schema: self.schema,
            partitions: self.sealed,
            row_count: self.total_rows,
            stats: OnceLock::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_col(name: &str) -> ColumnDef {
        ColumnDef::new(name, ColumnType::Int)
    }

    #[test]
    fn builder_partitions_by_row_count() {
        let mut b = TableBuilder::with_partition_rows("t", vec![int_col("a")], 3);
        for i in 0..10 {
            b.push_row(&[Variant::Int(i)]).unwrap();
        }
        let t = b.finish().unwrap();
        assert_eq!(t.row_count(), 10);
        assert_eq!(t.partitions().len(), 4);
        assert_eq!(t.partitions()[0].row_count(), 3);
        assert_eq!(t.partitions()[3].row_count(), 1);
    }

    #[test]
    fn builder_rejects_wrong_arity() {
        let mut b = TableBuilder::new("t", vec![int_col("a"), int_col("b")]);
        assert!(b.push_row(&[Variant::Int(1)]).is_err());
    }

    #[test]
    fn partition_zone_maps_cover_their_rows_only() {
        let mut b = TableBuilder::with_partition_rows("t", vec![int_col("a")], 2);
        for i in [1, 2, 100, 200] {
            b.push_row(&[Variant::Int(i)]).unwrap();
        }
        let t = b.finish().unwrap();
        let zm0 = t.partitions()[0].zone_map(0).unwrap();
        let zm1 = t.partitions()[1].zone_map(0).unwrap();
        assert_eq!(zm0.max, Variant::Int(2));
        assert_eq!(zm1.min, Variant::Int(100));
    }

    #[test]
    fn column_index_is_case_insensitive() {
        let t = TableBuilder::new("t", vec![int_col("Foo")]).finish().unwrap();
        assert_eq!(t.column_index("FOO"), Some(0));
        assert_eq!(t.column_index("foo"), Some(0));
        assert_eq!(t.column_index("bar"), None);
    }

    #[test]
    fn empty_table_has_no_partitions() {
        let t = TableBuilder::new("t", vec![int_col("a")]).finish().unwrap();
        assert_eq!(t.partitions().len(), 0);
        assert_eq!(t.row_count(), 0);
        assert_eq!(t.total_bytes(), 0);
    }

    #[test]
    fn table_stats_aggregate_across_partitions() {
        let mut b = TableBuilder::with_partition_rows("t", vec![int_col("a")], 4);
        for i in 0..10 {
            b.push_row(&[if i % 5 == 0 { Variant::Null } else { Variant::Int(i % 3) }])
                .unwrap();
        }
        let t = b.finish().unwrap();
        assert_eq!(t.partitions().len(), 3);
        let stats = t.stats();
        assert_eq!(stats.rows, 10);
        let col = stats.columns[0].as_ref().expect("aggregated stats");
        assert_eq!(col.rows, 10);
        assert_eq!(col.nulls, 2);
        assert_eq!(col.distinct(), 3.0); // values 0, 1, 2
    }

    /// A failing sink propagates through `push_row`/`finish` as a typed
    /// error instead of losing data silently.
    #[test]
    fn sink_errors_propagate() {
        struct FailSink;
        impl PartitionSink for FailSink {
            fn flush(&self, _part: MicroPartition) -> Result<Arc<ScanSource>> {
                Err(SnowError::Storage("disk full".into()))
            }
        }
        let mut b = TableBuilder::with_sink("t", vec![int_col("a")], 2, Box::new(FailSink));
        b.push_row(&[Variant::Int(1)]).unwrap();
        let err = b.push_row(&[Variant::Int(2)]).unwrap_err();
        assert!(matches!(err, SnowError::Storage(_)));
    }
}
