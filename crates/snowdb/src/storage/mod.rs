//! Micro-partitioned columnar storage.
//!
//! Models the storage properties of §II-B of the paper:
//! - tables are horizontally sharded into *micro-partitions* of bounded size;
//! - within a partition, data is stored per column;
//! - declared scalar columns are stored in typed vectors ("transparent
//!   columnarization / lowest common type"), `VARIANT` columns as parsed values;
//! - each partition keeps zone maps (min/max) per column, which the executor uses
//!   to prune partitions;
//! - every scan accounts the bytes of the columns it actually touches, which is
//!   the quantity reported in the paper's §V-E.

pub mod encode;
pub mod ingest;
pub mod morsel;
pub mod stats;
mod table;

pub use encode::{encode_from_env, set_ingest_encoding, NULL_CODE};
pub use ingest::{infer_schema, IngestReport, StreamIngestor};
pub use stats::{ColumnStats, KmvSketch, TableStats};
pub use table::{
    ColumnDef, MemSink, MicroPartition, PartitionSink, Table, TableBuilder,
    DEFAULT_PARTITION_ROWS,
};

use std::cmp::Ordering;
use std::sync::Arc;

use crate::error::Result;
use crate::govern::QueryGovernor;
use crate::store::cache::CacheOutcome;
use crate::store::DiskPartition;
use crate::variant::{cmp_variants, Variant};

/// Declared type of a table column.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColumnType {
    /// 64-bit integer (`NUMBER(38,0)` in the paper's staging).
    Int,
    /// 64-bit float (`DOUBLE`).
    Float,
    /// Boolean.
    Bool,
    /// UTF-8 string (`VARCHAR`).
    Str,
    /// Schema-less nested value (`VARIANT`).
    Variant,
}

impl ColumnType {
    /// Canonical SQL type name; round-trips through [`ColumnType::parse`]
    /// (used by the persistent store's manifest).
    pub fn name(self) -> &'static str {
        match self {
            ColumnType::Int => "INT",
            ColumnType::Float => "FLOAT",
            ColumnType::Bool => "BOOLEAN",
            ColumnType::Str => "VARCHAR",
            ColumnType::Variant => "VARIANT",
        }
    }

    /// Parses a SQL type name.
    pub fn parse(name: &str) -> Option<ColumnType> {
        match name.to_ascii_uppercase().as_str() {
            "INT" | "INTEGER" | "BIGINT" | "NUMBER" => Some(ColumnType::Int),
            "FLOAT" | "DOUBLE" | "REAL" => Some(ColumnType::Float),
            "BOOLEAN" | "BOOL" => Some(ColumnType::Bool),
            "VARCHAR" | "STRING" | "TEXT" | "CHAR" => Some(ColumnType::Str),
            "VARIANT" | "OBJECT" | "ARRAY" => Some(ColumnType::Variant),
            _ => None,
        }
    }
}

/// Columnar data for one column of one micro-partition.
///
/// Scalar-typed columns use dense typed vectors with a null mask folded into
/// `Option`; `VARIANT` columns store parsed values directly (no re-parse on scan,
/// which is exactly what separates this engine from the document-store baseline).
#[derive(Clone, Debug)]
pub enum ColumnData {
    Int(Vec<Option<i64>>),
    Float(Vec<Option<f64>>),
    Bool(Vec<Option<bool>>),
    Str(Vec<Option<std::sync::Arc<str>>>),
    Variant(Vec<Variant>),
    /// Dictionary-encoded strings: `codes[i]` indexes `dict`, with
    /// [`NULL_CODE`](encode::NULL_CODE) marking NULL rows. The dictionary is
    /// `Arc`-shared so execution batches sliced from this column reference the
    /// same dictionary without copying it.
    DictStr { codes: Vec<u32>, dict: Arc<Vec<Arc<str>>> },
    /// Run-length-encoded scalars: run `r` covers rows `ends[r-1]..ends[r]`
    /// and holds row `r` of `values` (an `Int` or `Bool` column with one row
    /// per run; a NULL run is a null value row).
    Runs { ends: Vec<u32>, values: Box<ColumnData> },
}

impl ColumnData {
    /// Empty column of the given type.
    pub fn empty(ty: ColumnType) -> ColumnData {
        match ty {
            ColumnType::Int => ColumnData::Int(Vec::new()),
            ColumnType::Float => ColumnData::Float(Vec::new()),
            ColumnType::Bool => ColumnData::Bool(Vec::new()),
            ColumnType::Str => ColumnData::Str(Vec::new()),
            ColumnType::Variant => ColumnData::Variant(Vec::new()),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Bool(v) => v.len(),
            ColumnData::Str(v) => v.len(),
            ColumnData::Variant(v) => v.len(),
            ColumnData::DictStr { codes, .. } => codes.len(),
            ColumnData::Runs { ends, .. } => ends.last().map_or(0, |&e| e as usize),
        }
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends a variant value.
    ///
    /// A value is stored natively only when the conversion to the column's
    /// storage type is *lossless*: an integral double may shred into an `Int`
    /// column, an integer below 2^53 into a `Float` column. Any value the
    /// column cannot hold exactly promotes the **whole column** to
    /// [`ColumnData::Variant`] — mirroring Snowflake's "lowest common type"
    /// columnarization, which falls back to VARIANT storage when a
    /// micro-partition's values drift. Data is never truncated or nulled-out:
    /// `push` followed by [`ColumnData::get`] always round-trips a value equal
    /// to the input.
    pub fn push(&mut self, v: &Variant) {
        match (&mut *self, v) {
            (ColumnData::Int(col), Variant::Null) => col.push(None),
            (ColumnData::Int(col), Variant::Int(i)) => col.push(Some(*i)),
            (ColumnData::Int(col), Variant::Float(f))
                if f.fract() == 0.0
                    && *f >= -9_223_372_036_854_775_808.0
                    && *f < 9_223_372_036_854_775_808.0 =>
            {
                col.push(Some(*f as i64))
            }
            (ColumnData::Float(col), Variant::Null) => col.push(None),
            (ColumnData::Float(col), Variant::Float(f)) => col.push(Some(*f)),
            (ColumnData::Float(col), Variant::Int(i))
                if cmp_variants(&Variant::Float(*i as f64), v) == Ordering::Equal =>
            {
                col.push(Some(*i as f64))
            }
            (ColumnData::Bool(col), Variant::Null) => col.push(None),
            (ColumnData::Bool(col), Variant::Bool(b)) => col.push(Some(*b)),
            (ColumnData::Str(col), Variant::Null) => col.push(None),
            (ColumnData::Str(col), Variant::Str(s)) => col.push(Some(s.clone())),
            (ColumnData::Variant(col), v) => col.push(v.clone()),
            // Encoded columns are immutable in spirit (they are built at seal
            // time); a stray push decodes back to the plain representation
            // first so the adaptivity rules above apply unchanged.
            (ColumnData::DictStr { .. } | ColumnData::Runs { .. }, v) => {
                *self = self.decoded();
                self.push(v);
            }
            (_, v) => {
                *self = ColumnData::Variant(self.to_variants());
                self.push(v);
            }
        }
    }

    /// The plain (unencoded) representation of the column; clones only when
    /// the column is encoded.
    pub fn decoded(&self) -> ColumnData {
        match self {
            ColumnData::DictStr { codes, dict } => ColumnData::Str(
                codes
                    .iter()
                    .map(|&c| (c != encode::NULL_CODE).then(|| dict[c as usize].clone()))
                    .collect(),
            ),
            ColumnData::Runs { ends, values } => {
                let mut out = values.decoded();
                out = match out {
                    ColumnData::Int(v) => ColumnData::Int(expand_runs(ends, &v)),
                    ColumnData::Float(v) => ColumnData::Float(expand_runs(ends, &v)),
                    ColumnData::Bool(v) => ColumnData::Bool(expand_runs(ends, &v)),
                    other => {
                        let mut flat = Vec::with_capacity(self.len());
                        let mut start = 0usize;
                        for (r, &e) in ends.iter().enumerate() {
                            for _ in start..e as usize {
                                flat.push(other.get(r));
                            }
                            start = e as usize;
                        }
                        ColumnData::Variant(flat)
                    }
                };
                out
            }
            other => other.clone(),
        }
    }

    /// The storage type the column currently holds. For a column promoted to
    /// `Variant` mid-ingest this is [`ColumnType::Variant`] regardless of the
    /// declared schema type — persistence must record the *actual* type so the
    /// decoder reads back what was encoded.
    pub fn column_type(&self) -> ColumnType {
        match self {
            ColumnData::Int(_) => ColumnType::Int,
            ColumnData::Float(_) => ColumnType::Float,
            ColumnData::Bool(_) => ColumnType::Bool,
            ColumnData::Str(_) | ColumnData::DictStr { .. } => ColumnType::Str,
            ColumnData::Variant(_) => ColumnType::Variant,
            ColumnData::Runs { values, .. } => values.column_type(),
        }
    }

    /// Reads row `i` back as a variant.
    pub fn get(&self, i: usize) -> Variant {
        match self {
            ColumnData::Int(v) => v[i].map_or(Variant::Null, Variant::Int),
            ColumnData::Float(v) => v[i].map_or(Variant::Null, Variant::Float),
            ColumnData::Bool(v) => v[i].map_or(Variant::Null, Variant::Bool),
            ColumnData::Str(v) => v[i].clone().map_or(Variant::Null, Variant::Str),
            ColumnData::Variant(v) => v[i].clone(),
            ColumnData::DictStr { codes, dict } => {
                if codes[i] == encode::NULL_CODE {
                    Variant::Null
                } else {
                    Variant::Str(dict[codes[i] as usize].clone())
                }
            }
            ColumnData::Runs { ends, values } => {
                debug_assert!(i < self.len());
                values.get(encode::run_index(ends, i))
            }
        }
    }

    /// Materializes the whole column as variants.
    pub fn to_variants(&self) -> Vec<Variant> {
        (0..self.len()).map(|i| self.get(i)).collect()
    }

    /// Estimated byte size of the column *as held*, used for scan accounting,
    /// micro-partition sizing, the buffer cache, and governor memory budgets.
    /// Encoded columns charge their encoded size — codes plus the shared
    /// dictionary, or run offsets plus run values — never the fully
    /// materialized string estimate.
    pub fn estimated_size(&self) -> u64 {
        match self {
            ColumnData::Int(v) => v.len() as u64 * 8,
            ColumnData::Float(v) => v.len() as u64 * 8,
            ColumnData::Bool(v) => v.len() as u64,
            ColumnData::Str(v) => v
                .iter()
                .map(|s| s.as_ref().map_or(1, |s| s.len() as u64 + 2))
                .sum(),
            ColumnData::Variant(v) => v.iter().map(Variant::estimated_size).sum(),
            ColumnData::DictStr { codes, dict } => {
                codes.len() as u64 * 4
                    + dict.iter().map(|s| s.len() as u64 + 2).sum::<u64>()
            }
            ColumnData::Runs { ends, values } => {
                ends.len() as u64 * 4 + values.estimated_size()
            }
        }
    }
}

/// Expands per-run values back to one value per row.
fn expand_runs<T: Clone>(ends: &[u32], values: &[Option<T>]) -> Vec<Option<T>> {
    let mut out = Vec::with_capacity(ends.last().map_or(0, |&e| e as usize));
    let mut start = 0usize;
    for (r, &e) in ends.iter().enumerate() {
        for _ in start..e as usize {
            out.push(values[r].clone());
        }
        start = e as usize;
    }
    out
}

/// Per-column min/max statistics for one micro-partition ("zone map").
///
/// Only kept for scalar-typed columns; `VARIANT` columns report `None` and are
/// never pruned on, matching the paper's note that pruning works on
/// micro-partition-level metadata for addressable columns.
#[derive(Clone, Debug)]
pub struct ZoneMap {
    pub min: Variant,
    pub max: Variant,
    pub null_count: usize,
}

impl ZoneMap {
    /// Builds the zone map for a column, or `None` for variant columns and
    /// empty columns. An all-null scalar column *does* get a zone map — with
    /// `Variant::Null` bounds — so `IS NULL` / `IS NOT NULL` pruning can see
    /// its null count (a `None` here means "no metadata, never prune").
    pub fn build(col: &ColumnData) -> Option<ZoneMap> {
        if matches!(col, ColumnData::Variant(_)) || col.is_empty() {
            return None;
        }
        let mut min: Option<Variant> = None;
        let mut max: Option<Variant> = None;
        let mut null_count = 0usize;
        for i in 0..col.len() {
            let v = col.get(i);
            if v.is_null() {
                null_count += 1;
                continue;
            }
            match &min {
                Some(m) if cmp_variants(&v, m) == Ordering::Less => min = Some(v.clone()),
                None => min = Some(v.clone()),
                _ => {}
            }
            match &max {
                Some(m) if cmp_variants(&v, m) == Ordering::Greater => max = Some(v),
                None => max = Some(v),
                _ => {}
            }
        }
        Some(ZoneMap {
            min: min.unwrap_or(Variant::Null),
            max: max.unwrap_or(Variant::Null),
            null_count,
        })
    }

    /// Can a value in `[min, max]` possibly satisfy `value <cmp> literal`?
    ///
    /// `cmp` is one of `=`, `<`, `<=`, `>`, `>=`, `<>`, `IS NULL`,
    /// `IS NOT NULL`; returns `true` when the partition cannot be excluded.
    ///
    /// Comparisons between the zone-map bounds and the literal go through
    /// [`cmp_variants`], whose (Int, Float) arm is the exact `cmp_i64_f64`
    /// path — never an `i64 as f64` cast — so an `Int` zone map compared
    /// against a `Float` literal is decided correctly even for values
    /// straddling 2^53 (see `zone_map_int_bounds_vs_float_literal_is_exact`).
    pub fn may_match(&self, cmp: &str, lit: &Variant) -> bool {
        use Ordering::*;
        match cmp {
            // Null-presence predicates read only the null count / bounds:
            // a partition with no NULLs cannot satisfy IS NULL; an all-null
            // partition (Null bounds) cannot satisfy IS NOT NULL.
            "IS NULL" => return self.null_count > 0,
            "IS NOT NULL" => return !self.min.is_null(),
            _ => {}
        }
        // All-null partition: no value comparison can succeed. Without this
        // guard, Null (which sorts above every value) would make `>` / `>=`
        // wrongly keep the partition.
        if self.min.is_null() {
            return false;
        }
        let min_c = cmp_variants(&self.min, lit);
        let max_c = cmp_variants(&self.max, lit);
        match cmp {
            "=" => min_c != Greater && max_c != Less,
            "<" => min_c == Less,
            "<=" => min_c != Greater,
            ">" => max_c == Greater,
            ">=" => max_c != Less,
            "<>" => !(min_c == Equal && max_c == Equal),
            _ => true,
        }
    }
}

/// One micro-partition as the scan operator sees it: either fully resident
/// in memory or backed by an immutable partition file that is read lazily,
/// one column block at a time.
///
/// This is the abstraction that makes pruning *real*: the executor consults
/// only [`ScanSource::zone_map`] and [`ScanSource::column_bytes`] — both
/// metadata, free of data I/O — to decide what to read, and then fetches
/// exactly the surviving columns via [`ScanSource::read_column_governed`].
/// For a disk partition, a pruned partition or an unprojected column
/// therefore contributes **zero** file bytes to `bytes_scanned`.
#[derive(Debug)]
pub enum ScanSource {
    /// A memory-resident partition (the default for non-persistent tables).
    Mem(MicroPartition),
    /// A partition file of a persistent database, read lazily through the
    /// store's shared buffer cache.
    Disk(DiskPartition),
}

/// Result of materializing one column from a [`ScanSource`].
#[derive(Clone, Debug)]
pub struct ColumnRead {
    /// The decoded column, shared with the buffer cache for disk reads.
    pub data: Arc<ColumnData>,
    /// Bytes charged to `bytes_scanned`: the estimated in-memory size for
    /// memory partitions; the *exact file bytes read* for disk partitions —
    /// zero on a buffer-cache hit.
    pub io_bytes: u64,
    /// Decoded bytes newly materialized by this read (charged against the
    /// query's memory budget); zero for memory partitions and cache hits.
    pub mem_bytes: u64,
    /// Cache accounting for disk reads; `None` for memory partitions.
    pub cache: Option<CacheOutcome>,
}

impl ScanSource {
    /// Number of rows in the partition.
    pub fn row_count(&self) -> usize {
        match self {
            ScanSource::Mem(p) => p.row_count(),
            ScanSource::Disk(p) => p.row_count(),
        }
    }

    /// Zone map for column `i`, when available. Metadata-only for both
    /// arms: disk partitions carry zone maps in their footer.
    pub fn zone_map(&self, i: usize) -> Option<&ZoneMap> {
        match self {
            ScanSource::Mem(p) => p.zone_map(i),
            ScanSource::Disk(p) => p.zone_map(i),
        }
    }

    /// Optimizer statistics for column `i`, when available. Metadata-only:
    /// disk partitions carry stats in their footer (format v3+); files
    /// written by older versions report `None`.
    pub fn column_stats(&self, i: usize) -> Option<&ColumnStats> {
        match self {
            ScanSource::Mem(p) => p.column_stats(i),
            ScanSource::Disk(p) => p.column_stats(i),
        }
    }

    /// Cost of reading column `i`: estimated in-memory bytes (memory) or
    /// exact encoded block length (disk). This is what a scan *saves* by
    /// pruning the partition or skipping the column.
    pub fn column_bytes(&self, i: usize) -> u64 {
        match self {
            ScanSource::Mem(p) => p.column_bytes(i),
            ScanSource::Disk(p) => p.column_bytes(i),
        }
    }

    /// Sum of [`ScanSource::column_bytes`] over all columns.
    pub fn total_bytes(&self) -> u64 {
        match self {
            ScanSource::Mem(p) => p.total_bytes(),
            ScanSource::Disk(p) => p.total_bytes(),
        }
    }

    /// True for disk-backed partitions.
    pub fn is_disk(&self) -> bool {
        matches!(self, ScanSource::Disk(_))
    }

    /// The memory partition, when this source is memory-resident.
    pub fn as_mem(&self) -> Option<&MicroPartition> {
        match self {
            ScanSource::Mem(p) => Some(p),
            ScanSource::Disk(_) => None,
        }
    }

    /// Materializes column `i` under the query's governor. Disk reads pass a
    /// [`StoreRead`](crate::govern::chaos::ChaosSite::StoreRead) checkpoint
    /// first, then consult the buffer cache, and only on a miss touch the
    /// file — charging exactly the block's bytes.
    pub fn read_column_governed(
        &self,
        i: usize,
        gov: &QueryGovernor,
        op: &str,
    ) -> Result<ColumnRead> {
        match self {
            ScanSource::Mem(p) => Ok(ColumnRead {
                data: p.column_arc(i),
                io_bytes: p.column_bytes(i),
                mem_bytes: 0,
                cache: None,
            }),
            ScanSource::Disk(p) => p.read_column_governed(i, gov, op),
        }
    }

    /// Ungoverned convenience read (catalog maintenance, baselines, tests).
    pub fn read_column(&self, i: usize) -> Result<Arc<ColumnData>> {
        Ok(self
            .read_column_governed(i, &QueryGovernor::unbounded(), "Scan")?
            .data)
    }

    /// Fully materializes the partition in memory (persistence round-trips,
    /// `INSERT` table rebuilds). Cheap for memory partitions — columns are
    /// `Arc`-shared, not copied.
    pub fn to_mem(&self) -> Result<MicroPartition> {
        match self {
            ScanSource::Mem(p) => Ok(p.clone()),
            ScanSource::Disk(p) => {
                let cols = (0..p.meta().columns.len())
                    .map(|i| self.read_column(i))
                    .collect::<Result<Vec<_>>>()?;
                Ok(MicroPartition::from_arc_columns(cols))
            }
        }
    }
}

/// Accumulated scan statistics for one query execution.
#[derive(Clone, Copy, Debug, Default)]
pub struct ScanStats {
    /// Bytes of column data actually read (referenced columns of non-pruned
    /// partitions) — the §V-E metric. Estimated in-memory bytes for memory
    /// tables; **exact file bytes read** for disk tables (cache hits cost 0).
    pub bytes_scanned: u64,
    /// Total partitions considered across all scans.
    pub partitions_total: u64,
    /// Partitions actually read after zone-map pruning.
    pub partitions_scanned: u64,
    /// Partitions excluded by zone-map pruning (`total - scanned`, kept
    /// explicitly so merged multi-scan stats stay interpretable).
    pub partitions_pruned: u64,
    /// Column blocks of scanned partitions skipped by projection pruning.
    pub columns_skipped: u64,
    /// Bytes *not* read thanks to partition pruning and column skipping —
    /// the saved-I/O counterpart of `bytes_scanned`, uniform across memory
    /// and disk scans.
    pub bytes_skipped: u64,
    /// Rows produced by scans.
    pub rows_scanned: u64,
    /// Buffer-cache hits (disk scans only).
    pub cache_hits: u64,
    /// Buffer-cache misses, i.e. column blocks fetched from files.
    pub cache_misses: u64,
    /// Blocks evicted from the buffer cache while this query loaded blocks.
    pub cache_evictions: u64,
}

impl ScanStats {
    /// Merges another stats record into this one.
    pub fn merge(&mut self, other: &ScanStats) {
        self.bytes_scanned += other.bytes_scanned;
        self.partitions_total += other.partitions_total;
        self.partitions_scanned += other.partitions_scanned;
        self.partitions_pruned += other.partitions_pruned;
        self.columns_skipped += other.columns_skipped;
        self.bytes_skipped += other.bytes_skipped;
        self.rows_scanned += other.rows_scanned;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_evictions += other.cache_evictions;
    }

    /// Folds one column access outcome into the stats.
    pub fn record_read(&mut self, read: &ColumnRead) {
        self.bytes_scanned += read.io_bytes;
        if let Some(c) = read.cache {
            if c.hit {
                self.cache_hits += 1;
            } else {
                self.cache_misses += 1;
            }
            self.cache_evictions += c.evictions;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_roundtrip_typed() {
        let mut c = ColumnData::empty(ColumnType::Int);
        c.push(&Variant::Int(5));
        c.push(&Variant::Null);
        c.push(&Variant::Float(7.0));
        assert_eq!(c.get(0), Variant::Int(5));
        assert!(c.get(1).is_null());
        assert_eq!(c.get(2), Variant::Int(7));
    }

    #[test]
    fn column_type_mismatch_promotes_to_variant() {
        // A drifting value must never be truncated or nulled-out: the column
        // promotes to Variant storage and keeps every value exactly.
        let mut c = ColumnData::empty(ColumnType::Int);
        c.push(&Variant::Int(5));
        c.push(&Variant::str("oops"));
        c.push(&Variant::Int(6));
        assert_eq!(c.column_type(), ColumnType::Variant);
        assert_eq!(c.get(0), Variant::Int(5));
        assert_eq!(c.get(1), Variant::str("oops"));
        assert_eq!(c.get(2), Variant::Int(6));
    }

    #[test]
    fn lossy_numeric_pushes_promote_instead_of_truncating() {
        // Non-integral double into an Int column: the old path stored
        // `as_i64()` (null), silently losing the value.
        let mut c = ColumnData::empty(ColumnType::Int);
        c.push(&Variant::Float(7.5));
        assert_eq!(c.column_type(), ColumnType::Variant);
        assert_eq!(c.get(0), Variant::Float(7.5));

        // 2^63 is out of i64 range: must not saturate to i64::MAX.
        let mut c = ColumnData::empty(ColumnType::Int);
        c.push(&Variant::Float(9.223372036854776e18));
        assert_eq!(c.get(0), Variant::Float(9.223372036854776e18));

        // An integer above 2^53 does not fit a double exactly: a Float column
        // must promote rather than round it.
        let mut c = ColumnData::empty(ColumnType::Float);
        let big = (1i64 << 53) + 1;
        c.push(&Variant::Int(big));
        assert_eq!(c.column_type(), ColumnType::Variant);
        assert_eq!(c.get(0), Variant::Int(big));

        // ...while a small integer shreds into the Float column losslessly.
        let mut c = ColumnData::empty(ColumnType::Float);
        c.push(&Variant::Int(42));
        assert_eq!(c.column_type(), ColumnType::Float);
        assert_eq!(c.get(0), Variant::Float(42.0));

        // NaN into an Int column promotes (fract() of NaN is NaN).
        let mut c = ColumnData::empty(ColumnType::Int);
        c.push(&Variant::Float(f64::NAN));
        assert_eq!(c.column_type(), ColumnType::Variant);
    }

    #[test]
    fn zone_map_bounds() {
        let mut c = ColumnData::empty(ColumnType::Float);
        for v in [3.0, -1.0, 7.5] {
            c.push(&Variant::Float(v));
        }
        c.push(&Variant::Null);
        let zm = ZoneMap::build(&c).unwrap();
        assert_eq!(zm.min, Variant::Float(-1.0));
        assert_eq!(zm.max, Variant::Float(7.5));
        assert_eq!(zm.null_count, 1);
    }

    #[test]
    fn zone_map_pruning_decisions() {
        let zm = ZoneMap { min: Variant::Int(10), max: Variant::Int(20), null_count: 0 };
        assert!(zm.may_match("=", &Variant::Int(15)));
        assert!(!zm.may_match("=", &Variant::Int(25)));
        assert!(!zm.may_match("<", &Variant::Int(10)));
        assert!(zm.may_match("<", &Variant::Int(11)));
        assert!(!zm.may_match(">", &Variant::Int(20)));
        assert!(zm.may_match(">=", &Variant::Int(20)));
        assert!(!zm.may_match(">=", &Variant::Int(21)));
        assert!(zm.may_match("<>", &Variant::Int(15)));
        let point = ZoneMap { min: Variant::Int(5), max: Variant::Int(5), null_count: 0 };
        assert!(!point.may_match("<>", &Variant::Int(5)));
    }

    #[test]
    fn no_zone_map_for_variant_columns() {
        let mut c = ColumnData::empty(ColumnType::Variant);
        c.push(&Variant::Int(1));
        assert!(ZoneMap::build(&c).is_none());
    }

    #[test]
    fn all_null_column_gets_null_bounded_zone_map() {
        let mut c = ColumnData::empty(ColumnType::Int);
        c.push(&Variant::Null);
        c.push(&Variant::Null);
        let zm = ZoneMap::build(&c).unwrap();
        assert!(zm.min.is_null() && zm.max.is_null());
        assert_eq!(zm.null_count, 2);
        // No comparison can match an all-null partition...
        for cmp in ["=", "<", "<=", ">", ">=", "<>"] {
            assert!(!zm.may_match(cmp, &Variant::Int(0)), "{cmp} kept all-null");
        }
        // ...but IS NULL must keep it, and IS NOT NULL must prune it.
        assert!(zm.may_match("IS NULL", &Variant::Null));
        assert!(!zm.may_match("IS NOT NULL", &Variant::Null));
        // Empty columns still have no zone map.
        assert!(ZoneMap::build(&ColumnData::empty(ColumnType::Int)).is_none());
    }

    #[test]
    fn null_presence_pruning_uses_null_count() {
        let no_nulls = ZoneMap { min: Variant::Int(1), max: Variant::Int(9), null_count: 0 };
        assert!(!no_nulls.may_match("IS NULL", &Variant::Null));
        assert!(no_nulls.may_match("IS NOT NULL", &Variant::Null));
        let some_nulls = ZoneMap { min: Variant::Int(1), max: Variant::Int(9), null_count: 3 };
        assert!(some_nulls.may_match("IS NULL", &Variant::Null));
        assert!(some_nulls.may_match("IS NOT NULL", &Variant::Null));
    }

    #[test]
    fn zone_map_int_bounds_vs_float_literal_is_exact() {
        // 2^53 is where f64 loses integer precision: 2^53 and 2^53 + 1 cast
        // to the same double. The zone-map comparisons must distinguish them.
        let p53 = 1i64 << 53;
        let zm = ZoneMap {
            min: Variant::Int(p53 + 1),
            max: Variant::Int(p53 + 1),
            null_count: 0,
        };
        // A lossy `min as f64` comparison would call these equal and keep /
        // prune the partition wrongly.
        assert!(!zm.may_match("=", &Variant::Float(p53 as f64)));
        assert!(zm.may_match(">", &Variant::Float(p53 as f64)));
        assert!(!zm.may_match("<=", &Variant::Float(p53 as f64)));
        assert!(zm.may_match("<>", &Variant::Float(p53 as f64)));

        let zm_lo = ZoneMap {
            min: Variant::Int(-p53 - 1),
            max: Variant::Int(-p53 - 1),
            null_count: 0,
        };
        assert!(!zm_lo.may_match("=", &Variant::Float(-(p53 as f64))));
        assert!(zm_lo.may_match("<", &Variant::Float(-(p53 as f64))));
        assert!(!zm_lo.may_match(">=", &Variant::Float(-(p53 as f64))));

        // Above 2^63 every i64 sorts below the float.
        let zm_max = ZoneMap {
            min: Variant::Int(i64::MAX),
            max: Variant::Int(i64::MAX),
            null_count: 0,
        };
        assert!(zm_max.may_match("<", &Variant::Float(9.223372036854776e18)));
        assert!(!zm_max.may_match(">=", &Variant::Float(9.223372036854776e18)));
    }
}
