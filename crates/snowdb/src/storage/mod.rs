//! Micro-partitioned columnar storage.
//!
//! Models the storage properties of §II-B of the paper:
//! - tables are horizontally sharded into *micro-partitions* of bounded size;
//! - within a partition, data is stored per column;
//! - declared scalar columns are stored in typed vectors ("transparent
//!   columnarization / lowest common type"), `VARIANT` columns as parsed values;
//! - each partition keeps zone maps (min/max) per column, which the executor uses
//!   to prune partitions;
//! - every scan accounts the bytes of the columns it actually touches, which is
//!   the quantity reported in the paper's §V-E.

pub mod ingest;
pub mod morsel;
mod table;

pub use ingest::infer_schema;
pub use table::{ColumnDef, MicroPartition, Table, TableBuilder, DEFAULT_PARTITION_ROWS};

use std::cmp::Ordering;

use crate::variant::{cmp_variants, Variant};

/// Declared type of a table column.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColumnType {
    /// 64-bit integer (`NUMBER(38,0)` in the paper's staging).
    Int,
    /// 64-bit float (`DOUBLE`).
    Float,
    /// Boolean.
    Bool,
    /// UTF-8 string (`VARCHAR`).
    Str,
    /// Schema-less nested value (`VARIANT`).
    Variant,
}

impl ColumnType {
    /// Parses a SQL type name.
    pub fn parse(name: &str) -> Option<ColumnType> {
        match name.to_ascii_uppercase().as_str() {
            "INT" | "INTEGER" | "BIGINT" | "NUMBER" => Some(ColumnType::Int),
            "FLOAT" | "DOUBLE" | "REAL" => Some(ColumnType::Float),
            "BOOLEAN" | "BOOL" => Some(ColumnType::Bool),
            "VARCHAR" | "STRING" | "TEXT" | "CHAR" => Some(ColumnType::Str),
            "VARIANT" | "OBJECT" | "ARRAY" => Some(ColumnType::Variant),
            _ => None,
        }
    }
}

/// Columnar data for one column of one micro-partition.
///
/// Scalar-typed columns use dense typed vectors with a null mask folded into
/// `Option`; `VARIANT` columns store parsed values directly (no re-parse on scan,
/// which is exactly what separates this engine from the document-store baseline).
#[derive(Clone, Debug)]
pub enum ColumnData {
    Int(Vec<Option<i64>>),
    Float(Vec<Option<f64>>),
    Bool(Vec<Option<bool>>),
    Str(Vec<Option<std::sync::Arc<str>>>),
    Variant(Vec<Variant>),
}

impl ColumnData {
    /// Empty column of the given type.
    pub fn empty(ty: ColumnType) -> ColumnData {
        match ty {
            ColumnType::Int => ColumnData::Int(Vec::new()),
            ColumnType::Float => ColumnData::Float(Vec::new()),
            ColumnType::Bool => ColumnData::Bool(Vec::new()),
            ColumnType::Str => ColumnData::Str(Vec::new()),
            ColumnType::Variant => ColumnData::Variant(Vec::new()),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Bool(v) => v.len(),
            ColumnData::Str(v) => v.len(),
            ColumnData::Variant(v) => v.len(),
        }
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends a variant value, coercing it to the column's storage type.
    ///
    /// Type-mismatched values are stored as null; in the Snowflake model the load
    /// path would have rejected them, and the workloads only exercise the clean path.
    pub fn push(&mut self, v: &Variant) {
        match self {
            ColumnData::Int(col) => col.push(v.as_i64()),
            ColumnData::Float(col) => col.push(v.as_f64()),
            ColumnData::Bool(col) => col.push(v.as_bool()),
            ColumnData::Str(col) => col.push(match v {
                Variant::Str(s) => Some(s.clone()),
                _ => None,
            }),
            ColumnData::Variant(col) => col.push(v.clone()),
        }
    }

    /// Reads row `i` back as a variant.
    pub fn get(&self, i: usize) -> Variant {
        match self {
            ColumnData::Int(v) => v[i].map_or(Variant::Null, Variant::Int),
            ColumnData::Float(v) => v[i].map_or(Variant::Null, Variant::Float),
            ColumnData::Bool(v) => v[i].map_or(Variant::Null, Variant::Bool),
            ColumnData::Str(v) => v[i].clone().map_or(Variant::Null, Variant::Str),
            ColumnData::Variant(v) => v[i].clone(),
        }
    }

    /// Materializes the whole column as variants.
    pub fn to_variants(&self) -> Vec<Variant> {
        (0..self.len()).map(|i| self.get(i)).collect()
    }

    /// Estimated uncompressed byte size of the column, used for scan accounting
    /// and micro-partition sizing.
    pub fn estimated_size(&self) -> u64 {
        match self {
            ColumnData::Int(v) => v.len() as u64 * 8,
            ColumnData::Float(v) => v.len() as u64 * 8,
            ColumnData::Bool(v) => v.len() as u64,
            ColumnData::Str(v) => v
                .iter()
                .map(|s| s.as_ref().map_or(1, |s| s.len() as u64 + 2))
                .sum(),
            ColumnData::Variant(v) => v.iter().map(Variant::estimated_size).sum(),
        }
    }
}

/// Per-column min/max statistics for one micro-partition ("zone map").
///
/// Only kept for scalar-typed columns; `VARIANT` columns report `None` and are
/// never pruned on, matching the paper's note that pruning works on
/// micro-partition-level metadata for addressable columns.
#[derive(Clone, Debug)]
pub struct ZoneMap {
    pub min: Variant,
    pub max: Variant,
    pub null_count: usize,
}

impl ZoneMap {
    /// Builds the zone map for a column, or `None` for variant columns and
    /// all-null columns.
    pub fn build(col: &ColumnData) -> Option<ZoneMap> {
        if matches!(col, ColumnData::Variant(_)) {
            return None;
        }
        let mut min: Option<Variant> = None;
        let mut max: Option<Variant> = None;
        let mut null_count = 0usize;
        for i in 0..col.len() {
            let v = col.get(i);
            if v.is_null() {
                null_count += 1;
                continue;
            }
            match &min {
                Some(m) if cmp_variants(&v, m) == Ordering::Less => min = Some(v.clone()),
                None => min = Some(v.clone()),
                _ => {}
            }
            match &max {
                Some(m) if cmp_variants(&v, m) == Ordering::Greater => max = Some(v),
                None => max = Some(v),
                _ => {}
            }
        }
        Some(ZoneMap { min: min?, max: max?, null_count })
    }

    /// Can a value in `[min, max]` possibly satisfy `value <cmp> literal`?
    ///
    /// `cmp` is one of `=`, `<`, `<=`, `>`, `>=`, `<>`; returns `true` when the
    /// partition cannot be excluded.
    pub fn may_match(&self, cmp: &str, lit: &Variant) -> bool {
        use Ordering::*;
        let min_c = cmp_variants(&self.min, lit);
        let max_c = cmp_variants(&self.max, lit);
        match cmp {
            "=" => min_c != Greater && max_c != Less,
            "<" => min_c == Less,
            "<=" => min_c != Greater,
            ">" => max_c == Greater,
            ">=" => max_c != Less,
            "<>" => !(min_c == Equal && max_c == Equal),
            _ => true,
        }
    }
}

/// Accumulated scan statistics for one query execution.
#[derive(Clone, Copy, Debug, Default)]
pub struct ScanStats {
    /// Bytes of column data actually read (referenced columns of non-pruned
    /// partitions) — the §V-E metric.
    pub bytes_scanned: u64,
    /// Total partitions considered across all scans.
    pub partitions_total: u64,
    /// Partitions actually read after zone-map pruning.
    pub partitions_scanned: u64,
    /// Rows produced by scans.
    pub rows_scanned: u64,
}

impl ScanStats {
    /// Merges another stats record into this one.
    pub fn merge(&mut self, other: &ScanStats) {
        self.bytes_scanned += other.bytes_scanned;
        self.partitions_total += other.partitions_total;
        self.partitions_scanned += other.partitions_scanned;
        self.rows_scanned += other.rows_scanned;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_roundtrip_typed() {
        let mut c = ColumnData::empty(ColumnType::Int);
        c.push(&Variant::Int(5));
        c.push(&Variant::Null);
        c.push(&Variant::Float(7.0));
        assert_eq!(c.get(0), Variant::Int(5));
        assert!(c.get(1).is_null());
        assert_eq!(c.get(2), Variant::Int(7));
    }

    #[test]
    fn column_type_mismatch_stores_null() {
        let mut c = ColumnData::empty(ColumnType::Int);
        c.push(&Variant::str("oops"));
        assert!(c.get(0).is_null());
    }

    #[test]
    fn zone_map_bounds() {
        let mut c = ColumnData::empty(ColumnType::Float);
        for v in [3.0, -1.0, 7.5] {
            c.push(&Variant::Float(v));
        }
        c.push(&Variant::Null);
        let zm = ZoneMap::build(&c).unwrap();
        assert_eq!(zm.min, Variant::Float(-1.0));
        assert_eq!(zm.max, Variant::Float(7.5));
        assert_eq!(zm.null_count, 1);
    }

    #[test]
    fn zone_map_pruning_decisions() {
        let zm = ZoneMap { min: Variant::Int(10), max: Variant::Int(20), null_count: 0 };
        assert!(zm.may_match("=", &Variant::Int(15)));
        assert!(!zm.may_match("=", &Variant::Int(25)));
        assert!(!zm.may_match("<", &Variant::Int(10)));
        assert!(zm.may_match("<", &Variant::Int(11)));
        assert!(!zm.may_match(">", &Variant::Int(20)));
        assert!(zm.may_match(">=", &Variant::Int(20)));
        assert!(!zm.may_match(">=", &Variant::Int(21)));
        assert!(zm.may_match("<>", &Variant::Int(15)));
        let point = ZoneMap { min: Variant::Int(5), max: Variant::Int(5), null_count: 0 };
        assert!(!point.may_match("<>", &Variant::Int(5)));
    }

    #[test]
    fn no_zone_map_for_variant_columns() {
        let mut c = ColumnData::empty(ColumnType::Variant);
        c.push(&Variant::Int(1));
        assert!(ZoneMap::build(&c).is_none());
    }
}
