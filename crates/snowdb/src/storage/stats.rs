//! Per-column statistics for cost-based optimization.
//!
//! Zone maps answer "can this partition contain a match?"; the statistics
//! here answer "*how many* rows will match?". Each sealed micro-partition
//! computes, per column:
//!
//! - a **KMV (k-minimum-values) NDV sketch** — the `k` smallest 64-bit hashes
//!   of the distinct values. Below `k` distinct values the count is exact;
//!   above, `ndv ≈ (k-1) · 2⁶⁴ / h_k` where `h_k` is the k-th smallest hash.
//!   Sketches merge by unioning hash sets and re-truncating, so per-table
//!   aggregation over partitions is lossless with respect to the sketch;
//! - the **null count** (null fraction = nulls / rows);
//! - a small **equi-depth histogram**: values sampled at even quantiles of
//!   the sorted non-null column, used for range-predicate selectivity;
//! - **array cardinality** counters (cells holding arrays and their total
//!   element count) for `VARIANT` columns, which cost FLATTEN fan-out.
//!
//! Everything here is metadata: statistics persist in the partition-file
//! footer (format v3) next to the zone maps and aggregate lazily per table,
//! so the optimizer never touches column data to cost a plan.

use std::cmp::Ordering;
use std::sync::Arc;

use super::{ColumnData, ScanSource};
use crate::variant::{cmp_variants, Variant};

/// Sketch size: distinct counts up to `KMV_K` are exact; beyond, the estimate
/// has a relative standard error of about `1/√(k-2)` (~13% at 64).
pub const KMV_K: usize = 64;

/// Number of histogram bounds kept per column (16 equi-depth buckets).
pub const HISTOGRAM_BOUNDS: usize = 17;

/// Deterministic 64-bit hash of a variant under the engine's value-equality:
/// values that compare [`Ordering::Equal`] under [`cmp_variants`] hash alike
/// (an integral float hashes as its integer, `-0.0` as `0.0`, every NaN the
/// same). FNV-1a over a canonical byte encoding — stable across runs,
/// platforms, and toolchains, so persisted sketches stay comparable.
pub fn hash_variant(v: &Variant) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    mix_variant(v, &mut h);
    h
}

fn mix_bytes(bytes: &[u8], h: &mut u64) {
    for &b in bytes {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

fn mix_variant(v: &Variant, h: &mut u64) {
    match v {
        Variant::Null => mix_bytes(&[0], h),
        Variant::Bool(b) => mix_bytes(&[1, u8::from(*b)], h),
        Variant::Int(i) => {
            mix_bytes(&[2], h);
            mix_bytes(&i.to_le_bytes(), h);
        }
        Variant::Float(f) => {
            // Canonicalize to the integer form when the value is exactly an
            // i64 (cmp_variants treats Int(5) == Float(5.0)); -0.0 folds into
            // 0; NaNs all hash as one value (NaN == NaN in this engine).
            if f.is_nan() {
                mix_bytes(&[3, 0xff], h);
            } else if f.fract() == 0.0
                && *f >= -9_223_372_036_854_775_808.0
                && *f < 9_223_372_036_854_775_808.0
            {
                mix_bytes(&[2], h);
                mix_bytes(&(*f as i64).to_le_bytes(), h);
            } else {
                mix_bytes(&[3], h);
                mix_bytes(&f.to_bits().to_le_bytes(), h);
            }
        }
        Variant::Str(s) => {
            mix_bytes(&[4], h);
            mix_bytes(s.as_bytes(), h);
        }
        Variant::Array(items) => {
            mix_bytes(&[5], h);
            mix_bytes(&(items.len() as u64).to_le_bytes(), h);
            for it in items.iter() {
                mix_variant(it, h);
            }
        }
        Variant::Object(o) => {
            mix_bytes(&[6], h);
            for (k, val) in o.iter() {
                mix_bytes(k.as_bytes(), h);
                mix_variant(val, h);
            }
        }
    }
}

/// K-minimum-values distinct-count sketch: the `k` smallest distinct hashes
/// seen, sorted ascending.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct KmvSketch {
    hashes: Vec<u64>,
}

impl KmvSketch {
    pub fn new() -> KmvSketch {
        KmvSketch { hashes: Vec::new() }
    }

    /// Rebuilds a sketch from persisted hashes (the format decoder). Input
    /// is re-sorted/deduped/truncated so a corrupt file cannot break the
    /// sketch invariant.
    pub fn from_hashes(mut hashes: Vec<u64>) -> KmvSketch {
        hashes.sort_unstable();
        hashes.dedup();
        hashes.truncate(KMV_K);
        KmvSketch { hashes }
    }

    /// The retained hashes, sorted ascending (for persistence).
    pub fn hashes(&self) -> &[u64] {
        &self.hashes
    }

    /// Observes one value's hash.
    pub fn insert_hash(&mut self, h: u64) {
        match self.hashes.binary_search(&h) {
            Ok(_) => {}
            Err(pos) => {
                if pos < KMV_K {
                    self.hashes.insert(pos, h);
                    self.hashes.truncate(KMV_K);
                }
            }
        }
    }

    /// Observes one value.
    pub fn insert(&mut self, v: &Variant) {
        self.insert_hash(hash_variant(v));
    }

    /// Unions another sketch into this one.
    pub fn merge(&mut self, other: &KmvSketch) {
        for &h in &other.hashes {
            self.insert_hash(h);
        }
    }

    /// Estimated number of distinct values observed. Exact below `KMV_K`.
    pub fn estimate(&self) -> f64 {
        if self.hashes.len() < KMV_K {
            self.hashes.len() as f64
        } else {
            let kth = self.hashes[KMV_K - 1];
            // (k-1) / (kth / 2^64): the k-th smallest of n uniform hashes
            // sits near k/n of the hash space.
            ((KMV_K - 1) as f64) * (u64::MAX as f64) / (kth as f64).max(1.0)
        }
    }
}

/// Statistics for one column of one micro-partition, or (after
/// [`ColumnStats::merge`]) an aggregate over many partitions.
#[derive(Clone, Debug, PartialEq)]
pub struct ColumnStats {
    /// Rows covered by this record.
    pub rows: u64,
    /// NULL cells among them.
    pub nulls: u64,
    /// Distinct-value sketch over non-null values.
    pub ndv: KmvSketch,
    /// Equi-depth histogram bounds, ascending under [`cmp_variants`]; empty
    /// when the column had no non-null values.
    pub histogram: Vec<Variant>,
    /// Cells holding arrays (FLATTEN inputs).
    pub array_cells: u64,
    /// Total elements across those arrays.
    pub array_elems: u64,
}

impl ColumnStats {
    /// Computes statistics for a sealed column. One sort of the non-null
    /// values per column per partition — seal-time work, never query-time.
    pub fn build(col: &ColumnData) -> ColumnStats {
        let rows = col.len() as u64;
        let mut nulls = 0u64;
        let mut ndv = KmvSketch::new();
        let mut array_cells = 0u64;
        let mut array_elems = 0u64;
        let mut values: Vec<Variant> = Vec::new();
        for i in 0..col.len() {
            let v = col.get(i);
            if v.is_null() {
                nulls += 1;
                continue;
            }
            if let Variant::Array(items) = &v {
                array_cells += 1;
                array_elems += items.len() as u64;
            }
            ndv.insert(&v);
            values.push(v);
        }
        values.sort_by(cmp_variants);
        let histogram = sample_bounds(&values);
        ColumnStats { rows, nulls, ndv, histogram, array_cells, array_elems }
    }

    /// Folds another partition's statistics into this aggregate. Histograms
    /// merge approximately: the pooled bounds are re-sampled back down to
    /// [`HISTOGRAM_BOUNDS`].
    pub fn merge(&mut self, other: &ColumnStats) {
        self.rows += other.rows;
        self.nulls += other.nulls;
        self.ndv.merge(&other.ndv);
        self.array_cells += other.array_cells;
        self.array_elems += other.array_elems;
        if !other.histogram.is_empty() {
            let mut pooled = std::mem::take(&mut self.histogram);
            pooled.extend(other.histogram.iter().cloned());
            pooled.sort_by(cmp_variants);
            self.histogram = sample_bounds(&pooled);
        }
    }

    /// Fraction of rows that are NULL.
    pub fn null_fraction(&self) -> f64 {
        if self.rows == 0 {
            0.0
        } else {
            self.nulls as f64 / self.rows as f64
        }
    }

    /// Estimated distinct non-null values.
    pub fn distinct(&self) -> f64 {
        self.ndv.estimate().max(1.0)
    }

    /// Expected FLATTEN output rows per input row for this column: total
    /// array elements over total rows. `None` when no cell held an array.
    pub fn avg_flatten_fanout(&self) -> Option<f64> {
        if self.array_cells == 0 || self.rows == 0 {
            None
        } else {
            Some(self.array_elems as f64 / self.rows as f64)
        }
    }

    /// Fraction of histogram bounds strictly below `lit` — the equi-depth
    /// estimate of `P(value < lit)` among non-null rows.
    fn frac_below(&self, lit: &Variant, inclusive: bool) -> f64 {
        if self.histogram.is_empty() {
            return 0.5;
        }
        let n = self.histogram.len() as f64;
        let hits = self
            .histogram
            .iter()
            .filter(|b| {
                let c = cmp_variants(b, lit);
                c == Ordering::Less || (inclusive && c == Ordering::Equal)
            })
            .count() as f64;
        hits / n
    }

    /// Estimated selectivity of `value <cmp> lit` over this column's rows
    /// (NULL rows never satisfy a comparison). `cmp` uses the same strings as
    /// [`ZoneMap::may_match`](super::ZoneMap::may_match), plus
    /// `IS NULL` / `IS NOT NULL`.
    pub fn selectivity(&self, cmp: &str, lit: &Variant) -> f64 {
        let non_null = 1.0 - self.null_fraction();
        let sel = match cmp {
            "IS NULL" => return self.null_fraction().clamp(0.0, 1.0),
            "IS NOT NULL" => return non_null.clamp(0.0, 1.0),
            "=" => non_null / self.distinct(),
            "<>" => non_null * (1.0 - 1.0 / self.distinct()),
            "<" => non_null * self.frac_below(lit, false),
            "<=" => non_null * self.frac_below(lit, true),
            ">" => non_null * (1.0 - self.frac_below(lit, true)),
            ">=" => non_null * (1.0 - self.frac_below(lit, false)),
            _ => 0.25,
        };
        sel.clamp(0.0, 1.0)
    }
}

/// Samples up to [`HISTOGRAM_BOUNDS`] values at even quantiles of a sorted
/// slice (first and last always included).
fn sample_bounds(sorted: &[Variant]) -> Vec<Variant> {
    if sorted.is_empty() {
        return Vec::new();
    }
    let n = sorted.len();
    let b = HISTOGRAM_BOUNDS.min(n);
    (0..b)
        .map(|j| sorted[j * (n - 1) / (b - 1).max(1)].clone())
        .collect()
}

/// Lazily-aggregated statistics for a whole table: the per-partition records
/// merged column-wise. A column aggregates only when **every** partition
/// carries statistics for it (files written before format v3 do not); absent
/// entries make the estimator fall back to heuristics.
#[derive(Clone, Debug)]
pub struct TableStats {
    /// Total table rows.
    pub rows: u64,
    /// Aggregated per-column statistics, indexed like the schema.
    pub columns: Vec<Option<Arc<ColumnStats>>>,
}

impl TableStats {
    /// Aggregates partition-level statistics; metadata-only (footers for disk
    /// partitions, sealed stats for memory partitions).
    pub fn aggregate(arity: usize, partitions: &[Arc<ScanSource>]) -> TableStats {
        let rows = partitions.iter().map(|p| p.row_count() as u64).sum();
        let mut columns = Vec::with_capacity(arity);
        for i in 0..arity {
            let mut acc: Option<ColumnStats> = None;
            let mut complete = true;
            for p in partitions {
                match (p.column_stats(i), &mut acc) {
                    (Some(s), Some(a)) => a.merge(s),
                    (Some(s), None) => acc = Some(s.clone()),
                    (None, _) => {
                        complete = false;
                        break;
                    }
                }
            }
            columns.push(if complete { acc.map(Arc::new) } else { None });
        }
        TableStats { rows, columns }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::ColumnType;

    fn int_column(vals: impl IntoIterator<Item = i64>) -> ColumnData {
        let mut c = ColumnData::empty(ColumnType::Int);
        for v in vals {
            c.push(&Variant::Int(v));
        }
        c
    }

    #[test]
    fn kmv_exact_below_k() {
        let mut s = KmvSketch::new();
        for i in 0..40i64 {
            s.insert(&Variant::Int(i % 20));
        }
        assert_eq!(s.estimate(), 20.0);
    }

    #[test]
    fn kmv_estimates_large_cardinalities() {
        let mut s = KmvSketch::new();
        for i in 0..50_000i64 {
            s.insert(&Variant::Int(i));
        }
        let est = s.estimate();
        assert!(
            (est - 50_000.0).abs() / 50_000.0 < 0.35,
            "estimate {est} too far from 50000"
        );
    }

    #[test]
    fn kmv_merge_equals_union() {
        let mut a = KmvSketch::new();
        let mut b = KmvSketch::new();
        let mut whole = KmvSketch::new();
        for i in 0..1000i64 {
            let v = Variant::Int(i);
            if i % 2 == 0 {
                a.insert(&v);
            } else {
                b.insert(&v);
            }
            whole.insert(&v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn hash_respects_value_equality() {
        assert_eq!(hash_variant(&Variant::Int(5)), hash_variant(&Variant::Float(5.0)));
        assert_eq!(hash_variant(&Variant::Float(0.0)), hash_variant(&Variant::Float(-0.0)));
        assert_eq!(
            hash_variant(&Variant::Float(f64::NAN)),
            hash_variant(&Variant::Float(-f64::NAN))
        );
        // 2^53 + 1 is not representable as f64: must hash unlike Float(2^53).
        let p53 = 1i64 << 53;
        assert_ne!(
            hash_variant(&Variant::Int(p53 + 1)),
            hash_variant(&Variant::Float(p53 as f64))
        );
        assert_eq!(
            hash_variant(&Variant::Int(p53)),
            hash_variant(&Variant::Float(p53 as f64))
        );
    }

    #[test]
    fn column_stats_counts_and_histogram() {
        let mut c = int_column(0..100);
        c.push(&Variant::Null);
        c.push(&Variant::Null);
        let s = ColumnStats::build(&c);
        assert_eq!(s.rows, 102);
        assert_eq!(s.nulls, 2);
        // 100 distinct values exceeds KMV_K, so the count is estimated.
        let ndv = s.distinct();
        assert!((ndv - 100.0).abs() / 100.0 < 0.4, "ndv estimate {ndv}");
        assert_eq!(s.histogram.len(), HISTOGRAM_BOUNDS);
        assert_eq!(s.histogram[0], Variant::Int(0));
        assert_eq!(s.histogram[HISTOGRAM_BOUNDS - 1], Variant::Int(99));
        // Range selectivity is roughly the quantile.
        let sel = s.selectivity("<", &Variant::Int(50));
        assert!((0.3..0.7).contains(&sel), "{sel}");
        // Equality: 1/ndv scaled by non-null fraction.
        let eq = s.selectivity("=", &Variant::Int(7));
        assert!((eq - (100.0 / 102.0) / ndv).abs() < 1e-12, "{eq}");
        assert!((s.selectivity("IS NULL", &Variant::Null) - 2.0 / 102.0).abs() < 1e-12);
    }

    #[test]
    fn merge_tracks_concatenation() {
        let a = ColumnStats::build(&int_column(0..500));
        let b = ColumnStats::build(&int_column(500..1000));
        let mut m = a.clone();
        m.merge(&b);
        let whole = ColumnStats::build(&int_column(0..1000));
        assert_eq!(m.rows, whole.rows);
        assert_eq!(m.ndv, whole.ndv);
        // Merged histogram still spans the full domain.
        assert_eq!(m.histogram.first(), Some(&Variant::Int(0)));
        assert_eq!(m.histogram.last(), Some(&Variant::Int(999)));
    }

    #[test]
    fn array_fanout_tracked_for_variant_columns() {
        let mut c = ColumnData::empty(ColumnType::Variant);
        c.push(&Variant::array(vec![Variant::Int(1), Variant::Int(2)]));
        c.push(&Variant::array(vec![Variant::Int(3)]));
        c.push(&Variant::array(Vec::new()));
        c.push(&Variant::Int(9)); // non-array cell
        let s = ColumnStats::build(&c);
        assert_eq!(s.array_cells, 3);
        assert_eq!(s.array_elems, 3);
        assert_eq!(s.avg_flatten_fanout(), Some(3.0 / 4.0));
    }
}
