//! Schema-less ingestion: newline-delimited JSON → tables.
//!
//! Implements the paper's "in-situ processing without manual schema definition
//! or data loading" staging path (§I): each document becomes a row, the column
//! set is inferred from the data, and nested values land in `VARIANT` columns.
//!
//! Ingest is *streaming* with bounded memory: a first pass over the input
//! infers the schema one document at a time (keeping only per-column type
//! state), and a second pass parses again and pushes rows into a
//! [`TableBuilder`](super::TableBuilder) that seals — and, for a persistent
//! database, flushes to disk — each micro-partition as soon as it fills.
//! Peak memory is one open partition plus one parsed document, independent of
//! input size, and every sealed partition is charged against the session's
//! `STATEMENT_MEMORY_LIMIT` as it goes.

use std::io::BufRead;
use std::sync::Arc;

use super::{ColumnDef, ColumnType, DEFAULT_PARTITION_ROWS};
use crate::catalog::{TableWrite, WriteSet};
use crate::error::{Result, SnowError};
use crate::govern::retry::{self, RetryPolicy};
use crate::govern::QueryGovernor;
use crate::variant::{parse_json, Variant};
use crate::Database;

/// How a column's type is inferred across documents.
fn unify(a: ColumnType, b: ColumnType) -> ColumnType {
    use ColumnType::*;
    match (a, b) {
        (x, y) if x == y => x,
        // Numeric widening mirrors VARIANT's "lowest common type" (§II-B).
        (Int, Float) | (Float, Int) => Float,
        _ => Variant,
    }
}

fn type_of(v: &Variant) -> Option<ColumnType> {
    match v {
        Variant::Null => None,
        Variant::Int(_) => Some(ColumnType::Int),
        Variant::Float(_) => Some(ColumnType::Float),
        Variant::Bool(_) => Some(ColumnType::Bool),
        Variant::Str(_) => Some(ColumnType::Str),
        Variant::Array(_) | Variant::Object(_) => Some(ColumnType::Variant),
    }
}

/// Incremental schema inference: one column per top-level key (in first-seen
/// order), scalar types widened across documents, structures as `VARIANT`.
/// Holds only per-column type state — O(columns), not O(documents).
#[derive(Default)]
pub struct SchemaInferer {
    order: Vec<String>,
    types: std::collections::HashMap<String, Option<ColumnType>>,
    docs: usize,
}

impl SchemaInferer {
    pub fn new() -> SchemaInferer {
        SchemaInferer::default()
    }

    /// Folds one document into the running schema.
    pub fn observe(&mut self, doc: &Variant) -> Result<()> {
        let obj = doc.as_object().ok_or_else(|| {
            SnowError::Catalog("ingestion expects one JSON object per line".into())
        })?;
        for (k, v) in obj.iter() {
            let key = k.to_uppercase();
            let entry = match self.types.get_mut(&key) {
                Some(e) => e,
                None => {
                    self.order.push(key.clone());
                    self.types.entry(key.clone()).or_insert(None)
                }
            };
            *entry = match (*entry, type_of(v)) {
                (None, t) => t,
                (t, None) => t,
                (Some(a), Some(b)) => Some(unify(a, b)),
            };
        }
        self.docs += 1;
        Ok(())
    }

    /// Number of documents observed so far.
    pub fn docs(&self) -> usize {
        self.docs
    }

    /// The inferred schema; all-null columns default to `VARIANT`.
    pub fn finish(&self) -> Result<Vec<ColumnDef>> {
        if self.order.is_empty() {
            return Err(SnowError::Catalog("cannot infer a schema from zero documents".into()));
        }
        Ok(self
            .order
            .iter()
            .map(|name| {
                let ty = self.types[name].unwrap_or(ColumnType::Variant);
                ColumnDef::new(name.clone(), ty)
            })
            .collect())
    }
}

/// Infers a schema from already-parsed documents (the non-streaming
/// convenience wrapper over [`SchemaInferer`]).
pub fn infer_schema(docs: &[Variant]) -> Result<Vec<ColumnDef>> {
    let mut inf = SchemaInferer::new();
    for d in docs {
        inf.observe(d)?;
    }
    inf.finish()
}

/// Extracts one row from a document, matching schema names back to document
/// keys case-insensitively; missing keys load as NULL.
fn row_from_doc(doc: &Variant, names: &[String]) -> Vec<Variant> {
    names
        .iter()
        .map(|name| {
            doc.as_object()
                .and_then(|o| {
                    o.iter()
                        .find(|(k, _)| k.eq_ignore_ascii_case(name))
                        .map(|(_, v)| v.clone())
                })
                .unwrap_or(Variant::Null)
        })
        .collect()
}

impl Database {
    /// Loads newline-delimited JSON text into a table, inferring the schema.
    /// Returns the number of rows loaded. Keys missing from a document load
    /// as NULL; unknown keys seen later widen the schema.
    pub fn load_jsonl(&self, table: &str, text: &str) -> Result<usize> {
        self.load_jsonl_lines(table, || Ok(text.lines().map(|l| Ok(l.to_string()))))
    }

    /// Streaming variant of [`Database::load_jsonl`] reading from a file:
    /// the file is scanned twice through a buffered reader (schema pass, then
    /// load pass) and never held in memory as a whole.
    pub fn load_jsonl_path(&self, table: &str, path: impl AsRef<std::path::Path>) -> Result<usize> {
        let path = path.as_ref();
        self.load_jsonl_lines(table, || {
            let f = std::fs::File::open(path)
                .map_err(|e| SnowError::Storage(format!("{}: open: {e}", path.display())))?;
            Ok(std::io::BufReader::new(f).lines().map(|r| {
                r.map_err(|e| SnowError::Storage(format!("read line: {e}")))
            }))
        })
    }

    /// Two-pass streaming core: `mk_lines` opens a fresh pass over the input.
    fn load_jsonl_lines<F, I>(&self, table: &str, mk_lines: F) -> Result<usize>
    where
        F: Fn() -> Result<I>,
        I: Iterator<Item = Result<String>>,
    {
        // Pass 1: incremental schema inference; documents are parsed and
        // immediately discarded.
        let mut inf = SchemaInferer::new();
        for line in mk_lines()? {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            inf.observe(&parse_json(&line)?)?;
        }
        let n = inf.docs();
        let schema = inf.finish()?;
        let names: Vec<String> = schema.iter().map(|c| c.name.clone()).collect();

        // Pass 2: re-parse and stream rows into the (possibly disk-flushing)
        // table builder; partitions seal and flush incrementally.
        let rows = mk_lines()?.filter_map(move |line| match line {
            Ok(l) if l.trim().is_empty() => None,
            Ok(l) => Some(parse_json(&l).map(|doc| row_from_doc(&doc, &names))),
            Err(e) => Some(Err(e)),
        });
        self.load_table_stream(table, schema, rows, DEFAULT_PARTITION_ROWS)?;
        Ok(n)
    }
}

/// What a finished [`StreamIngestor`] did: rows landed and commits made.
#[derive(Clone, Copy, Debug, Default)]
pub struct IngestReport {
    pub rows: usize,
    pub commits: usize,
}

/// Streaming micro-commit ingest into an *existing* table: JSONL documents
/// buffer up to `rows_per_commit` rows, then each batch commits as one
/// optimistic [`TableWrite::Append`] (retried under seeded backoff on lost
/// races — appends merge with concurrent appends and with compactor
/// rewrites, so retries converge). Readers see batch boundaries only: every
/// committed version is a consistent prefix of the stream.
///
/// Unlike [`Database::load_jsonl`] (which *replaces* the table and infers a
/// schema), the ingestor appends against the table's fixed schema: a
/// document key not in the schema is a typed catalog error, a missing key
/// loads as NULL.
pub struct StreamIngestor<'a> {
    db: &'a Database,
    /// Upper-cased table name.
    table: String,
    schema: Vec<ColumnDef>,
    names: Vec<String>,
    buf: Vec<Vec<Variant>>,
    rows_per_commit: usize,
    report: IngestReport,
}

impl Database {
    /// Opens a streaming micro-commit ingest channel into existing table
    /// `table`, committing every `rows_per_commit` buffered rows (clamped
    /// ≥ 1). See [`StreamIngestor`].
    pub fn stream_ingest(&self, table: &str, rows_per_commit: usize) -> Result<StreamIngestor<'_>> {
        let upper = table.to_ascii_uppercase();
        let t = self.table(&upper).ok_or_else(|| {
            SnowError::Catalog(format!(
                "table '{table}' does not exist (streaming ingest appends; create it first)"
            ))
        })?;
        let schema = t.schema().to_vec();
        let names = schema.iter().map(|c| c.name.clone()).collect();
        Ok(StreamIngestor {
            db: self,
            table: upper,
            schema,
            names,
            buf: Vec::new(),
            rows_per_commit: rows_per_commit.max(1),
            report: IngestReport::default(),
        })
    }

    /// One-shot convenience over [`Database::stream_ingest`]: appends every
    /// line of `text` in `rows_per_commit`-sized micro-commits.
    pub fn append_jsonl(&self, table: &str, text: &str, rows_per_commit: usize) -> Result<IngestReport> {
        let mut ing = self.stream_ingest(table, rows_per_commit)?;
        for line in text.lines() {
            ing.push_json(line)?;
        }
        ing.finish()
    }
}

impl StreamIngestor<'_> {
    /// Parses one JSONL document and buffers its row, committing a batch when
    /// the buffer fills. Blank lines are skipped; a key outside the table's
    /// schema is a typed catalog error (nothing from the current buffer is
    /// lost — the line can be corrected and re-pushed).
    pub fn push_json(&mut self, line: &str) -> Result<()> {
        if line.trim().is_empty() {
            return Ok(());
        }
        let doc = parse_json(line)?;
        let obj = doc.as_object().ok_or_else(|| {
            SnowError::Catalog("ingestion expects one JSON object per line".into())
        })?;
        for (k, _) in obj.iter() {
            if !self.names.iter().any(|n| n.eq_ignore_ascii_case(k)) {
                return Err(SnowError::Catalog(format!(
                    "unknown key '{k}' for table '{}' (columns: {})",
                    self.table,
                    self.names.join(", ")
                )));
            }
        }
        self.buf.push(row_from_doc(&doc, &self.names));
        if self.buf.len() >= self.rows_per_commit {
            self.commit_batch()?;
        }
        Ok(())
    }

    /// Rows committed so far (excludes the open buffer).
    pub fn committed_rows(&self) -> usize {
        self.report.rows
    }

    /// Commits the buffered batch as one `Append`, retrying lost commit
    /// races against a fresh snapshot. The partitions are rebuilt per
    /// attempt; a failed attempt's files are invisible debris.
    fn commit_batch(&mut self) -> Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let rows = std::mem::take(&mut self.buf);
        let gov = Arc::new(QueryGovernor::from_params(&self.db.session_params()));
        let policy = RetryPolicy::commit_default(self.db.next_commit_seed());
        retry::run(&policy, |_| {
            let base = self.db.snapshot();
            if base.table(&self.table).is_none() {
                return Err(SnowError::Catalog(format!(
                    "table '{}' was dropped mid-ingest",
                    self.table
                )));
            }
            let parts = self.db.build_partitions(
                &self.table,
                &self.schema,
                &rows,
                self.rows_per_commit,
                &gov,
            )?;
            self.db.commit_writes(
                base.version(),
                WriteSet::single(&self.table, TableWrite::Append {
                    parts,
                    schema: self.schema.clone(),
                }),
            )?;
            Ok(())
        })?;
        self.report.rows += rows.len();
        self.report.commits += 1;
        Ok(())
    }

    /// Flushes any partial batch and returns the totals.
    pub fn finish(mut self) -> Result<IngestReport> {
        self.commit_batch()?;
        Ok(self.report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infers_scalar_types_and_order() {
        let docs = vec![
            parse_json(r#"{"a": 1, "b": "x", "c": true}"#).unwrap(),
            parse_json(r#"{"a": 2.5, "b": "y", "c": false}"#).unwrap(),
        ];
        let schema = infer_schema(&docs).unwrap();
        assert_eq!(schema.len(), 3);
        assert_eq!(schema[0], ColumnDef::new("A", ColumnType::Float)); // widened
        assert_eq!(schema[1].ty, ColumnType::Str);
        assert_eq!(schema[2].ty, ColumnType::Bool);
    }

    #[test]
    fn conflicting_types_become_variant() {
        let docs = vec![
            parse_json(r#"{"a": 1}"#).unwrap(),
            parse_json(r#"{"a": "one"}"#).unwrap(),
        ];
        let schema = infer_schema(&docs).unwrap();
        assert_eq!(schema[0].ty, ColumnType::Variant);
    }

    #[test]
    fn missing_keys_load_as_null_and_widen() {
        let db = Database::new();
        let n = db
            .load_jsonl(
                "t",
                r#"{"a": 1}
                   {"a": 2, "extra": [1, 2]}"#,
            )
            .unwrap();
        assert_eq!(n, 2);
        let r = db.query("SELECT a, extra FROM t ORDER BY a").unwrap();
        assert_eq!(r.rows[0][0], Variant::Int(1));
        assert!(r.rows[0][1].is_null());
        assert_eq!(r.rows[1][1], Variant::array(vec![Variant::Int(1), Variant::Int(2)]));
    }

    #[test]
    fn nested_values_stay_queryable() {
        let db = Database::new();
        db.load_jsonl("t", r#"{"id": 1, "tags": [{"N": "x"}, {"N": "y"}]}"#).unwrap();
        let r = db
            .query("SELECT f.value:N FROM t, LATERAL FLATTEN(INPUT => tags) f ORDER BY 1")
            .unwrap();
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0][0], Variant::str("x"));
    }

    #[test]
    fn rejects_non_objects_and_empty_input() {
        let db = Database::new();
        assert!(db.load_jsonl("t", "[1, 2]").is_err());
        assert!(db.load_jsonl("t", "").is_err());
        assert!(db.load_jsonl("t", "not json").is_err());
    }

    #[test]
    fn load_jsonl_path_streams_from_a_file() {
        let path = std::env::temp_dir().join(format!("snowdb-ingest-{}.jsonl", std::process::id()));
        let mut text = String::new();
        for i in 0..100 {
            text.push_str(&format!("{{\"id\": {i}, \"sq\": {}}}\n", i * i));
        }
        std::fs::write(&path, &text).unwrap();
        let db = Database::new();
        let n = db.load_jsonl_path("t", &path).unwrap();
        assert_eq!(n, 100);
        let r = db.query("SELECT SUM(sq) FROM t").unwrap();
        assert_eq!(r.rows[0][0], Variant::Int((0..100).map(|i| i * i).sum()));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn ingest_charges_the_session_memory_budget() {
        let db = Database::new();
        db.execute("SET STATEMENT_MEMORY_LIMIT = 512").unwrap();
        let mut text = String::new();
        for i in 0..2000 {
            text.push_str(&format!("{{\"id\": {i}, \"pad\": \"xxxxxxxxxxxxxxxx\"}}\n"));
        }
        let err = db.load_jsonl("t", &text).unwrap_err();
        assert!(matches!(err, SnowError::ResourceExhausted(_)), "{err}");
        db.execute("UNSET STATEMENT_MEMORY_LIMIT").unwrap();
        assert!(db.load_jsonl("t", &text).is_ok());
    }
}
