//! Schema-less ingestion: newline-delimited JSON → tables.
//!
//! Implements the paper's "in-situ processing without manual schema definition
//! or data loading" staging path (§I): each document becomes a row, the column
//! set is inferred from the data, and nested values land in `VARIANT` columns.

use super::{ColumnDef, ColumnType};
use crate::error::{Result, SnowError};
use crate::variant::{parse_json, Variant};
use crate::Database;

/// How a column's type is inferred across documents.
fn unify(a: ColumnType, b: ColumnType) -> ColumnType {
    use ColumnType::*;
    match (a, b) {
        (x, y) if x == y => x,
        // Numeric widening mirrors VARIANT's "lowest common type" (§II-B).
        (Int, Float) | (Float, Int) => Float,
        _ => Variant,
    }
}

fn type_of(v: &Variant) -> Option<ColumnType> {
    match v {
        Variant::Null => None,
        Variant::Int(_) => Some(ColumnType::Int),
        Variant::Float(_) => Some(ColumnType::Float),
        Variant::Bool(_) => Some(ColumnType::Bool),
        Variant::Str(_) => Some(ColumnType::Str),
        Variant::Array(_) | Variant::Object(_) => Some(ColumnType::Variant),
    }
}

/// Infers a schema from parsed documents: one column per top-level key (in
/// first-seen order), scalar types widened across documents, structures as
/// `VARIANT`. All-null columns default to `VARIANT`.
pub fn infer_schema(docs: &[Variant]) -> Result<Vec<ColumnDef>> {
    let mut order: Vec<String> = Vec::new();
    let mut types: std::collections::HashMap<String, Option<ColumnType>> = Default::default();
    for d in docs {
        let obj = d.as_object().ok_or_else(|| {
            SnowError::Catalog("ingestion expects one JSON object per line".into())
        })?;
        for (k, v) in obj.iter() {
            let key = k.to_uppercase();
            let entry = match types.get_mut(&key) {
                Some(e) => e,
                None => {
                    order.push(key.clone());
                    types.entry(key.clone()).or_insert(None)
                }
            };
            *entry = match (*entry, type_of(v)) {
                (None, t) => t,
                (t, None) => t,
                (Some(a), Some(b)) => Some(unify(a, b)),
            };
        }
    }
    if order.is_empty() {
        return Err(SnowError::Catalog("cannot infer a schema from zero documents".into()));
    }
    Ok(order
        .into_iter()
        .map(|name| {
            let ty = types[&name].unwrap_or(ColumnType::Variant);
            ColumnDef::new(name, ty)
        })
        .collect())
}

impl Database {
    /// Loads newline-delimited JSON text into a table, inferring the schema.
    /// Returns the number of rows loaded. Keys missing from a document load
    /// as NULL; unknown keys seen later widen the schema.
    pub fn load_jsonl(&self, table: &str, text: &str) -> Result<usize> {
        let docs: Vec<Variant> = text
            .lines()
            .filter(|l| !l.trim().is_empty())
            .map(parse_json)
            .collect::<Result<_>>()?;
        let schema = infer_schema(&docs)?;
        let names: Vec<String> = schema.iter().map(|c| c.name.clone()).collect();
        let n = docs.len();
        self.load_table(
            table,
            schema,
            docs.iter().map(|d| {
                names
                    .iter()
                    .map(|name| {
                        // Case-insensitive match back to the document's key.
                        d.as_object()
                            .and_then(|o| {
                                o.iter()
                                    .find(|(k, _)| k.eq_ignore_ascii_case(name))
                                    .map(|(_, v)| v.clone())
                            })
                            .unwrap_or(Variant::Null)
                    })
                    .collect()
            }),
        )?;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infers_scalar_types_and_order() {
        let docs = vec![
            parse_json(r#"{"a": 1, "b": "x", "c": true}"#).unwrap(),
            parse_json(r#"{"a": 2.5, "b": "y", "c": false}"#).unwrap(),
        ];
        let schema = infer_schema(&docs).unwrap();
        assert_eq!(schema.len(), 3);
        assert_eq!(schema[0], ColumnDef::new("A", ColumnType::Float)); // widened
        assert_eq!(schema[1].ty, ColumnType::Str);
        assert_eq!(schema[2].ty, ColumnType::Bool);
    }

    #[test]
    fn conflicting_types_become_variant() {
        let docs = vec![
            parse_json(r#"{"a": 1}"#).unwrap(),
            parse_json(r#"{"a": "one"}"#).unwrap(),
        ];
        let schema = infer_schema(&docs).unwrap();
        assert_eq!(schema[0].ty, ColumnType::Variant);
    }

    #[test]
    fn missing_keys_load_as_null_and_widen() {
        let db = Database::new();
        let n = db
            .load_jsonl(
                "t",
                r#"{"a": 1}
                   {"a": 2, "extra": [1, 2]}"#,
            )
            .unwrap();
        assert_eq!(n, 2);
        let r = db.query("SELECT a, extra FROM t ORDER BY a").unwrap();
        assert_eq!(r.rows[0][0], Variant::Int(1));
        assert!(r.rows[0][1].is_null());
        assert_eq!(r.rows[1][1], Variant::array(vec![Variant::Int(1), Variant::Int(2)]));
    }

    #[test]
    fn nested_values_stay_queryable() {
        let db = Database::new();
        db.load_jsonl("t", r#"{"id": 1, "tags": [{"N": "x"}, {"N": "y"}]}"#).unwrap();
        let r = db
            .query("SELECT f.value:N FROM t, LATERAL FLATTEN(INPUT => tags) f ORDER BY 1")
            .unwrap();
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0][0], Variant::str("x"));
    }

    #[test]
    fn rejects_non_objects_and_empty_input() {
        let db = Database::new();
        assert!(db.load_jsonl("t", "[1, 2]").is_err());
        assert!(db.load_jsonl("t", "").is_err());
        assert!(db.load_jsonl("t", "not json").is_err());
    }
}
