//! Morsel dispatching: work-stealing distribution of independent work items
//! (micro-partitions, batches) across a fixed worker pool.
//!
//! The scheduling model follows morsel-driven parallelism: instead of
//! statically slicing the partition list per worker, every worker claims the
//! next unprocessed index from a shared atomic cursor, so a worker that lands
//! on cheap (e.g. zone-map-pruned) partitions immediately steals more work
//! rather than idling at the barrier. Results are reassembled in index order,
//! which is what lets the parallel executor produce byte-identical output to
//! the serial one.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Shared claim cursor over `0..total`.
pub struct MorselDispatcher {
    cursor: AtomicUsize,
    total: usize,
}

impl MorselDispatcher {
    pub fn new(total: usize) -> MorselDispatcher {
        MorselDispatcher { cursor: AtomicUsize::new(0), total }
    }

    /// Claims the next unprocessed index, or `None` when the range is drained.
    pub fn claim(&self) -> Option<usize> {
        // fetch_add hands every claimed index to exactly one worker; indices
        // claimed past `total` are harmless (the cursor saturates at
        // total + workers).
        let i = self.cursor.fetch_add(1, Ordering::Relaxed);
        (i < self.total).then_some(i)
    }
}

/// Runs `work(i)` for every `i in 0..total` on up to `threads` workers and
/// returns the results in index order.
///
/// With `threads <= 1` (or a trivially small range) the work runs inline on
/// the calling thread — no spawning — which is the degradation path for
/// `SNOWDB_THREADS=1`. Every item is processed even if some items fail;
/// callers that hand out `Result`s pick the lowest-index error so the
/// reported error never depends on worker timing.
pub fn parallel_indexed<R, F>(total: usize, threads: usize, work: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if threads <= 1 || total <= 1 {
        return (0..total).map(work).collect();
    }
    let dispatcher = MorselDispatcher::new(total);
    let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(total));
    let workers = threads.min(total);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                // Buffer locally; take the shared lock once per worker.
                let mut local = Vec::new();
                while let Some(i) = dispatcher.claim() {
                    local.push((i, work(i)));
                }
                collected.lock().unwrap_or_else(|e| e.into_inner()).extend(local);
            });
        }
    });
    let mut pairs = collected.into_inner().unwrap_or_else(|e| e.into_inner());
    pairs.sort_by_key(|(i, _)| *i);
    debug_assert_eq!(pairs.len(), total);
    pairs.into_iter().map(|(_, r)| r).collect()
}

/// [`parallel_indexed`] over fallible work: returns all results in index
/// order, or the error with the lowest index (the one serial execution would
/// have hit first), independent of worker timing.
pub fn try_parallel_indexed<R, E, F>(
    total: usize,
    threads: usize,
    work: F,
) -> Result<Vec<R>, E>
where
    R: Send,
    E: Send,
    F: Fn(usize) -> Result<R, E> + Sync,
{
    let mut out = Vec::with_capacity(total);
    for r in parallel_indexed(total, threads, work) {
        out.push(r?);
    }
    Ok(out)
}

/// Governed, panic-isolated variant of [`try_parallel_indexed`] — the morsel
/// primitive of the query-lifecycle governance layer.
///
/// - `gate` runs before every claim (and before every inline item). A gate
///   error — cancellation, deadline, budget, injected fault — aborts the
///   whole call promptly: workers stop claiming and the *first observed* gate
///   error is returned. Gate trips are inherently timing-dependent, so no
///   index ordering is imposed on them.
/// - `work` runs under `catch_unwind`: a panicking item never unwinds across
///   the pool. The payload is converted through `on_panic(index, message)`
///   into a typed error that competes under the same lowest-index-wins rule
///   as ordinary work errors, so the reported error is the one serial
///   execution would have hit first.
/// - As in [`parallel_indexed`], work errors do not stop other items: every
///   item is processed so the lowest-index error is deterministic.
pub fn try_parallel_indexed_governed<R, E, F, G, P>(
    total: usize,
    threads: usize,
    gate: G,
    on_panic: P,
    work: F,
) -> Result<Vec<R>, E>
where
    R: Send,
    E: Send,
    F: Fn(usize) -> Result<R, E> + Sync,
    G: Fn() -> Result<(), E> + Sync,
    P: Fn(usize, String) -> E + Sync,
{
    use std::panic::{catch_unwind, AssertUnwindSafe};
    let run = |i: usize| -> Result<R, E> {
        match catch_unwind(AssertUnwindSafe(|| work(i))) {
            Ok(r) => r,
            Err(payload) => Err(on_panic(i, panic_payload_message(&*payload))),
        }
    };

    if threads <= 1 || total <= 1 {
        let mut out = Vec::with_capacity(total);
        for i in 0..total {
            gate()?;
            // Inline: the first error is the lowest-index error.
            out.push(run(i)?);
        }
        return Ok(out);
    }

    let dispatcher = MorselDispatcher::new(total);
    let aborted = AtomicBool::new(false);
    let gate_error: Mutex<Option<E>> = Mutex::new(None);
    let collected: Mutex<Vec<(usize, Result<R, E>)>> =
        Mutex::new(Vec::with_capacity(total));
    let workers = threads.min(total);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut local = Vec::new();
                while !aborted.load(Ordering::Relaxed) {
                    let Some(i) = dispatcher.claim() else { break };
                    if let Err(e) = gate() {
                        aborted.store(true, Ordering::Relaxed);
                        let mut slot = gate_error.lock().unwrap_or_else(|p| p.into_inner());
                        if slot.is_none() {
                            *slot = Some(e);
                        }
                        break;
                    }
                    local.push((i, run(i)));
                }
                collected.lock().unwrap_or_else(|p| p.into_inner()).extend(local);
            });
        }
    });
    if let Some(e) = gate_error.into_inner().unwrap_or_else(|p| p.into_inner()) {
        return Err(e);
    }
    let mut pairs = collected.into_inner().unwrap_or_else(|p| p.into_inner());
    pairs.sort_by_key(|(i, _)| *i);
    debug_assert_eq!(pairs.len(), total);
    let mut out = Vec::with_capacity(total);
    for (_, r) in pairs {
        out.push(r?);
    }
    Ok(out)
}

/// Renders a panic payload as a message string (mirrors
/// `govern::panic_message`; duplicated here so the storage layer stays
/// independent of the governance module).
fn panic_payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_index_order() {
        for threads in [1, 2, 4, 7] {
            let out = parallel_indexed(100, threads, |i| i * 3);
            assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_index_claimed_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        parallel_indexed(64, 4, |i| hits[i].fetch_add(1, Ordering::Relaxed));
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn lowest_index_error_wins() {
        for threads in [1, 3] {
            let err = try_parallel_indexed(32, threads, |i| {
                if i % 10 == 7 { Err(i) } else { Ok(i) }
            })
            .unwrap_err();
            assert_eq!(err, 7);
        }
    }

    #[test]
    fn empty_and_singleton_ranges() {
        assert!(parallel_indexed(0, 4, |i| i).is_empty());
        assert_eq!(parallel_indexed(1, 4, |i| i + 1), vec![1]);
    }
}
