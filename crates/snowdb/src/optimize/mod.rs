//! Plan optimizer: rule-based passes plus a cost-based join reorderer.
//!
//! Passes run on every query, in order:
//! 1. **constant folding** — pure literal sub-expressions are evaluated once;
//! 2. **predicate pushdown** — filters move through projections, flattens,
//!    unions, and join inputs, and comparison / null-presence conjuncts
//!    against base-table columns are copied into scans for zone-map
//!    partition pruning;
//! 3. **join reordering** ([`join_order`]) — Inner/Cross join clusters are
//!    rebuilt in the order the cost model ([`cost`]) ranks cheapest, using
//!    per-column statistics persisted in the catalog (NDV sketches,
//!    histograms, null fractions), so raw SSB star joins and JSONiq
//!    successive-`for` cross joins become selectivity-ordered hash joins;
//! 4. **projection pruning** — scans materialize only the table columns the
//!    query actually consumes, which both speeds execution and makes the
//!    bytes-scanned metric reflect real column usage (paper §V-E).
//!
//! Because the translation layer emits one SQL query per JSONiq query, these
//! passes see the *whole* program — the end-to-end optimizer visibility the
//! paper contrasts against UDF-based black boxes.

pub mod cost;
pub mod join_order;

use crate::error::Result;
use crate::exec::{eval, ExecCtx, RowView};
use crate::plan::{FuncId, Node, NodeKind, PExpr, PStep, ScanPredicate};
use crate::sql::{BinOp, JoinKind};
use crate::variant::Variant;

/// Runs all optimizer passes.
pub fn optimize(mut node: Node) -> Result<Node> {
    fold_node(&mut node)?;
    node = merge_projects(node);
    node = pushdown(node);
    // Reordering runs after pushdown: by then single-table conjuncts sit on
    // their relations and cross-relation conjuncts have been folded into
    // join ON conditions, which is the input shape the reorderer pools.
    node = join_order::reorder_joins(node);
    // Pushing filters can expose further folding opportunities; one more round
    // keeps plans normalized without a full fixpoint loop.
    fold_node(&mut node)?;
    node = merge_projects(node);
    prune_projection(&mut node);
    Ok(node)
}

// ---- projection merging -----------------------------------------------------

/// Collapses `Project(Project(x))` chains into a single projection.
///
/// The dataframe layer emits one `SELECT *, expr AS c` wrapper per
/// transformation, so translated queries arrive as dozens of stacked
/// projections; each one re-materializes every column at execution. Merging is
/// only applied when it cannot grow the plan: every non-trivial inner
/// expression must be referenced at most once by the outer projection (column
/// references and literals substitute freely). Volatile expressions (`SEQ8`)
/// merge safely under the same single-reference rule because projections
/// preserve row count and `SEQ8` numbers rows per projection.
fn merge_projects(node: Node) -> Node {
    let fields = node.fields;
    let kind = match node.kind {
        NodeKind::Project { input, exprs } => {
            let input = merge_projects(*input);
            if let NodeKind::Project { input: inner_in, exprs: inner_exprs } = input.kind {
                let mut refs = vec![0usize; inner_exprs.len()];
                for e in &exprs {
                    let mut cols = Vec::new();
                    e.collect_cols(&mut cols);
                    for c in cols {
                        refs[c] += 1;
                    }
                }
                let growth_ok = inner_exprs.iter().zip(&refs).all(|(ie, &r)| {
                    matches!(ie, PExpr::Col(_) | PExpr::Lit(_)) || r <= 1
                });
                // Two volatile (SEQ8) expressions merged into one projection
                // would share a per-row counter and change values; keep such
                // projections separate.
                let volatile_clash = exprs.iter().any(PExpr::is_volatile)
                    && inner_exprs.iter().any(PExpr::is_volatile);
                let mergeable = growth_ok && !volatile_clash;
                if mergeable {
                    let merged: Vec<PExpr> =
                        exprs.iter().map(|e| e.substitute(&inner_exprs)).collect();
                    return merge_projects(Node {
                        kind: NodeKind::Project { input: inner_in, exprs: merged },
                        fields,
                    });
                }
                NodeKind::Project {
                    input: Box::new(Node {
                        kind: NodeKind::Project { input: inner_in, exprs: inner_exprs },
                        fields: input.fields,
                    }),
                    exprs,
                }
            } else {
                NodeKind::Project { input: Box::new(input), exprs }
            }
        }
        NodeKind::Filter { input, pred } => {
            NodeKind::Filter { input: Box::new(merge_projects(*input)), pred }
        }
        NodeKind::Flatten { input, expr, outer } => {
            NodeKind::Flatten { input: Box::new(merge_projects(*input)), expr, outer }
        }
        NodeKind::Aggregate { input, groups, aggs } => {
            NodeKind::Aggregate { input: Box::new(merge_projects(*input)), groups, aggs }
        }
        NodeKind::Join { left, right, kind, on } => NodeKind::Join {
            left: Box::new(merge_projects(*left)),
            right: Box::new(merge_projects(*right)),
            kind,
            on,
        },
        NodeKind::Sort { input, keys } => {
            NodeKind::Sort { input: Box::new(merge_projects(*input)), keys }
        }
        NodeKind::Limit { input, n } => {
            NodeKind::Limit { input: Box::new(merge_projects(*input)), n }
        }
        NodeKind::Distinct { input } => {
            NodeKind::Distinct { input: Box::new(merge_projects(*input)) }
        }
        NodeKind::UnionAll { left, right } => NodeKind::UnionAll {
            left: Box::new(merge_projects(*left)),
            right: Box::new(merge_projects(*right)),
        },
        leaf @ (NodeKind::Scan { .. } | NodeKind::Values) => leaf,
    };
    Node { kind, fields }
}

// ---- constant folding ------------------------------------------------------

fn fold_node(node: &mut Node) -> Result<()> {
    match &mut node.kind {
        NodeKind::Scan { .. } | NodeKind::Values => {}
        NodeKind::Project { input, exprs } => {
            fold_node(input)?;
            for e in exprs {
                fold_expr(e)?;
            }
        }
        NodeKind::Filter { input, pred } => {
            fold_node(input)?;
            fold_expr(pred)?;
        }
        NodeKind::Flatten { input, expr, .. } => {
            fold_node(input)?;
            fold_expr(expr)?;
        }
        NodeKind::Aggregate { input, groups, aggs } => {
            fold_node(input)?;
            for g in groups {
                fold_expr(g)?;
            }
            for a in aggs {
                if let Some(e) = &mut a.arg {
                    fold_expr(e)?;
                }
            }
        }
        NodeKind::Join { left, right, on, .. } => {
            fold_node(left)?;
            fold_node(right)?;
            if let Some(e) = on {
                fold_expr(e)?;
            }
        }
        NodeKind::Sort { input, keys } => {
            fold_node(input)?;
            for k in keys {
                fold_expr(&mut k.expr)?;
            }
        }
        NodeKind::Limit { input, .. } | NodeKind::Distinct { input } => fold_node(input)?,
        NodeKind::UnionAll { left, right } => {
            fold_node(left)?;
            fold_node(right)?;
        }
    }
    Ok(())
}

/// Replaces literal-only, non-volatile sub-expressions with their value.
fn fold_expr(e: &mut PExpr) -> Result<()> {
    // Recurse first so children are already folded.
    match e {
        PExpr::Col(_) | PExpr::Lit(_) => return Ok(()),
        PExpr::Unary { expr, .. } | PExpr::Not(expr) | PExpr::IsNull { expr, .. } => {
            fold_expr(expr)?
        }
        PExpr::Binary { left, right, .. } => {
            fold_expr(left)?;
            fold_expr(right)?;
        }
        PExpr::InList { expr, list, .. } => {
            fold_expr(expr)?;
            for x in list {
                fold_expr(x)?;
            }
        }
        PExpr::Case { operand, branches, else_expr } => {
            if let Some(o) = operand {
                fold_expr(o)?;
            }
            for (c, v) in branches {
                fold_expr(c)?;
                fold_expr(v)?;
            }
            if let Some(x) = else_expr {
                fold_expr(x)?;
            }
        }
        PExpr::Func { args, .. } => {
            for a in args {
                fold_expr(a)?;
            }
        }
        PExpr::Cast { expr, .. } => fold_expr(expr)?,
        PExpr::Path { base, steps } => {
            fold_expr(base)?;
            for s in steps {
                if let crate::plan::PStep::IndexExpr(x) = s {
                    fold_expr(x)?;
                }
            }
        }
        PExpr::Like { expr, pattern, .. } => {
            fold_expr(expr)?;
            fold_expr(pattern)?;
        }
    }
    let mut cols = Vec::new();
    e.collect_cols(&mut cols);
    if cols.is_empty() && !e.is_volatile() {
        let chunk = crate::exec::Chunk { cols: Vec::new(), rows: 1 };
        let parts = [(&chunk, 0usize)];
        let mut ctx = ExecCtx::default();
        // Expressions that error at fold time (e.g. 1/0) are left in place so
        // the error surfaces at execution, matching engine semantics.
        if let Ok(v) = eval(e, RowView::new(&parts), &mut ctx) {
            *e = PExpr::Lit(v);
        }
    }
    Ok(())
}

// ---- predicate pushdown ----------------------------------------------------

fn conjuncts(e: PExpr, out: &mut Vec<PExpr>) {
    if let PExpr::Binary { left, op: BinOp::And, right } = e {
        conjuncts(*left, out);
        conjuncts(*right, out);
    } else {
        out.push(e);
    }
}

fn conjoin(mut parts: Vec<PExpr>) -> Option<PExpr> {
    let mut acc = parts.pop()?;
    while let Some(p) = parts.pop() {
        acc = PExpr::Binary { left: Box::new(p), op: BinOp::And, right: Box::new(acc) };
    }
    Some(acc)
}

fn max_col(e: &PExpr) -> Option<usize> {
    let mut cols = Vec::new();
    e.collect_cols(&mut cols);
    cols.into_iter().max()
}

/// True when evaluating `e` cannot raise a runtime error on data the unpushed
/// plan accepts. Only constructs that error on *valid* values count — division
/// and modulo (by zero) and casts (format failures). Type-mismatch errors are
/// ignored: those fail the query wherever the predicate is evaluated, so they
/// cannot turn a succeeding plan into a failing one by moving.
fn error_free(e: &PExpr) -> bool {
    match e {
        PExpr::Col(_) | PExpr::Lit(_) => true,
        PExpr::Binary { left, op, right } => {
            !matches!(op, BinOp::Div | BinOp::Mod) && error_free(left) && error_free(right)
        }
        PExpr::Cast { .. } => false,
        PExpr::Func { f, args } => !matches!(f, FuncId::Mod) && args.iter().all(error_free),
        PExpr::Unary { expr, .. } | PExpr::Not(expr) => error_free(expr),
        PExpr::IsNull { expr, .. } => error_free(expr),
        PExpr::InList { expr, list, .. } => error_free(expr) && list.iter().all(error_free),
        PExpr::Case { operand, branches, else_expr } => {
            operand.as_deref().is_none_or(error_free)
                && branches.iter().all(|(c, v)| error_free(c) && error_free(v))
                && else_expr.as_deref().is_none_or(error_free)
        }
        PExpr::Path { base, steps } => {
            error_free(base)
                && steps.iter().all(|s| match s {
                    PStep::IndexExpr(ix) => error_free(ix),
                    _ => true,
                })
        }
        PExpr::Like { expr, pattern, .. } => error_free(expr) && error_free(pattern),
    }
}

/// True when `e` can evaluate to TRUE while one of its column inputs is NULL —
/// i.e. it is not NULL-rejecting. Comparisons, arithmetic, LIKE, and paths all
/// propagate NULL to NULL (which a filter drops), so a predicate built purely
/// from them decides a NULL-extended row the same way as the row's absence;
/// `IS [NOT] NULL`, CASE, and the NULL-handling functions do not.
fn null_sensitive(e: &PExpr) -> bool {
    match e {
        PExpr::Col(_) | PExpr::Lit(_) => false,
        PExpr::IsNull { .. } | PExpr::Case { .. } => true,
        PExpr::Func { f, args } => {
            matches!(
                f,
                FuncId::Coalesce | FuncId::Nvl | FuncId::NullIf | FuncId::Iff | FuncId::TypeOf
            ) || args.iter().any(null_sensitive)
        }
        PExpr::Unary { expr, .. } | PExpr::Not(expr) => null_sensitive(expr),
        PExpr::Binary { left, right, .. } => null_sensitive(left) || null_sensitive(right),
        PExpr::InList { expr, list, .. } => {
            null_sensitive(expr) || list.iter().any(null_sensitive)
        }
        PExpr::Cast { expr, .. } => null_sensitive(expr),
        PExpr::Path { base, steps } => {
            null_sensitive(base)
                || steps.iter().any(|s| match s {
                    PStep::IndexExpr(ix) => null_sensitive(ix),
                    _ => false,
                })
        }
        PExpr::Like { expr, pattern, .. } => null_sensitive(expr) || null_sensitive(pattern),
    }
}

fn pushdown(node: Node) -> Node {
    let fields = node.fields;
    let kind = match node.kind {
        NodeKind::Filter { input, pred } => {
            let input = Box::new(pushdown(*input));
            return push_filter(*input, pred, fields);
        }
        NodeKind::Project { input, exprs } => {
            NodeKind::Project { input: Box::new(pushdown(*input)), exprs }
        }
        NodeKind::Flatten { input, expr, outer } => {
            NodeKind::Flatten { input: Box::new(pushdown(*input)), expr, outer }
        }
        NodeKind::Aggregate { input, groups, aggs } => {
            NodeKind::Aggregate { input: Box::new(pushdown(*input)), groups, aggs }
        }
        NodeKind::Join { left, right, kind, on } => NodeKind::Join {
            left: Box::new(pushdown(*left)),
            right: Box::new(pushdown(*right)),
            kind,
            on,
        },
        NodeKind::Sort { input, keys } => {
            NodeKind::Sort { input: Box::new(pushdown(*input)), keys }
        }
        NodeKind::Limit { input, n } => NodeKind::Limit { input: Box::new(pushdown(*input)), n },
        NodeKind::Distinct { input } => NodeKind::Distinct { input: Box::new(pushdown(*input)) },
        NodeKind::UnionAll { left, right } => NodeKind::UnionAll {
            left: Box::new(pushdown(*left)),
            right: Box::new(pushdown(*right)),
        },
        leaf @ (NodeKind::Scan { .. } | NodeKind::Values) => leaf,
    };
    Node { kind, fields }
}

/// Pushes the predicate as deep as is sound, rebuilding the filter above
/// whatever could not move.
fn push_filter(input: Node, pred: PExpr, fields: Vec<crate::plan::Field>) -> Node {
    let mut parts = Vec::new();
    conjuncts(pred, &mut parts);

    match input.kind {
        NodeKind::Project { input: pin, exprs } => {
            // A volatile projection expression (SEQ8 row numbering) depends on
            // the exact row stream that reaches it: filtering first renumbers
            // the surviving rows. When any projection expression is volatile,
            // every conjunct stays above — even ones that never reference the
            // volatile column. (Found by the verification oracle on ADL Q7
            // under the JOIN-based strategy: a jet-pT filter pushed below the
            // SEQ8 row-id projection renumbered the left join keys while the
            // right side kept the unfiltered numbering, associating lepton
            // matches with the wrong jets.)
            if exprs.iter().any(PExpr::is_volatile) {
                let proj = Node {
                    kind: NodeKind::Project { input: pin, exprs },
                    fields: fields.clone(),
                };
                return wrap_filter(proj, parts, fields);
            }
            // Substitute projection expressions into the predicate and move it
            // below.
            let movable: Vec<PExpr> = parts.into_iter().map(|p| p.substitute(&exprs)).collect();
            let inner_fields = pin.fields.clone();
            let mut below = *pin;
            if let Some(mp) = conjoin(movable) {
                below = push_filter(below, mp, inner_fields);
            }
            Node {
                kind: NodeKind::Project { input: Box::new(below), exprs },
                fields,
            }
        }
        NodeKind::Flatten { input: fin, expr, outer } => {
            let in_arity = fin.arity();
            let mut movable = Vec::new();
            let mut stuck = Vec::new();
            for p in parts {
                // A conjunct may move below the flatten only when all of:
                //  - it references input columns exclusively (flatten outputs
                //    do not exist below, and for an OUTER flatten they are the
                //    NULL-extended columns the filter must observe);
                //  - it is not volatile: SEQ8() numbers rows, and the flatten
                //    multiplies/drops rows, so evaluating below changes which
                //    numbers each surviving row sees;
                //  - it cannot raise a runtime error: a non-outer flatten drops
                //    rows whose collection is empty, so a pushed predicate runs
                //    on rows the unpushed plan never evaluates it on (e.g.
                //    `10 / id > 0` with id = 0 on an empty-array row succeeds
                //    unpushed but errors pushed);
                //  - for an OUTER flatten, it is not NULL-sensitive: predicates
                //    that accept NULL inputs (IS NULL, COALESCE, CASE, ...)
                //    must see the post-flatten row, where the outer flatten's
                //    NULL-preservation has already happened, or rows the outer
                //    flatten would have preserved as NULL are dropped early.
                let input_only = match max_col(&p) {
                    Some(m) => m < in_arity,
                    None => true,
                };
                if input_only
                    && !p.is_volatile()
                    && error_free(&p)
                    && !(outer && null_sensitive(&p))
                {
                    movable.push(p);
                } else {
                    stuck.push(p);
                }
            }
            let inner_fields = fin.fields.clone();
            let mut below = *fin;
            if let Some(mp) = conjoin(movable) {
                below = push_filter(below, mp, inner_fields);
            }
            let fl = Node {
                kind: NodeKind::Flatten { input: Box::new(below), expr, outer },
                fields: fields.clone(),
            };
            wrap_filter(fl, stuck, fields)
        }
        NodeKind::Join { left, right, kind, on } => {
            let la = left.arity();
            let mut left_parts = Vec::new();
            let mut right_parts = Vec::new();
            let mut into_on = Vec::new();
            let mut stuck = Vec::new();
            for p in parts {
                let mut cols = Vec::new();
                p.collect_cols(&mut cols);
                let all_left = !cols.is_empty() && cols.iter().all(|&c| c < la);
                let all_right = !cols.is_empty() && cols.iter().all(|&c| c >= la);
                match kind {
                    JoinKind::Inner | JoinKind::Cross => {
                        if all_left {
                            left_parts.push(p);
                        } else if all_right {
                            right_parts.push(shift_right(&p, la));
                        } else {
                            // For inner joins, filtering after the join equals
                            // filtering in the ON condition — moving the
                            // conjunct there lets the executor extract
                            // hash-join keys (turning a cross join emitted for
                            // JSONiq's successive-for joins into a hash join).
                            into_on.push(p);
                        }
                    }
                    JoinKind::LeftOuter => {
                        // Only left-side predicates commute with a left outer
                        // join; right-side ones would change NULL-extension.
                        if all_left {
                            left_parts.push(p);
                        } else {
                            stuck.push(p);
                        }
                    }
                }
            }
            let lf = left.fields.clone();
            let rf = right.fields.clone();
            let mut l = *left;
            let mut r = *right;
            if let Some(p) = conjoin(left_parts) {
                l = push_filter(l, p, lf);
            }
            if let Some(p) = conjoin(right_parts) {
                r = push_filter(r, p, rf);
            }
            let (kind, on) = if into_on.is_empty() {
                (kind, on)
            } else {
                let mut all = Vec::new();
                if let Some(o) = on {
                    all.push(o);
                }
                all.extend(into_on);
                (JoinKind::Inner, conjoin(all))
            };
            let j = Node {
                kind: NodeKind::Join { left: Box::new(l), right: Box::new(r), kind, on },
                fields: fields.clone(),
            };
            wrap_filter(j, stuck, fields)
        }
        NodeKind::UnionAll { left, right } => {
            let lf = left.fields.clone();
            let rf = right.fields.clone();
            let pred = conjoin(parts).expect("at least one conjunct");
            let l = push_filter(*left, pred.clone(), lf);
            let r = push_filter(*right, pred, rf);
            Node {
                kind: NodeKind::UnionAll { left: Box::new(l), right: Box::new(r) },
                fields,
            }
        }
        NodeKind::Filter { input: fin, pred: inner } => {
            // Merge adjacent filters and retry.
            let mut merged = vec![inner];
            merged.extend(parts);
            let p = conjoin(merged).expect("non-empty");
            push_filter(*fin, p, fields)
        }
        NodeKind::Scan { table, mut pushed, materialize } => {
            // Copy comparison conjuncts into the scan for pruning; the filter
            // itself stays above for exactness.
            for p in &parts {
                if let Some(sp) = scan_predicate(p) {
                    pushed.push(sp);
                }
            }
            let scan = Node {
                kind: NodeKind::Scan { table, pushed, materialize },
                fields: fields.clone(),
            };
            wrap_filter(scan, parts, fields)
        }
        other => {
            // Sort/Limit/Aggregate/Distinct/Values: keep the filter in place.
            let node = Node { kind: other, fields: input.fields };
            wrap_filter(node, parts, fields)
        }
    }
}

fn wrap_filter(node: Node, parts: Vec<PExpr>, fields: Vec<crate::plan::Field>) -> Node {
    match conjoin(parts) {
        Some(pred) => Node {
            kind: NodeKind::Filter { input: Box::new(node), pred },
            fields,
        },
        None => node,
    }
}

fn shift_right(e: &PExpr, la: usize) -> PExpr {
    let max = max_col(e).unwrap_or(0);
    let subs: Vec<PExpr> = (0..=max).map(|i| PExpr::Col(i.saturating_sub(la))).collect();
    e.substitute(&subs)
}

/// Recognizes `col <cmp> literal` / `literal <cmp> col` conjuncts, plus
/// `col IS [NOT] NULL`, for pruning.
fn scan_predicate(p: &PExpr) -> Option<ScanPredicate> {
    let (l, op, r) = match p {
        PExpr::Binary { left, op, right } => (left.as_ref(), *op, right.as_ref()),
        PExpr::IsNull { expr, negated } => {
            // Null-presence predicates prune via ZoneMap::null_count: an
            // all-null partition can't satisfy IS NOT NULL and a null-free
            // one can't satisfy IS NULL.
            if let PExpr::Col(c) = expr.as_ref() {
                return Some(ScanPredicate {
                    col: *c,
                    cmp: if *negated { "IS NOT NULL" } else { "IS NULL" },
                    lit: Variant::Null,
                });
            }
            return None;
        }
        _ => return None,
    };
    let cmp = |op: BinOp, flip: bool| -> Option<&'static str> {
        Some(match (op, flip) {
            (BinOp::Eq, _) => "=",
            (BinOp::NotEq, _) => "<>",
            (BinOp::Lt, false) => "<",
            (BinOp::Lt, true) => ">",
            (BinOp::LtEq, false) => "<=",
            (BinOp::LtEq, true) => ">=",
            (BinOp::Gt, false) => ">",
            (BinOp::Gt, true) => "<",
            (BinOp::GtEq, false) => ">=",
            (BinOp::GtEq, true) => "<=",
            _ => return None,
        })
    };
    match (l, r) {
        (PExpr::Col(c), PExpr::Lit(v)) if !v.is_null() => {
            Some(ScanPredicate { col: *c, cmp: cmp(op, false)?, lit: v.clone() })
        }
        (PExpr::Lit(v), PExpr::Col(c)) if !v.is_null() => {
            Some(ScanPredicate { col: *c, cmp: cmp(op, true)?, lit: v.clone() })
        }
        _ => None,
    }
}

// ---- projection pruning ----------------------------------------------------

/// Marks, per scan, the table columns the plan above actually consumes.
fn prune_projection(node: &mut Node) {
    let all: Vec<usize> = (0..node.arity()).collect();
    mark(node, &all);
}

fn mark(node: &mut Node, required: &[usize]) {
    match &mut node.kind {
        NodeKind::Values => {}
        NodeKind::Scan { materialize, pushed, .. } => {
            for m in materialize.iter_mut() {
                *m = false;
            }
            for &c in required {
                materialize[c] = true;
            }
            // Pruning predicates read zone maps, not column data, but keep the
            // column materialized for the exact filter above.
            for p in pushed {
                materialize[p.col] = true;
            }
        }
        NodeKind::Project { input, exprs } => {
            let mut need = Vec::new();
            for &i in required {
                exprs[i].collect_cols(&mut need);
            }
            dedup(&mut need);
            mark(input, &need);
        }
        NodeKind::Filter { input, pred } => {
            let mut need = required.to_vec();
            pred.collect_cols(&mut need);
            dedup(&mut need);
            mark(input, &need);
        }
        NodeKind::Flatten { input, expr, .. } => {
            let in_arity = input.arity();
            let mut need: Vec<usize> =
                required.iter().copied().filter(|&c| c < in_arity).collect();
            expr.collect_cols(&mut need);
            dedup(&mut need);
            mark(input, &need);
        }
        NodeKind::Aggregate { input, groups, aggs } => {
            let mut need = Vec::new();
            for g in groups.iter() {
                g.collect_cols(&mut need);
            }
            for a in aggs.iter() {
                if let Some(e) = &a.arg {
                    e.collect_cols(&mut need);
                }
            }
            dedup(&mut need);
            mark(input, &need);
        }
        NodeKind::Join { left, right, on, .. } => {
            let la = left.arity();
            let mut need = required.to_vec();
            if let Some(e) = on {
                e.collect_cols(&mut need);
            }
            let mut lneed: Vec<usize> = need.iter().copied().filter(|&c| c < la).collect();
            let mut rneed: Vec<usize> =
                need.iter().copied().filter(|&c| c >= la).map(|c| c - la).collect();
            dedup(&mut lneed);
            dedup(&mut rneed);
            mark(left, &lneed);
            mark(right, &rneed);
        }
        NodeKind::Sort { input, keys } => {
            let mut need = required.to_vec();
            for k in keys.iter() {
                k.expr.collect_cols(&mut need);
            }
            dedup(&mut need);
            mark(input, &need);
        }
        NodeKind::Limit { input, .. } => mark(input, required),
        NodeKind::Distinct { input } => {
            // DISTINCT compares whole rows, so everything is required.
            let all: Vec<usize> = (0..input.arity()).collect();
            mark(input, &all);
        }
        NodeKind::UnionAll { left, right } => {
            mark(left, required);
            mark(right, required);
        }
    }
}

fn dedup(v: &mut Vec<usize>) {
    v.sort_unstable();
    v.dedup();
}
