//! Cardinality and cost estimation over bound plans.
//!
//! The estimator walks a [`Node`] tree bottom-up, carrying per-column
//! statistics ([`ColumnStats`]) alongside the row estimate so predicate and
//! join-key selectivities downstream of projections still see base-table
//! statistics. Everything is metadata-driven: table statistics come from
//! [`Table::stats`](crate::storage::Table::stats) (sealed partitions in
//! memory, v3 footers on disk) and no column data is ever read to cost a
//! plan.
//!
//! Formulas (classic System-R-style, with sketch/histogram refinements):
//! - `col = lit` → `(1 - nf) / ndv` (KMV sketch);
//! - range compares → histogram-bound fraction × `(1 - nf)`;
//! - `IS [NOT] NULL` → the null fraction (exact, from counts);
//! - `IN (k literals)` → `k × eq-selectivity`, capped at 1;
//! - equi-join on `l = r` → `|L|·|R| / max(ndv(l), ndv(r))`, with ndv
//!   defaulting to the relation's row count when a side lacks statistics
//!   (the FK-like assumption that keeps star joins linear);
//! - FLATTEN fan-out → `array_elems / rows` of the flattened column.
//!
//! The *cost* is a unitless work measure used to rank join orders: each
//! operator charges its input cost plus the rows it processes, hash joins
//! charge the build side double (building the table costs more than probing
//! it, which is what orients big-probe/small-build), and a join without
//! equi-keys charges the full `|L|·|R|` nested-loop work — exactly the term
//! that makes cross products prohibitively expensive for the reorderer.

use std::collections::HashMap;
use std::sync::Arc;

use crate::plan::{Node, NodeKind, PExpr};
use crate::sql::{BinOp, JoinKind};
use crate::storage::ColumnStats;
use crate::variant::Variant;

/// Default selectivity for an equality predicate with no statistics.
const DEFAULT_EQ_SEL: f64 = 0.1;
/// Default selectivity for a range predicate with no statistics.
const DEFAULT_RANGE_SEL: f64 = 0.3;
/// Default selectivity for a predicate the estimator cannot decompose.
const DEFAULT_UNKNOWN_SEL: f64 = 0.5;
/// Default FLATTEN fan-out when the flattened column has no array statistics.
const DEFAULT_FANOUT: f64 = 3.0;

/// Estimate for one plan node: output cardinality, cumulative cost, and the
/// per-output-column statistics that survived the operators below.
#[derive(Clone, Debug)]
pub struct Est {
    /// Estimated output rows.
    pub rows: f64,
    /// Estimated cumulative work (unitless; see module docs).
    pub cost: f64,
    /// Statistics per output column, `None` where the column is computed or
    /// its base table carries no statistics.
    pub cols: Vec<Option<Arc<ColumnStats>>>,
}

/// Walks a plan and records `(rows, cost)` per node, keyed by node address —
/// the lookup EXPLAIN uses to annotate operator lines. The map is only valid
/// for the lifetime of the borrowed plan.
pub fn estimate_map(node: &Node) -> HashMap<usize, (f64, f64)> {
    let mut map = HashMap::new();
    estimate_into(node, &mut Some(&mut map));
    map
}

/// Estimates a plan node (no per-node map).
pub fn estimate(node: &Node) -> Est {
    estimate_into(node, &mut None)
}

fn estimate_into(node: &Node, map: &mut Option<&mut HashMap<usize, (f64, f64)>>) -> Est {
    let est = match &node.kind {
        NodeKind::Values => Est { rows: 1.0, cost: 1.0, cols: Vec::new() },
        NodeKind::Scan { table, .. } => {
            // Pushed predicates are advisory copies of the Filter above; the
            // Filter applies their selectivity, so the scan reports raw table
            // cardinality to avoid double-counting.
            let stats = table.stats();
            Est {
                rows: stats.rows as f64,
                cost: stats.rows as f64,
                cols: stats.columns.clone(),
            }
        }
        NodeKind::Filter { input, pred } => {
            let in_est = estimate_into(input, map);
            let sel = pred_selectivity(pred, &in_est.cols);
            Est {
                rows: in_est.rows * sel,
                cost: in_est.cost + in_est.rows,
                cols: in_est.cols,
            }
        }
        NodeKind::Project { input, exprs } => {
            let in_est = estimate_into(input, map);
            let cols = exprs
                .iter()
                .map(|e| match e {
                    PExpr::Col(i) => in_est.cols.get(*i).cloned().flatten(),
                    _ => None,
                })
                .collect();
            Est { rows: in_est.rows, cost: in_est.cost + in_est.rows, cols }
        }
        NodeKind::Flatten { input, expr, outer } => {
            let in_est = estimate_into(input, map);
            let fanout = flatten_fanout(expr, &in_est.cols, *outer);
            let rows = in_est.rows * fanout;
            // Flatten appends VALUE/INDEX/KEY/SEQ/THIS columns with no
            // base-table statistics.
            let mut cols = in_est.cols;
            cols.resize(node.arity(), None);
            Est { rows, cost: in_est.cost + rows.max(in_est.rows), cols }
        }
        NodeKind::Join { left, right, kind, on } => {
            let l = estimate_into(left, map);
            let r = estimate_into(right, map);
            join_estimate(&l, &r, *kind, on.as_ref(), left.arity())
        }
        NodeKind::Aggregate { input, groups, .. } => {
            let in_est = estimate_into(input, map);
            let rows = if groups.is_empty() {
                1.0
            } else {
                let mut distinct = 1.0f64;
                for g in groups {
                    distinct *= match g {
                        PExpr::Col(i) => in_est.cols.get(*i).and_then(Option::as_deref).map_or(
                            in_est.rows.sqrt().max(1.0),
                            ColumnStats::distinct,
                        ),
                        PExpr::Lit(_) => 1.0,
                        _ => in_est.rows.sqrt().max(1.0),
                    };
                }
                distinct.min(in_est.rows).max(if in_est.rows > 0.0 { 1.0 } else { 0.0 })
            };
            Est {
                rows,
                cost: in_est.cost + in_est.rows,
                cols: vec![None; node.arity()],
            }
        }
        NodeKind::Sort { input, .. } => {
            let in_est = estimate_into(input, map);
            let n = in_est.rows.max(1.0);
            Est {
                rows: in_est.rows,
                cost: in_est.cost + n * n.log2().max(1.0),
                cols: in_est.cols,
            }
        }
        NodeKind::Limit { input, n } => {
            let in_est = estimate_into(input, map);
            Est {
                rows: in_est.rows.min(*n as f64),
                cost: in_est.cost,
                cols: in_est.cols,
            }
        }
        NodeKind::Distinct { input } => {
            let in_est = estimate_into(input, map);
            // No whole-row NDV statistic: assume moderate duplication.
            Est {
                rows: (in_est.rows / 2.0).max(in_est.rows.min(1.0)),
                cost: in_est.cost + in_est.rows,
                cols: in_est.cols,
            }
        }
        NodeKind::UnionAll { left, right } => {
            let l = estimate_into(left, map);
            let r = estimate_into(right, map);
            // Column stats survive only when both branches agree; merging
            // them keeps NDV/null fractions usable above the union.
            let cols = l
                .cols
                .iter()
                .zip(r.cols.iter().chain(std::iter::repeat(&None)))
                .map(|(a, b)| match (a, b) {
                    (Some(a), Some(b)) => {
                        let mut m = (**a).clone();
                        m.merge(b);
                        Some(Arc::new(m))
                    }
                    _ => None,
                })
                .collect();
            Est { rows: l.rows + r.rows, cost: l.cost + r.cost, cols }
        }
    };
    if let Some(m) = map {
        m.insert(node as *const Node as usize, (est.rows, est.cost));
    }
    est
}

/// Cardinality and cost of one join, given its input estimates.
fn join_estimate(
    l: &Est,
    r: &Est,
    kind: JoinKind,
    on: Option<&PExpr>,
    la: usize,
) -> Est {
    let mut equi_sel = 1.0f64;
    let mut residual_sel = 1.0f64;
    let mut equi_keys = 0usize;
    if let Some(on) = on {
        let mut parts = Vec::new();
        conjuncts_ref(on, &mut parts);
        for p in parts {
            if let Some((lc, rc)) = equi_pair(p, la) {
                let lv = ndv_or_rows(&l.cols, lc, l.rows);
                let rv = ndv_or_rows(&r.cols, rc - la, r.rows);
                equi_sel /= lv.max(rv).max(1.0);
                equi_keys += 1;
            } else {
                // Side-local or complex conjuncts filter the cross product.
                let merged: Vec<Option<Arc<ColumnStats>>> =
                    l.cols.iter().chain(r.cols.iter()).cloned().collect();
                residual_sel *= pred_selectivity(p, &merged);
            }
        }
    }
    let cross = l.rows * r.rows;
    let mut rows = cross * equi_sel * residual_sel;
    if kind == JoinKind::LeftOuter {
        // Every left row survives, NULL-extended if unmatched.
        rows = rows.max(l.rows);
    }
    // Hash join when equi keys exist: build the right side (charged double —
    // hashing + materializing costs more than probing), probe the left.
    // Without keys the executor runs a nested loop over the full product —
    // the term that makes cross products prohibitively expensive.
    let work = if equi_keys > 0 {
        l.rows + 2.0 * r.rows + rows
    } else {
        cross.max(l.rows + r.rows)
    };
    let cols = l.cols.iter().chain(r.cols.iter()).cloned().collect();
    Est { rows, cost: l.cost + r.cost + work, cols }
}

/// `Col(l) = Col(r)` with the two sides on opposite sides of the join split.
fn equi_pair(p: &PExpr, la: usize) -> Option<(usize, usize)> {
    if let PExpr::Binary { left, op: BinOp::Eq, right } = p {
        if let (PExpr::Col(a), PExpr::Col(b)) = (left.as_ref(), right.as_ref()) {
            if *a < la && *b >= la {
                return Some((*a, *b));
            }
            if *b < la && *a >= la {
                return Some((*b, *a));
            }
        }
    }
    None
}

fn ndv_or_rows(cols: &[Option<Arc<ColumnStats>>], i: usize, rows: f64) -> f64 {
    cols.get(i)
        .and_then(Option::as_deref)
        .map_or(rows.max(1.0), ColumnStats::distinct)
}

fn conjuncts_ref<'a>(e: &'a PExpr, out: &mut Vec<&'a PExpr>) {
    if let PExpr::Binary { left, op: BinOp::And, right } = e {
        conjuncts_ref(left, out);
        conjuncts_ref(right, out);
    } else {
        out.push(e);
    }
}

/// Estimated fraction of rows satisfying `pred`, given the input's per-column
/// statistics.
pub fn pred_selectivity(pred: &PExpr, cols: &[Option<Arc<ColumnStats>>]) -> f64 {
    let mut parts = Vec::new();
    conjuncts_ref(pred, &mut parts);
    let mut sel = 1.0f64;
    for p in parts {
        sel *= conjunct_selectivity(p, cols);
    }
    sel.clamp(0.0, 1.0)
}

fn conjunct_selectivity(p: &PExpr, cols: &[Option<Arc<ColumnStats>>]) -> f64 {
    match p {
        PExpr::Lit(Variant::Bool(b)) => {
            if *b {
                1.0
            } else {
                0.0
            }
        }
        PExpr::Binary { left, op: BinOp::Or, right } => {
            let a = conjunct_selectivity(left, cols);
            let b = conjunct_selectivity(right, cols);
            (a + b - a * b).clamp(0.0, 1.0)
        }
        PExpr::Not(inner) => 1.0 - conjunct_selectivity(inner, cols),
        PExpr::IsNull { expr, negated } => match expr.as_ref() {
            PExpr::Col(c) => {
                let nf = cols
                    .get(*c)
                    .and_then(Option::as_deref)
                    .map_or(DEFAULT_EQ_SEL, ColumnStats::null_fraction);
                if *negated {
                    1.0 - nf
                } else {
                    nf
                }
            }
            _ => DEFAULT_UNKNOWN_SEL,
        },
        PExpr::InList { expr, list, negated } => match expr.as_ref() {
            PExpr::Col(c) if list.iter().all(|e| matches!(e, PExpr::Lit(_))) => {
                // `=` ignores its literal operand: (1 - nf) / ndv.
                let eq = cols
                    .get(*c)
                    .and_then(Option::as_deref)
                    .map_or(DEFAULT_EQ_SEL, |s| s.selectivity("=", &Variant::Null));
                let sel = (eq * list.len() as f64).clamp(0.0, 1.0);
                if *negated {
                    1.0 - sel
                } else {
                    sel
                }
            }
            _ => DEFAULT_UNKNOWN_SEL,
        },
        PExpr::Binary { left, op, right } => {
            let (col, cmp, lit) = match (left.as_ref(), right.as_ref()) {
                (PExpr::Col(c), PExpr::Lit(v)) => (*c, cmp_str(*op, false), v),
                (PExpr::Lit(v), PExpr::Col(c)) => (*c, cmp_str(*op, true), v),
                _ => return DEFAULT_UNKNOWN_SEL,
            };
            let Some(cmp) = cmp else { return DEFAULT_UNKNOWN_SEL };
            match cols.get(col).and_then(Option::as_deref) {
                Some(s) => s.selectivity(cmp, lit),
                None => match cmp {
                    "=" => DEFAULT_EQ_SEL,
                    "<>" => 1.0 - DEFAULT_EQ_SEL,
                    _ => DEFAULT_RANGE_SEL,
                },
            }
        }
        _ => DEFAULT_UNKNOWN_SEL,
    }
}

fn cmp_str(op: BinOp, flip: bool) -> Option<&'static str> {
    Some(match (op, flip) {
        (BinOp::Eq, _) => "=",
        (BinOp::NotEq, _) => "<>",
        (BinOp::Lt, false) | (BinOp::Gt, true) => "<",
        (BinOp::LtEq, false) | (BinOp::GtEq, true) => "<=",
        (BinOp::Gt, false) | (BinOp::Lt, true) => ">",
        (BinOp::GtEq, false) | (BinOp::LtEq, true) => ">=",
        _ => return None,
    })
}

/// Expected output rows per input row of a FLATTEN over `expr`.
fn flatten_fanout(expr: &PExpr, cols: &[Option<Arc<ColumnStats>>], outer: bool) -> f64 {
    let mut refs = Vec::new();
    expr.collect_cols(&mut refs);
    let fanout = refs
        .first()
        .and_then(|&c| cols.get(c).and_then(Option::as_deref))
        .and_then(ColumnStats::avg_flatten_fanout)
        .unwrap_or(DEFAULT_FANOUT);
    if outer {
        // OUTER FLATTEN emits at least one row per input row.
        fanout.max(1.0)
    } else {
        fanout
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Field;
    use crate::storage::{ColumnDef, ColumnType, TableBuilder};

    fn table(rows: i64, distinct: i64) -> Arc<crate::storage::Table> {
        let schema = vec![
            ColumnDef::new("K", ColumnType::Int),
            ColumnDef::new("V", ColumnType::Int),
        ];
        let mut b = TableBuilder::new("t", schema);
        for i in 0..rows {
            b.push_row(&[Variant::Int(i % distinct), Variant::Int(i)]).unwrap();
        }
        Arc::new(b.finish().unwrap())
    }

    fn scan(t: &Arc<crate::storage::Table>) -> Node {
        Node {
            kind: NodeKind::Scan {
                table: t.clone(),
                pushed: Vec::new(),
                materialize: vec![true; 2],
            },
            fields: vec![Field::bare("K"), Field::bare("V")],
        }
    }

    #[test]
    fn scan_estimates_table_rows() {
        let t = table(500, 10);
        let est = estimate(&scan(&t));
        assert_eq!(est.rows, 500.0);
        assert!(est.cols[0].is_some());
    }

    #[test]
    fn filter_applies_stats_selectivity() {
        let t = table(1000, 10);
        let plan = Node {
            kind: NodeKind::Filter {
                input: Box::new(scan(&t)),
                pred: PExpr::Binary {
                    left: Box::new(PExpr::Col(0)),
                    op: BinOp::Eq,
                    right: Box::new(PExpr::Lit(Variant::Int(3))),
                },
            },
            fields: vec![Field::bare("K"), Field::bare("V")],
        };
        let est = estimate(&plan);
        // K has 10 distinct values → ~1/10 of 1000 rows.
        assert!((est.rows - 100.0).abs() < 5.0, "est {}", est.rows);
    }

    #[test]
    fn equi_join_beats_cross_join_cost() {
        let big = table(2000, 400);
        let small = table(50, 50);
        let equi = Node {
            kind: NodeKind::Join {
                left: Box::new(scan(&big)),
                right: Box::new(scan(&small)),
                kind: JoinKind::Inner,
                on: Some(PExpr::Binary {
                    left: Box::new(PExpr::Col(0)),
                    op: BinOp::Eq,
                    right: Box::new(PExpr::Col(2)),
                }),
            },
            fields: vec![
                Field::bare("K"),
                Field::bare("V"),
                Field::bare("K2"),
                Field::bare("V2"),
            ],
        };
        let cross = Node {
            kind: NodeKind::Join {
                left: Box::new(scan(&big)),
                right: Box::new(scan(&small)),
                kind: JoinKind::Cross,
                on: None,
            },
            fields: vec![
                Field::bare("K"),
                Field::bare("V"),
                Field::bare("K2"),
                Field::bare("V2"),
            ],
        };
        let e = estimate(&equi);
        let c = estimate(&cross);
        assert!(e.cost < c.cost, "equi {} !< cross {}", e.cost, c.cost);
        assert!(e.rows < c.rows);
        assert_eq!(c.rows, 100_000.0);
    }

    #[test]
    fn estimate_map_covers_every_node() {
        let t = table(100, 10);
        let plan = Node {
            kind: NodeKind::Limit { input: Box::new(scan(&t)), n: 7 },
            fields: vec![Field::bare("K"), Field::bare("V")],
        };
        let map = estimate_map(&plan);
        assert_eq!(map.len(), 2);
        let (rows, _) = map[&(&plan as *const Node as usize)];
        assert_eq!(rows, 7.0);
    }
}
