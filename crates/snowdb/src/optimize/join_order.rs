//! Cost-based join reordering.
//!
//! The rule-based passes leave two plan shapes that explode at execution:
//! JSONiq successive-`for` clauses translate to left-deep cross-join chains,
//! and raw SSB SQL (`FROM` list + `WHERE`) arrives as cross joins whose
//! predicates pushdown folds into `ON` conditions in *syntactic* order —
//! neither reflects table sizes or key selectivities. This pass:
//!
//! 1. flattens every maximal cluster of `Inner`/`Cross` joins into its base
//!    relations plus the pooled `ON` conjuncts (rebased to the cluster's
//!    concatenated column space);
//! 2. greedily rebuilds a left-deep join tree: the cheapest connected pair
//!    first (orienting the larger side as the probe/left input and the
//!    smaller as the hash build/right input), then repeatedly the relation
//!    whose addition yields the cheapest partial plan, preferring relations
//!    connected by an equi-predicate so star schemas chain dimension by
//!    dimension instead of cross-producting;
//! 3. places each pooled conjunct at the first join whose inputs cover its
//!    columns, and restores the original output column order with a final
//!    projection when the chosen order permuted it.
//!
//! Soundness: only `Inner`/`Cross` joins participate (they commute and
//! associate freely); a cluster is left untouched unless every pooled
//! conjunct is non-volatile and error-free, mirroring the pushdown gates —
//! moving a conjunct to an earlier join makes it run on row combinations the
//! original plan never evaluated it on. The costing never changes semantics:
//! the differential oracle runs every corpus query with this pass on and off.

use std::collections::HashMap;

use crate::optimize::cost::estimate;
use crate::optimize::{conjoin, conjuncts, error_free, max_col};
use crate::plan::{Field, Node, NodeKind, PExpr};
use crate::sql::{BinOp, JoinKind};

/// Minimum relations in a cluster before reordering kicks in. Two-relation
/// joins are left as written: the executor already hash-joins them, and
/// preserving the authored build/probe orientation keeps small plans stable.
const MIN_RELATIONS: usize = 3;

/// Reorders every eligible join cluster in the plan, bottom-up.
pub fn reorder_joins(node: Node) -> Node {
    // Eligibility is decided on a borrow, *before* the tree is consumed: an
    // ineligible cluster keeps its authored shape exactly (only its child
    // relations are visited), so volatile or erroring ON predicates never
    // move.
    if !cluster_eligible(&node) {
        return map_children(node, reorder_joins);
    }

    // Flatten the maximal Inner/Cross cluster rooted here.
    let fields = node.fields.clone();
    let mut rels: Vec<Node> = Vec::new();
    let mut preds: Vec<PExpr> = Vec::new();
    flatten_cluster(node, 0, &mut rels, &mut preds);

    let order = greedy_order(&rels, &preds);
    build_ordered(rels, preds, order, fields)
}

/// True when the Inner/Cross join cluster rooted at `node` may be reordered:
/// at least [`MIN_RELATIONS`] base relations (at most 64 — the predicate
/// bitmask width), and every pooled ON conjunct non-volatile and error-free
/// (moving a conjunct to an earlier join evaluates it on row combinations
/// the authored plan never built — the same gates pushdown applies).
fn cluster_eligible(node: &Node) -> bool {
    if !matches!(
        node.kind,
        NodeKind::Join { kind: JoinKind::Inner | JoinKind::Cross, .. }
    ) {
        return false;
    }
    fn walk(node: &Node, rels: &mut usize, ok: &mut bool) {
        match &node.kind {
            NodeKind::Join {
                left,
                right,
                kind: JoinKind::Inner | JoinKind::Cross,
                on,
            } => {
                walk(left, rels, ok);
                walk(right, rels, ok);
                if let Some(on) = on {
                    let mut parts = Vec::new();
                    conjuncts_ref(on, &mut parts);
                    for p in parts {
                        if p.is_volatile() || !error_free(p) {
                            *ok = false;
                        }
                    }
                }
            }
            _ => *rels += 1,
        }
    }
    let mut rels = 0;
    let mut ok = true;
    walk(node, &mut rels, &mut ok);
    ok && (MIN_RELATIONS..=64).contains(&rels)
}

fn conjuncts_ref<'a>(e: &'a PExpr, out: &mut Vec<&'a PExpr>) {
    if let PExpr::Binary { left, op: BinOp::And, right } = e {
        conjuncts_ref(left, out);
        conjuncts_ref(right, out);
    } else {
        out.push(e);
    }
}

/// Applies `f` to every child of `node`, preserving the node itself.
fn map_children(node: Node, f: fn(Node) -> Node) -> Node {
    let fields = node.fields;
    let kind = match node.kind {
        NodeKind::Project { input, exprs } => {
            NodeKind::Project { input: Box::new(f(*input)), exprs }
        }
        NodeKind::Filter { input, pred } => {
            NodeKind::Filter { input: Box::new(f(*input)), pred }
        }
        NodeKind::Flatten { input, expr, outer } => {
            NodeKind::Flatten { input: Box::new(f(*input)), expr, outer }
        }
        NodeKind::Aggregate { input, groups, aggs } => {
            NodeKind::Aggregate { input: Box::new(f(*input)), groups, aggs }
        }
        NodeKind::Join { left, right, kind, on } => NodeKind::Join {
            left: Box::new(f(*left)),
            right: Box::new(f(*right)),
            kind,
            on,
        },
        NodeKind::Sort { input, keys } => NodeKind::Sort { input: Box::new(f(*input)), keys },
        NodeKind::Limit { input, n } => NodeKind::Limit { input: Box::new(f(*input)), n },
        NodeKind::Distinct { input } => NodeKind::Distinct { input: Box::new(f(*input)) },
        NodeKind::UnionAll { left, right } => {
            NodeKind::UnionAll { left: Box::new(f(*left)), right: Box::new(f(*right)) }
        }
        leaf @ (NodeKind::Scan { .. } | NodeKind::Values) => leaf,
    };
    Node { kind, fields }
}

/// Recursively flattens `Inner`/`Cross` joins into `rels` (each child
/// recursively reordered) and pools `ON` conjuncts into `preds`, rebased by
/// `base` into the cluster's concatenated column space. Left-to-right DFS
/// keeps the concatenated relation columns in the original output order.
fn flatten_cluster(node: Node, base: usize, rels: &mut Vec<Node>, preds: &mut Vec<PExpr>) {
    match node.kind {
        NodeKind::Join {
            left,
            right,
            kind: JoinKind::Inner | JoinKind::Cross,
            on,
        } => {
            let la = left.arity();
            flatten_cluster(*left, base, rels, preds);
            flatten_cluster(*right, base + la, rels, preds);
            if let Some(on) = on {
                let mut parts = Vec::new();
                conjuncts(on, &mut parts);
                for p in parts {
                    preds.push(shift_cols(&p, base));
                }
            }
        }
        kind => rels.push(reorder_joins(Node { kind, fields: node.fields })),
    }
}

/// Shifts every column reference in `e` up by `base`.
fn shift_cols(e: &PExpr, base: usize) -> PExpr {
    if base == 0 {
        return e.clone();
    }
    let max = max_col(e).unwrap_or(0);
    let subs: Vec<PExpr> = (0..=max).map(|i| PExpr::Col(i + base)).collect();
    e.substitute(&subs)
}

/// Starting cluster-column offset of each relation in original order.
fn rel_offsets(rels: &[Node]) -> Vec<usize> {
    let mut offsets = Vec::with_capacity(rels.len());
    let mut base = 0;
    for r in rels {
        offsets.push(base);
        base += r.arity();
    }
    offsets
}

/// The set of relations a predicate's columns touch, as a bitmask.
fn pred_rels(p: &PExpr, offsets: &[usize], total: usize) -> u64 {
    let mut cols = Vec::new();
    p.collect_cols(&mut cols);
    let mut mask = 0u64;
    for c in cols {
        let rel = offsets.iter().rposition(|&o| o <= c).unwrap_or(0);
        debug_assert!(c < offsets.get(rel + 1).copied().unwrap_or(total));
        mask |= 1 << rel;
    }
    mask
}

/// True when `p` contains a `Col = Col` conjunct usable as a hash-join key.
fn has_equi(p: &PExpr) -> bool {
    matches!(
        p,
        PExpr::Binary { left, op: BinOp::Eq, right }
            if matches!(left.as_ref(), PExpr::Col(_)) && matches!(right.as_ref(), PExpr::Col(_))
    )
}

/// Greedy join-order search: returns the relation indices in join order.
fn greedy_order(rels: &[Node], preds: &[PExpr]) -> Vec<usize> {
    let n = rels.len();
    let offsets = rel_offsets(rels);
    let total: usize = rels.iter().map(Node::arity).sum();
    let masks: Vec<u64> = preds.iter().map(|p| pred_rels(p, &offsets, total)).collect();

    // Score a candidate order prefix by building the partial plan and
    // estimating it. Orders are compared on cumulative cost.
    let cost_of = |order: &[usize]| -> f64 {
        let (plan, _) = assemble(rels, preds, &masks, &offsets, order);
        estimate(&plan).cost
    };
    let connected = |placed: u64, j: usize| -> bool {
        masks.iter().enumerate().any(|(pi, &m)| {
            has_equi(&preds[pi]) && m & (1 << j) != 0 && m & placed != 0 && m & !(placed | (1 << j)) == 0
        })
    };

    // Seed: the cheapest pair, preferring pairs connected by an equi-pred.
    let mut best: Option<(Vec<usize>, f64, bool)> = None;
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let order = vec![i, j];
            let conn = connected(1 << i, j);
            let cost = cost_of(&order);
            let better = match &best {
                None => true,
                Some((_, bc, bconn)) => (conn, -cost) > (*bconn, -*bc),
            };
            if better {
                best = Some((order, cost, conn));
            }
        }
    }
    let (mut order, _, _) = best.expect("cluster has >= 3 relations");

    // Grow: always append the relation with the cheapest resulting plan,
    // preferring connected relations to avoid intermediate cross products.
    while order.len() < n {
        let placed: u64 = order.iter().map(|&i| 1u64 << i).sum();
        let mut best: Option<(usize, f64, bool)> = None;
        for j in 0..n {
            if placed & (1 << j) != 0 {
                continue;
            }
            let mut cand = order.clone();
            cand.push(j);
            let conn = connected(placed, j);
            let cost = cost_of(&cand);
            let better = match &best {
                None => true,
                Some((_, bc, bconn)) => (conn, -cost) > (*bconn, -*bc),
            };
            if better {
                best = Some((j, cost, conn));
            }
        }
        order.push(best.expect("unplaced relation exists").0);
    }
    order
}

/// Builds the left-deep join tree for `order`, placing each pooled predicate
/// at the first join covering its relations. Returns the tree plus the
/// cluster-column → output-column mapping.
fn assemble(
    rels: &[Node],
    preds: &[PExpr],
    masks: &[u64],
    offsets: &[usize],
    order: &[usize],
) -> (Node, HashMap<usize, usize>) {
    let mut used = vec![false; preds.len()];
    let mut colmap: HashMap<usize, usize> = HashMap::new();

    let first = order[0];
    for c in 0..rels[first].arity() {
        colmap.insert(offsets[first] + c, c);
    }
    let mut plan = rels[first].clone();
    let mut placed: u64 = 1 << first;

    for &j in &order[1..] {
        let la = plan.arity();
        for c in 0..rels[j].arity() {
            colmap.insert(offsets[j] + c, la + c);
        }
        placed |= 1 << j;

        // Predicates now fully covered join here, remapped to current space.
        let mut on_parts = Vec::new();
        for (pi, p) in preds.iter().enumerate() {
            if !used[pi] && masks[pi] & !placed == 0 {
                used[pi] = true;
                on_parts.push(remap_cols(p, &colmap));
            }
        }
        let on = conjoin(on_parts);
        let kind = if on.is_some() { JoinKind::Inner } else { JoinKind::Cross };
        let fields: Vec<Field> = plan
            .fields
            .iter()
            .chain(rels[j].fields.iter())
            .cloned()
            .collect();
        plan = Node {
            kind: NodeKind::Join {
                left: Box::new(plan),
                right: Box::new(rels[j].clone()),
                kind,
                on,
            },
            fields,
        };
    }
    // During greedy search `order` is a prefix, so predicates spanning
    // unplaced relations legitimately stay unused; the final assembly over
    // the full order places every predicate.
    debug_assert!(
        order.len() < rels.len() || used.iter().all(|&u| u),
        "every pooled predicate placed"
    );
    (plan, colmap)
}

/// Rewrites cluster-space column references through the placement map.
fn remap_cols(e: &PExpr, colmap: &HashMap<usize, usize>) -> PExpr {
    let max = max_col(e).unwrap_or(0);
    let subs: Vec<PExpr> = (0..=max)
        .map(|i| PExpr::Col(colmap.get(&i).copied().unwrap_or(i)))
        .collect();
    e.substitute(&subs)
}

/// Materializes the chosen order and restores the original column order with
/// a projection when the permutation is not the identity.
fn build_ordered(
    rels: Vec<Node>,
    preds: Vec<PExpr>,
    order: Vec<usize>,
    fields: Vec<Field>,
) -> Node {
    let offsets = rel_offsets(&rels);
    let total: usize = rels.iter().map(Node::arity).sum();
    let masks: Vec<u64> = preds.iter().map(|p| pred_rels(p, &offsets, total)).collect();
    let (plan, colmap) = assemble(&rels, &preds, &masks, &offsets, &order);

    let identity = (0..total).all(|i| colmap.get(&i) == Some(&i));
    if identity {
        return Node { kind: plan.kind, fields };
    }
    let exprs: Vec<PExpr> = (0..total).map(|i| PExpr::Col(colmap[&i])).collect();
    Node {
        kind: NodeKind::Project { input: Box::new(plan), exprs },
        fields,
    }
}
