//! Query lifecycle governance: cooperative cancellation, wall-clock deadlines,
//! and memory / bytes-scanned budgets.
//!
//! A production Snowflake-like service does more than run a query fast — it
//! governs the query's lifecycle: statement timeouts, resource monitors, and
//! workers that fail without taking the warehouse down. This module is that
//! layer for `snowdb`:
//!
//! - a [`QueryGovernor`] travels with the query inside
//!   [`ExecCtx`](crate::exec::ExecCtx). Every physical operator calls
//!   [`QueryGovernor::checkpoint`] at *batch boundaries* and every morsel
//!   worker calls it at *partition claims*, so a trip (cancel, deadline,
//!   budget) aborts the query within one batch of work — never a hang, never
//!   a panic;
//! - budgets are batch-granular atomics: the un-governed hot path pays one
//!   relaxed load per batch, nothing per row;
//! - trips surface as the typed errors
//!   [`SnowError::Cancelled`] / [`SnowError::DeadlineExceeded`] /
//!   [`SnowError::ResourceExhausted`], each carrying the operator that
//!   observed the trip;
//! - [`SessionParams`] is the Snowflake-style session surface
//!   (`SET STATEMENT_TIMEOUT_IN_SECONDS / STATEMENT_MEMORY_LIMIT /
//!   MAX_BYTES_SCANNED`) from which [`QueryGovernor::from_params`] arms a
//!   governor per statement;
//! - the [`chaos`] submodule injects seeded, deterministic faults at the same
//!   checkpoints to prove the layer keeps the engine sound.
//!
//! # Memory-budget semantics
//!
//! `STATEMENT_MEMORY_LIMIT` bounds the *cumulative intermediate bytes
//! materialized* by the statement (scanned batches, operator outputs, join
//! build sides, sort/aggregate results), estimated per batch with
//! [`Chunk::approx_bytes`](crate::exec::Chunk::approx_bytes). Charges are
//! monotone, so a query whose intermediates exceed the budget trips under
//! every thread count — the unbounded-`ARRAY_AGG`-over-shredded-data hazard
//! the budget exists to catch is exactly a cumulative blow-up.

pub mod chaos;
pub mod retry;

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::{DeadlineTrip, ResourceTrip, Result, SnowError};
use crate::exec::metrics::OpMetrics;

use chaos::{ChaosSchedule, ChaosSite};

/// Snowflake-style session parameters governing every statement run on the
/// session. All limits are off by default; setting a parameter to `0` turns
/// it back off (Snowflake's convention for `STATEMENT_TIMEOUT_IN_SECONDS`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionParams {
    /// `STATEMENT_TIMEOUT_IN_SECONDS`: wall-clock deadline per statement.
    pub statement_timeout_secs: Option<u64>,
    /// `STATEMENT_MEMORY_LIMIT`: cumulative intermediate-bytes budget.
    pub statement_memory_limit: Option<u64>,
    /// `MAX_BYTES_SCANNED`: bytes-scanned budget (column bytes actually read).
    pub max_bytes_scanned: Option<u64>,
}

impl SessionParams {
    /// Applies `SET <name> = <value>`; `0` clears the limit. Returns the
    /// canonical parameter name, or an error for unknown parameters.
    pub fn set(&mut self, name: &str, value: u64) -> Result<&'static str> {
        let v = (value > 0).then_some(value);
        match name.to_ascii_uppercase().as_str() {
            "STATEMENT_TIMEOUT_IN_SECONDS" => {
                self.statement_timeout_secs = v;
                Ok("STATEMENT_TIMEOUT_IN_SECONDS")
            }
            "STATEMENT_MEMORY_LIMIT" => {
                self.statement_memory_limit = v;
                Ok("STATEMENT_MEMORY_LIMIT")
            }
            "MAX_BYTES_SCANNED" => {
                self.max_bytes_scanned = v;
                Ok("MAX_BYTES_SCANNED")
            }
            other => Err(SnowError::Plan(format!("unknown session parameter '{other}'"))),
        }
    }

    /// Clears a parameter (`UNSET <name>`).
    pub fn unset(&mut self, name: &str) -> Result<&'static str> {
        self.set(name, 0)
    }

    /// True when no limit is armed — the governor built from these params
    /// only carries the cancellation flag.
    pub fn is_unbounded(&self) -> bool {
        *self == SessionParams::default()
    }
}

/// Per-query governance state: cancellation token, deadline, and budgets.
///
/// Shared (via `Arc`) between the query's worker contexts and any
/// [`QueryHandle`] held by the submitter. All counters are atomics; the
/// checkpoint fast path is one relaxed load when nothing is armed.
#[derive(Debug)]
pub struct QueryGovernor {
    cancel: AtomicBool,
    started: Instant,
    deadline: Option<Duration>,
    memory_limit: Option<u64>,
    memory_charged: AtomicU64,
    scan_limit: Option<u64>,
    bytes_scanned: AtomicU64,
    chaos: Option<ChaosSchedule>,
}

impl Default for QueryGovernor {
    fn default() -> QueryGovernor {
        QueryGovernor::unbounded()
    }
}

impl QueryGovernor {
    /// A governor with no limits: it still honors [`QueryGovernor::cancel`].
    pub fn unbounded() -> QueryGovernor {
        QueryGovernor {
            cancel: AtomicBool::new(false),
            started: Instant::now(),
            deadline: None,
            memory_limit: None,
            memory_charged: AtomicU64::new(0),
            scan_limit: None,
            bytes_scanned: AtomicU64::new(0),
            chaos: None,
        }
    }

    /// Arms a governor from the session parameters. The deadline clock starts
    /// now, so build one per statement, not per session.
    pub fn from_params(params: &SessionParams) -> QueryGovernor {
        QueryGovernor {
            deadline: params.statement_timeout_secs.map(Duration::from_secs),
            memory_limit: params.statement_memory_limit,
            scan_limit: params.max_bytes_scanned,
            ..QueryGovernor::unbounded()
        }
    }

    /// Arms an explicit wall-clock deadline (used by tests and the chaos
    /// harness; the SQL surface goes through [`QueryGovernor::from_params`]).
    pub fn with_deadline(mut self, deadline: Duration) -> QueryGovernor {
        self.deadline = Some(deadline);
        self
    }

    /// Arms an explicit memory budget in bytes.
    pub fn with_memory_limit(mut self, bytes: u64) -> QueryGovernor {
        self.memory_limit = Some(bytes);
        self
    }

    /// Arms an explicit bytes-scanned budget.
    pub fn with_scan_limit(mut self, bytes: u64) -> QueryGovernor {
        self.scan_limit = Some(bytes);
        self
    }

    /// Attaches a seeded fault-injection schedule (see [`chaos`]).
    pub fn with_chaos(mut self, schedule: ChaosSchedule) -> QueryGovernor {
        self.chaos = Some(schedule);
        self
    }

    /// Requests cooperative cancellation: the query aborts with
    /// [`SnowError::Cancelled`] at the next batch boundary or partition claim.
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::Release);
    }

    /// True once [`QueryGovernor::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.load(Ordering::Acquire)
    }

    /// Cooperative checkpoint, called by every operator at each batch
    /// boundary. `op` names the calling operator and is carried in the typed
    /// error on a trip.
    #[inline]
    pub fn checkpoint(&self, op: &str) -> Result<()> {
        self.check_at(op, ChaosSite::BatchStage)
    }

    /// Checkpoint variant for morsel partition claims (distinct chaos site;
    /// identical governance checks).
    #[inline]
    pub fn claim_checkpoint(&self, op: &str) -> Result<()> {
        self.check_at(op, ChaosSite::PartitionClaim)
    }

    /// Checkpoint variant for lazy column-block reads from the persistent
    /// store (distinct chaos site; identical governance checks). Called once
    /// per column block fetched from disk, before the I/O happens, so a
    /// cancelled or faulted query never touches the file.
    #[inline]
    pub fn store_checkpoint(&self, op: &str) -> Result<()> {
        self.check_at(op, ChaosSite::StoreRead)
    }

    fn check_at(&self, op: &str, site: ChaosSite) -> Result<()> {
        if self.cancel.load(Ordering::Relaxed) {
            return Err(SnowError::Cancelled { op: op.to_string() });
        }
        if let Some(limit) = self.deadline {
            let elapsed = self.started.elapsed();
            if elapsed > limit {
                return Err(SnowError::DeadlineExceeded(Box::new(DeadlineTrip {
                    op: op.to_string(),
                    elapsed_ms: elapsed.as_millis() as u64,
                    limit_ms: limit.as_millis() as u64,
                })));
            }
        }
        if let Some(chaos) = &self.chaos {
            chaos.maybe_inject(site, op)?;
        }
        Ok(())
    }

    /// Charges `bytes` of materialized intermediate data against the memory
    /// budget. Charges are cumulative and never released — see the module
    /// docs for the semantics. Called once per produced batch.
    pub fn charge_memory(&self, bytes: u64, op: &str) -> Result<()> {
        if let Some(chaos) = &self.chaos {
            chaos.maybe_inject(ChaosSite::BudgetAccount, op)?;
        }
        let used = self.memory_charged.fetch_add(bytes, Ordering::Relaxed) + bytes;
        if let Some(limit) = self.memory_limit {
            if used > limit {
                return Err(SnowError::ResourceExhausted(Box::new(ResourceTrip {
                    resource: "memory".into(),
                    op: op.to_string(),
                    used,
                    limit,
                })));
            }
        }
        Ok(())
    }

    /// Charges `bytes` read from storage against the bytes-scanned budget.
    /// Called once per scanned partition.
    pub fn charge_scanned(&self, bytes: u64, op: &str) -> Result<()> {
        if let Some(chaos) = &self.chaos {
            chaos.maybe_inject(ChaosSite::BudgetAccount, op)?;
        }
        let used = self.bytes_scanned.fetch_add(bytes, Ordering::Relaxed) + bytes;
        if let Some(limit) = self.scan_limit {
            if used > limit {
                return Err(SnowError::ResourceExhausted(Box::new(ResourceTrip {
                    resource: "bytes_scanned".into(),
                    op: op.to_string(),
                    used,
                    limit,
                })));
            }
        }
        Ok(())
    }

    /// True when any limit or fault schedule is armed (the profile then
    /// carries a [`GovernorSummary`]).
    pub fn is_armed(&self) -> bool {
        self.deadline.is_some()
            || self.memory_limit.is_some()
            || self.scan_limit.is_some()
            || self.chaos.is_some()
    }

    /// Snapshot of time/bytes used against the configured limits.
    pub fn summary(&self) -> GovernorSummary {
        GovernorSummary {
            elapsed: self.started.elapsed(),
            deadline: self.deadline,
            memory_charged: self.memory_charged.load(Ordering::Relaxed),
            memory_limit: self.memory_limit,
            bytes_scanned: self.bytes_scanned.load(Ordering::Relaxed),
            scan_limit: self.scan_limit,
            cancelled: self.is_cancelled(),
        }
    }
}

/// Governed-limits snapshot reported in
/// [`QueryProfile`](crate::engine::QueryProfile) and appended by
/// `EXPLAIN ANALYZE`, so budget trips are diagnosable from the metrics alone.
#[derive(Clone, Copy, Debug, Default)]
pub struct GovernorSummary {
    pub elapsed: Duration,
    pub deadline: Option<Duration>,
    pub memory_charged: u64,
    pub memory_limit: Option<u64>,
    pub bytes_scanned: u64,
    pub scan_limit: Option<u64>,
    pub cancelled: bool,
}

impl GovernorSummary {
    /// One-line rendering: `governed: time 12ms/10000ms, memory 4096/1048576,
    /// scanned 800/unlimited`.
    pub fn render(&self) -> String {
        fn lim(v: Option<u64>) -> String {
            v.map_or_else(|| "unlimited".into(), |l| l.to_string())
        }
        let deadline = self
            .deadline
            .map_or_else(|| "unlimited".into(), |d| format!("{}ms", d.as_millis()));
        format!(
            "governed: time {}ms/{}, memory {}/{}, scanned {}/{}{}",
            self.elapsed.as_millis(),
            deadline,
            self.memory_charged,
            lim(self.memory_limit),
            self.bytes_scanned,
            lim(self.scan_limit),
            if self.cancelled { ", cancelled" } else { "" }
        )
    }
}

/// Why a governed query failed: the typed error plus whatever per-operator
/// metrics had accumulated when the query aborted — the partial metrics tree
/// that makes a trip diagnosable.
#[derive(Clone, Debug)]
pub struct QueryFailure {
    pub error: SnowError,
    /// Metrics tree snapshotted at abort time (absent when the failure
    /// happened before lowering, e.g. a parse error).
    pub partial_metrics: Option<OpMetrics>,
    /// Governance accounting at abort time.
    pub summary: GovernorSummary,
}

impl std::fmt::Display for QueryFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.error)
    }
}

impl std::error::Error for QueryFailure {}

impl From<QueryFailure> for SnowError {
    fn from(f: QueryFailure) -> SnowError {
        f.error
    }
}

/// A cancellable handle to a query running on a background thread, returned
/// by [`Database::execute_governed`](crate::engine::Database::execute_governed).
pub struct QueryHandle {
    gov: Arc<QueryGovernor>,
    join: Option<std::thread::JoinHandle<std::result::Result<crate::engine::QueryResult, QueryFailure>>>,
}

impl QueryHandle {
    pub(crate) fn new(
        gov: Arc<QueryGovernor>,
        join: std::thread::JoinHandle<std::result::Result<crate::engine::QueryResult, QueryFailure>>,
    ) -> QueryHandle {
        QueryHandle { gov, join: Some(join) }
    }

    /// The query's governor (shared with its workers).
    pub fn governor(&self) -> &Arc<QueryGovernor> {
        &self.gov
    }

    /// Requests cancellation; the query observes it at the next batch
    /// boundary and [`QueryHandle::join`] then returns
    /// [`SnowError::Cancelled`].
    pub fn cancel(&self) {
        self.gov.cancel();
    }

    /// True once the query thread has finished (successfully or not).
    pub fn is_finished(&self) -> bool {
        self.join.as_ref().is_none_or(|j| j.is_finished())
    }

    /// Waits for the query, returning the result or a [`QueryFailure`]
    /// carrying the typed error plus the partial metrics tree.
    // The large Err is the whole point: it carries the failure diagnosis and
    // is only ever built on the cold path.
    #[allow(clippy::result_large_err)]
    pub fn join(mut self) -> std::result::Result<crate::engine::QueryResult, QueryFailure> {
        let join = self.join.take().expect("QueryHandle joined twice");
        match join.join() {
            Ok(r) => r,
            // The query thread itself panicking is already prevented by the
            // catch_unwind in the engine; this is the last line of defense.
            Err(payload) => Err(QueryFailure {
                error: SnowError::internal("query thread", panic_message(&payload)),
                partial_metrics: None,
                summary: self.gov.summary(),
            }),
        }
    }
}

impl std::fmt::Debug for QueryHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryHandle")
            .field("finished", &self.is_finished())
            .field("cancelled", &self.gov.is_cancelled())
            .finish()
    }
}

/// Renders a panic payload for the deterministic `SnowError::Internal`
/// conversion: `&str` and `String` payloads verbatim, anything else opaque.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_checkpoint_is_ok() {
        let g = QueryGovernor::unbounded();
        assert!(g.checkpoint("Filter").is_ok());
        assert!(g.claim_checkpoint("Scan").is_ok());
        assert!(!g.is_armed());
    }

    #[test]
    fn cancel_trips_checkpoint_with_op_context() {
        let g = QueryGovernor::unbounded();
        g.cancel();
        match g.checkpoint("Aggregate") {
            Err(SnowError::Cancelled { op }) => assert_eq!(op, "Aggregate"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn deadline_trips_after_expiry() {
        let g = QueryGovernor::unbounded().with_deadline(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(2));
        assert!(matches!(
            g.checkpoint("Sort"),
            Err(SnowError::DeadlineExceeded(_))
        ));
    }

    #[test]
    fn memory_budget_is_cumulative() {
        let g = QueryGovernor::unbounded().with_memory_limit(100);
        assert!(g.charge_memory(60, "Join").is_ok());
        match g.charge_memory(60, "Join") {
            Err(SnowError::ResourceExhausted(t)) => {
                assert_eq!(t.resource, "memory");
                assert_eq!(t.used, 120);
                assert_eq!(t.limit, 100);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn scan_budget_trips() {
        let g = QueryGovernor::unbounded().with_scan_limit(10);
        assert!(matches!(
            g.charge_scanned(11, "Scan"),
            Err(SnowError::ResourceExhausted(_))
        ));
    }

    #[test]
    fn session_params_set_and_unset() {
        let mut p = SessionParams::default();
        assert!(p.is_unbounded());
        p.set("statement_timeout_in_seconds", 30).unwrap();
        assert_eq!(p.statement_timeout_secs, Some(30));
        p.set("STATEMENT_MEMORY_LIMIT", 1 << 20).unwrap();
        p.set("MAX_BYTES_SCANNED", 4096).unwrap();
        assert!(!p.is_unbounded());
        p.unset("STATEMENT_TIMEOUT_IN_SECONDS").unwrap();
        assert_eq!(p.statement_timeout_secs, None);
        // 0 clears, Snowflake-style.
        p.set("STATEMENT_MEMORY_LIMIT", 0).unwrap();
        assert_eq!(p.statement_memory_limit, None);
        assert!(p.set("NOT_A_PARAMETER", 1).is_err());
    }

    #[test]
    fn summary_renders_limits() {
        let g = QueryGovernor::unbounded().with_memory_limit(1000);
        g.charge_memory(10, "Scan").unwrap();
        let line = g.summary().render();
        assert!(line.contains("memory 10/1000"), "{line}");
        assert!(line.contains("scanned 0/unlimited"), "{line}");
    }
}
