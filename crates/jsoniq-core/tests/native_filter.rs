//! Tests for the §VII-B future-work feature: the native `ARRAY_FILTER` fast
//! path must produce identical results to the flatten/reaggregate machinery
//! while avoiding `LATERAL FLATTEN` and row-id bookkeeping entirely.

use std::sync::Arc;

use jsoniq_core::snowflake::{NestedStrategy, Translator};
use snowdb::storage::{ColumnDef, ColumnType};
use snowdb::variant::{cmp_variants, parse_json};
use snowdb::{Database, Variant};
use snowpark::Session;

fn db() -> Arc<Database> {
    let db = Database::new();
    let rows = [
        (1i64, r#"[{"PT": 12.0, "Q": 1}, {"PT": 45.0, "Q": -1}, {"PT": 3.0, "Q": 1}]"#),
        (2, r#"[]"#),
        (3, r#"[{"PT": 30.0, "Q": -1}]"#),
        (4, r#"[{"PT": 7.0, "Q": 1}, {"PT": 8.0, "Q": -1}]"#),
    ];
    db.load_table(
        "t",
        vec![
            ColumnDef::new("ID", ColumnType::Int),
            ColumnDef::new("XS", ColumnType::Variant),
        ],
        rows.iter().map(|(id, xs)| vec![Variant::Int(*id), parse_json(xs).unwrap()]),
    )
    .unwrap();
    Arc::new(db)
}

const QUERY: &str = r#"
    for $t in collection("t")
    let $hot := (for $x in $t.XS[] where $x.PT gt 10 return $x)
    return {"id": $t.ID, "n": count(for $x in $t.XS[] where $x.PT gt 5 and $x.Q eq 1 return $x),
            "hot": [ $hot ]}
"#;

fn run(native: bool) -> (Vec<Variant>, String) {
    let db = db();
    let mut t = Translator::new(Session::new(db.clone()), NestedStrategy::FlagColumn)
        .with_native_array_filter(native);
    let df = t.translate(QUERY).expect("translates");
    let sql = df.sql().to_string();
    let mut rows: Vec<Variant> = df
        .collect()
        .unwrap_or_else(|e| panic!("failed: {e}\n{sql}"))
        .rows
        .into_iter()
        .map(|mut r| r.remove(0))
        .collect();
    rows.sort_by(cmp_variants);
    (rows, sql)
}

#[test]
fn native_filter_matches_machinery() {
    let (baseline, baseline_sql) = run(false);
    let (native, native_sql) = run(true);
    assert_eq!(baseline, native);
    // The fast path removes the flatten/reaggregate plumbing.
    assert!(baseline_sql.contains("LATERAL FLATTEN"));
    assert!(!native_sql.contains("LATERAL FLATTEN"), "{native_sql}");
    assert!(native_sql.contains("ARRAY_FILTER"), "{native_sql}");
    assert!(native_sql.len() < baseline_sql.len() / 2, "fast path should shrink the SQL");
}

#[test]
fn fast_path_declines_complex_nested_queries() {
    // A return expression other than the loop variable falls back to the
    // general machinery — and must still run.
    let db = db();
    let mut t = Translator::new(Session::new(db.clone()), NestedStrategy::FlagColumn)
        .with_native_array_filter(true);
    let df = t
        .translate(
            r#"for $t in collection("t")
               return count(for $x in $t.XS[] where $x.PT gt 5 return $x.PT * 2)"#,
        )
        .unwrap();
    assert!(df.sql().contains("LATERAL FLATTEN"), "{}", df.sql());
    assert_eq!(df.collect().unwrap().rows.len(), 4);
}

#[test]
fn fast_path_handles_flipped_and_bare_comparisons() {
    let db = db();
    let mut t = Translator::new(Session::new(db.clone()), NestedStrategy::FlagColumn)
        .with_native_array_filter(true);
    // `10 lt $x.PT` (flipped) and a bare element comparison.
    let df = t
        .translate(
            r#"for $t in collection("t")
               return count(for $x in $t.XS[] where 10 lt $x.PT return $x)"#,
        )
        .unwrap();
    assert!(df.sql().contains("ARRAY_FILTER"), "{}", df.sql());
    let counts: Vec<Variant> =
        df.collect().unwrap().rows.into_iter().map(|mut r| r.remove(0)).collect();
    let total: i64 = counts.iter().map(|v| v.as_i64().unwrap()).sum();
    assert_eq!(total, 3); // PT in {12, 45, 30}
}

#[test]
fn order_preservation_returns_input_order() {
    // Without preservation the engine may reorder (it happens to keep scan
    // order today); with preservation the order is *guaranteed* by an explicit
    // sort over the injected order column — verify it survives nested queries.
    let db = db();
    let q = r#"for $t in collection("t")
               let $hot := (for $x in $t.XS[] where $x.PT gt 10 return $x.PT)
               return {"id": $t.ID, "n": count($hot)}"#;
    let mut t = Translator::new(Session::new(db.clone()), NestedStrategy::FlagColumn)
        .with_order_preservation(true);
    let df = t.translate(q).unwrap();
    assert!(df.sql().contains("ORDER BY"), "{}", df.sql());
    let ids: Vec<i64> = df
        .collect()
        .unwrap()
        .rows
        .iter()
        .map(|r| r[0].get_field("id").as_i64().unwrap())
        .collect();
    assert_eq!(ids, vec![1, 2, 3, 4]);
}
