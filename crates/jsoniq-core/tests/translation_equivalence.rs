//! Differential tests: for each query, the translated single SQL query must
//! produce the same multiset of results as the JSONiq interpreter — the
//! correctness property the paper's translation claims (§III-B: "identical
//! behavior and semantics as the original JSONiq query").

use std::sync::Arc;

use jsoniq_core::interp::{DatabaseCollections, Interpreter};
use jsoniq_core::snowflake::{translate_query, NestedStrategy};
use snowdb::storage::{ColumnDef, ColumnType};
use snowdb::variant::{cmp_variants, parse_json};
use snowdb::{Database, Variant};

/// Builds a small physics-flavoured database: typed EVENT/MET columns plus
/// VARIANT arrays for particles — the paper's multi-column staging (§III-C).
fn db() -> Arc<Database> {
    let db = Database::new();
    let rows = [
        (1i64, 27.5, r#"[{"PT": 12.0, "ETA": 0.5, "CHARGE": 1}, {"PT": 45.0, "ETA": -2.1, "CHARGE": -1}]"#,
            r#"[{"PT": 31.0, "ETA": 0.2}]"#),
        (2, 14.0, r#"[]"#, r#"[{"PT": 11.0, "ETA": 1.4}, {"PT": 52.0, "ETA": 0.9}]"#),
        (3, 99.9, r#"[{"PT": 7.0, "ETA": 3.0, "CHARGE": 1}]"#, r#"[]"#),
        (4, 55.5, r#"[{"PT": 60.0, "ETA": -0.4, "CHARGE": -1}, {"PT": 8.5, "ETA": 0.1, "CHARGE": 1}, {"PT": 19.0, "ETA": 2.2, "CHARGE": -1}]"#,
            r#"[{"PT": 42.0, "ETA": -1.0}, {"PT": 13.5, "ETA": 0.0}]"#),
        (5, 3.25, r#"[{"PT": 22.0, "ETA": 1.0, "CHARGE": 1}]"#, r#"[{"PT": 5.0, "ETA": 2.5}]"#),
    ];
    db.load_table(
        "hep",
        vec![
            ColumnDef::new("EVENT", ColumnType::Int),
            ColumnDef::new("MET", ColumnType::Float),
            ColumnDef::new("MUON", ColumnType::Variant),
            ColumnDef::new("JET", ColumnType::Variant),
        ],
        rows.iter().map(|(id, met, muon, jet)| {
            vec![
                Variant::Int(*id),
                Variant::Float(*met),
                parse_json(muon).unwrap(),
                parse_json(jet).unwrap(),
            ]
        }),
    )
    .unwrap();
    Arc::new(db)
}

/// Runs a query through both paths and asserts multiset equality.
fn check(src: &str, strategy: NestedStrategy) {
    let db = db();
    // Ground truth: interpreter.
    let provider = DatabaseCollections { db: &db };
    let mut expected = Interpreter::new(&provider).eval_query(src).unwrap();
    // Translation: one SQL query.
    let df = translate_query(db.clone(), src, strategy).unwrap();
    let res = df.collect().unwrap_or_else(|e| panic!("SQL failed for:\n{}\n{e}", df.sql()));
    let mut actual: Vec<Variant> =
        res.rows.into_iter().map(|mut r| r.remove(0)).collect();
    // The translation does not preserve input order (paper §IV-E); compare as
    // multisets via canonical sort.
    expected.sort_by(cmp_variants);
    actual.sort_by(cmp_variants);
    assert_eq!(
        expected,
        actual,
        "mismatch for query:\n{src}\nSQL:\n{}",
        translate_query(db, src, strategy).unwrap().sql()
    );
}

fn check_both(src: &str) {
    check(src, NestedStrategy::FlagColumn);
    check(src, NestedStrategy::JoinBased);
}

#[test]
fn projection() {
    check_both(r#"for $e in collection("hep") return $e.MET"#);
}

#[test]
fn filter_on_scalar_column() {
    check_both(
        r#"for $e in collection("hep")
           where $e.MET gt 20
           return $e.EVENT"#,
    );
}

#[test]
fn unbox_and_filter() {
    // The paper's Listing 1 shape.
    check_both(
        r#"for $jet in collection("hep").JET[]
           where abs($jet.ETA) lt 1
           return $jet.PT"#,
    );
}

#[test]
fn let_with_arithmetic() {
    check_both(
        r#"for $e in collection("hep")
           let $double := $e.MET * 2
           where $double le 60
           return $double + 1"#,
    );
}

#[test]
fn group_by_histogram() {
    check_both(
        r#"for $e in collection("hep")
           group by $bin := floor($e.MET div 25)
           return {"bin": $bin, "n": count($e)}"#,
    );
}

#[test]
fn group_by_with_sum_over_grouped_expression() {
    check_both(
        r#"for $e in collection("hep")
           group by $k := $e.EVENT mod 2
           return {"k": $k, "total": sum($e.MET), "hi": max($e.MET)}"#,
    );
}

#[test]
fn nested_query_in_let_count() {
    // Paper Listing 4: nested query must not remove parents.
    check_both(
        r#"for $e in collection("hep")
           let $fast := (
             for $m in $e.MUON[]
             where $m.PT gt 10
             return $m.PT
           )
           return count($fast)"#,
    );
}

#[test]
fn nested_query_sum_aggregation() {
    check_both(
        r#"for $e in collection("hep")
           return sum(
             for $j in $e.JET[]
             where $j.PT gt 12
             return $j.PT
           )"#,
    );
}

#[test]
fn nested_query_in_where() {
    check_both(
        r#"for $e in collection("hep")
           where count(for $j in $e.JET[] where $j.PT gt 10 return $j) ge 1
           return $e.EVENT"#,
    );
}

#[test]
fn exists_over_nested_query() {
    check_both(
        r#"for $e in collection("hep")
           where exists(for $m in $e.MUON[] where $m.CHARGE eq 1 return $m)
           return $e.EVENT"#,
    );
}

#[test]
fn quantified_some() {
    check_both(
        r#"for $e in collection("hep")
           where some $m in $e.MUON[] satisfies $m.PT gt 40
           return $e.EVENT"#,
    );
}

#[test]
fn positional_at_variables_pairs() {
    // Pair generation within an event via double unboxing + index comparison.
    check_both(
        r#"for $e in collection("hep")
           for $m1 at $i1 in $e.MUON[]
           for $m2 at $i2 in $e.MUON[]
           where $i1 lt $i2
           return $m1.PT + $m2.PT"#,
    );
}

#[test]
fn object_construction() {
    check_both(
        r#"for $e in collection("hep")
           where $e.MET lt 50
           return {"id": $e.EVENT, "met": $e.MET, "njet": size($e.JET)}"#,
    );
}

#[test]
fn order_by_translates() {
    // Order must match exactly here (not just as multiset); check manually.
    let db = db();
    let src = r#"for $e in collection("hep")
                 order by $e.MET descending
                 return $e.EVENT"#;
    let provider = DatabaseCollections { db: &db };
    let expected = Interpreter::new(&provider).eval_query(src).unwrap();
    let df = translate_query(db, src, NestedStrategy::FlagColumn).unwrap();
    let actual: Vec<Variant> =
        df.collect().unwrap().rows.into_iter().map(|mut r| r.remove(0)).collect();
    assert_eq!(expected, actual);
}

#[test]
fn min_max_over_nested_query() {
    check_both(
        r#"for $e in collection("hep")
           let $m := max(for $j in $e.JET[] return $j.PT)
           where $m gt 0
           return $m"#,
    );
}

#[test]
fn min_filter_first_pattern() {
    // The argmin pattern used by ADL Q6/Q8: min + equality filter + first.
    check_both(
        r#"for $e in collection("hep")
           where size($e.JET) ge 1
           let $best := min(for $j in $e.JET[] return abs($j.ETA - 0.5))
           let $chosen := (for $j in $e.JET[] where abs($j.ETA - 0.5) eq $best return $j.PT)[1]
           return $chosen"#,
    );
}

#[test]
fn array_concatenation_of_unboxes() {
    check_both(
        r#"for $e in collection("hep")
           let $parts := [ $e.MUON[], $e.JET[] ]
           return size($parts)"#,
    );
}

#[test]
fn nested_query_array_roundtrip() {
    check_both(
        r#"for $e in collection("hep")
           let $pts := (for $m in $e.MUON[] where $m.PT ge 10 return $m.PT)
           return {"event": $e.EVENT, "pts": [ $pts ]}"#,
    );
}

#[test]
fn if_then_else() {
    check_both(
        r#"for $e in collection("hep")
           return if ($e.MET gt 50) then "high" else "low""#,
    );
}

#[test]
fn function_inlining_through_translation() {
    check_both(
        r#"declare function dphi($a, $b) { abs($a - $b) };
           for $e in collection("hep")
           for $j in $e.JET[]
           return dphi($j.ETA, 0.5)"#,
    );
}

#[test]
fn whole_row_reference_reconstructs_object() {
    let db = db();
    let src = r#"for $e in collection("hep") where $e.EVENT eq 1 return $e"#;
    let df = translate_query(db, src, NestedStrategy::FlagColumn).unwrap();
    let res = df.collect().unwrap();
    let obj = res.rows[0][0].as_object().unwrap();
    assert_eq!(obj.get("EVENT"), Some(&Variant::Int(1)));
    assert!(obj.get("MUON").unwrap().as_array().is_some());
}

#[test]
fn two_collection_join() {
    // Successive for clauses over collections express a join (paper §II-E).
    let db = db();
    db.load_table(
        "names",
        vec![
            ColumnDef::new("ID", ColumnType::Int),
            ColumnDef::new("NAME", ColumnType::Str),
        ],
        vec![
            vec![Variant::Int(1), Variant::str("one")],
            vec![Variant::Int(3), Variant::str("three")],
        ],
    )
    .unwrap();
    let src = r#"for $e in collection("hep")
                 for $n in collection("names")
                 where $e.EVENT eq $n.ID
                 return $n.NAME"#;
    let provider = DatabaseCollections { db: &db };
    let mut expected = Interpreter::new(&provider).eval_query(src).unwrap();
    let df = translate_query(db.clone(), src, NestedStrategy::FlagColumn).unwrap();
    let mut actual: Vec<Variant> =
        df.collect().unwrap().rows.into_iter().map(|mut r| r.remove(0)).collect();
    expected.sort_by(cmp_variants);
    actual.sort_by(cmp_variants);
    assert_eq!(expected, actual);
}

#[test]
fn translation_is_a_single_sql_statement() {
    let db = db();
    let df = translate_query(
        db,
        r#"for $e in collection("hep")
           let $n := count(for $m in $e.MUON[] where $m.PT gt 10 return $m)
           where $n ge 1
           return $e.EVENT"#,
        NestedStrategy::FlagColumn,
    )
    .unwrap();
    let sql = df.sql();
    // One statement, no UDFs, parseable by the engine's SQL front-end.
    assert!(!sql.contains(';'));
    assert!(snowdb::sql::parse_query(sql).is_ok());
}
