//! Property-based tests for the JSONiq front-end and the translation layer.

use std::sync::Arc;

use proptest::prelude::*;

use jsoniq_core::interp::{DatabaseCollections, Interpreter, MemoryCollections};
use jsoniq_core::snowflake::{translate_query, NestedStrategy};
use snowdb::storage::{ColumnDef, ColumnType};
use snowdb::variant::{cmp_variants, Object};
use snowdb::{Database, Variant};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The JSONiq lexer and parser never panic on arbitrary input.
    #[test]
    fn frontend_never_panics(s in "\\PC*") {
        let _ = jsoniq_core::parser::parse(&s);
    }

    #[test]
    fn frontend_never_panics_on_queryish_text(
        s in "(for|let|where|return|\\$[a-z]+|[0-9]+|\\(|\\)|\\[|\\]|\\.|,|:=| )*"
    ) {
        let _ = jsoniq_core::parser::parse(&s);
    }

    /// Interpreter arithmetic respects the engine's numeric semantics.
    #[test]
    fn interp_arithmetic_matches_rust(a in -10_000i64..10_000, b in -10_000i64..10_000) {
        let mem = MemoryCollections::default();
        let it = Interpreter::new(&mem);
        let r = it.eval_query(&format!("{a} + {b}")).unwrap();
        prop_assert_eq!(r, vec![Variant::Int(a + b)]);
        let r = it.eval_query(&format!("{a} * {b}")).unwrap();
        prop_assert_eq!(r, vec![Variant::Int(a * b)]);
        if b != 0 {
            let r = it.eval_query(&format!("({a}) idiv ({b})")).unwrap();
            prop_assert_eq!(r, vec![Variant::Int(a / b)]);
            let r = it.eval_query(&format!("({a}) mod ({b})")).unwrap();
            prop_assert_eq!(r, vec![Variant::Int(a % b)]);
        }
    }

    /// FLWOR filtering agrees with a plain Rust filter.
    #[test]
    fn flwor_filter_matches_rust(xs in prop::collection::vec(-100i64..100, 0..30),
                                 bound in -100i64..100) {
        let mut mem = MemoryCollections::default();
        mem.collections.insert("xs".into(), xs.iter().map(|&i| Variant::Int(i)).collect());
        let it = Interpreter::new(&mem);
        let got = it
            .eval_query(&format!(
                r#"for $x in collection("xs") where $x ge {bound} return $x"#
            ))
            .unwrap();
        let want: Vec<Variant> =
            xs.iter().filter(|&&x| x >= bound).map(|&x| Variant::Int(x)).collect();
        prop_assert_eq!(got, want);
    }

    /// Differential property: for random datasets, the translated SQL agrees
    /// with the interpreter on a nested-query template, under both strategies.
    #[test]
    fn translation_matches_interpreter_on_random_data(
        rows in prop::collection::vec(
            (any::<i64>(), prop::collection::vec(-50i64..50, 0..5)),
            1..15
        ),
        threshold in -50i64..50,
    ) {
        let db = Database::new();
        db.load_table(
            "t",
            vec![
                ColumnDef::new("ID", ColumnType::Int),
                ColumnDef::new("XS", ColumnType::Variant),
            ],
            rows.iter().map(|(id, xs)| {
                vec![
                    Variant::Int(*id),
                    Variant::array(xs.iter().map(|&x| Variant::Int(x)).collect()),
                ]
            }),
        ).unwrap();
        let db = Arc::new(db);
        let src = format!(
            r#"for $t in collection("t")
               let $big := (for $x in $t.XS[] where $x gt {threshold} return $x)
               return {{"n": count($big), "s": sum($big), "all": [ $big ]}}"#
        );
        let provider = DatabaseCollections { db: &db };
        let mut expected = Interpreter::new(&provider).eval_query(&src).unwrap();
        expected.sort_by(cmp_variants);
        for strategy in [NestedStrategy::FlagColumn, NestedStrategy::JoinBased] {
            let df = translate_query(db.clone(), &src, strategy).unwrap();
            let mut got: Vec<Variant> = df
                .collect()
                .unwrap()
                .rows
                .into_iter()
                .map(|mut r| r.remove(0))
                .collect();
            got.sort_by(cmp_variants);
            prop_assert_eq!(&expected, &got, "strategy {:?}", strategy);
        }
    }

    /// Group-by counts partition the input on both execution paths.
    #[test]
    fn group_by_partition_property(xs in prop::collection::vec(0i64..6, 1..40)) {
        let db = Database::new();
        db.load_table(
            "t",
            vec![ColumnDef::new("X", ColumnType::Int)],
            xs.iter().map(|&x| vec![Variant::Int(x)]),
        ).unwrap();
        let db = Arc::new(db);
        let src = r#"for $t in collection("t")
                     group by $k := $t.X
                     return {"k": $k, "n": count($t)}"#;
        let df = translate_query(db.clone(), src, NestedStrategy::FlagColumn).unwrap();
        let total: i64 = df
            .collect()
            .unwrap()
            .rows
            .iter()
            .map(|r| r[0].get_field("n").as_i64().unwrap())
            .sum();
        prop_assert_eq!(total, xs.len() as i64);
    }
}

/// Non-random companion: objects survive the whole pipeline intact.
#[test]
fn object_identity_through_translation() {
    let db = Database::new();
    let mut o = Object::new();
    o.insert("A", Variant::Int(1));
    o.insert("B", Variant::array(vec![Variant::str("x"), Variant::Null]));
    db.load_table(
        "t",
        vec![ColumnDef::new("V", ColumnType::Variant)],
        vec![vec![Variant::object(o.clone())]],
    )
    .unwrap();
    let df = translate_query(
        Arc::new(db),
        r#"for $t in collection("t") return $t.V"#,
        NestedStrategy::FlagColumn,
    )
    .unwrap();
    let rows = df.collect().unwrap().rows;
    assert_eq!(rows[0][0], Variant::object(o));
}
