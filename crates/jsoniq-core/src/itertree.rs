//! The iterator tree.
//!
//! Mirrors RumbleDB's runtime-iterator layer (paper §III-A3): the rewritten
//! expression tree is lowered into a tree of iterators split into **FLWOR
//! clause iterators** (chained through their left child) and **non-FLWOR
//! iterators** (expression fragments). Each iterator supports two execution
//! modes: local interpretation ([`crate::interp`], the RumbleDB-like baseline)
//! and native Snowflake translation ([`crate::snowflake`], the paper's
//! `processNativeSnowflake`).

use crate::ast::{BinaryOp, Clause, Expr, Flwor, Item, JResult, JsoniqError};

/// Built-in functions resolved at iterator-tree construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Builtin {
    // Sequence aggregates.
    Count,
    Sum,
    Min,
    Max,
    Avg,
    Exists,
    Empty,
    // Scalar math.
    Abs,
    Sqrt,
    Exp,
    Log,
    Pow,
    Floor,
    Ceiling,
    Round,
    Sin,
    Cos,
    Tan,
    Asin,
    Acos,
    Atan,
    Atan2,
    Sinh,
    Cosh,
    Tanh,
    Pi,
    // Arrays / objects.
    Size,
    Keys,
    Members,
    // Logic / misc.
    Not,
    Boolean,
    Head,
    Integer,
    Double,
    StringFn,
    Concat,
    Substring,
    StringLength,
}

impl Builtin {
    /// Resolves a built-in by JSONiq name.
    pub fn from_name(name: &str) -> Option<Builtin> {
        Some(match name {
            "count" => Builtin::Count,
            "sum" => Builtin::Sum,
            "min" => Builtin::Min,
            "max" => Builtin::Max,
            "avg" => Builtin::Avg,
            "exists" => Builtin::Exists,
            "empty" => Builtin::Empty,
            "abs" => Builtin::Abs,
            "sqrt" => Builtin::Sqrt,
            "exp" => Builtin::Exp,
            "log" => Builtin::Log,
            "pow" | "power" => Builtin::Pow,
            "floor" => Builtin::Floor,
            "ceiling" => Builtin::Ceiling,
            "round" => Builtin::Round,
            "sin" => Builtin::Sin,
            "cos" => Builtin::Cos,
            "tan" => Builtin::Tan,
            "asin" => Builtin::Asin,
            "acos" => Builtin::Acos,
            "atan" => Builtin::Atan,
            "atan2" => Builtin::Atan2,
            "sinh" => Builtin::Sinh,
            "cosh" => Builtin::Cosh,
            "tanh" => Builtin::Tanh,
            "pi" => Builtin::Pi,
            "size" => Builtin::Size,
            "keys" => Builtin::Keys,
            "members" => Builtin::Members,
            "not" => Builtin::Not,
            "boolean" => Builtin::Boolean,
            "head" => Builtin::Head,
            "integer" | "int" => Builtin::Integer,
            "double" | "number" => Builtin::Double,
            "string" => Builtin::StringFn,
            "concat" => Builtin::Concat,
            "substring" => Builtin::Substring,
            "string_length" | "string-length" => Builtin::StringLength,
            _ => return None,
        })
    }
}

/// One runtime iterator. FLWOR clause iterators hold their predecessor in
/// `left` (paper Fig. 3b); the first clause of a FLWOR has `left == None`.
#[derive(Clone, Debug, PartialEq)]
pub enum RIter {
    // ---- FLWOR clause iterators ----
    ForClause {
        left: Option<Box<RIter>>,
        var: String,
        at: Option<String>,
        allowing_empty: bool,
        expr: Box<RIter>,
    },
    LetClause {
        left: Option<Box<RIter>>,
        var: String,
        expr: Box<RIter>,
    },
    WhereClause {
        left: Box<RIter>,
        pred: Box<RIter>,
    },
    GroupByClause {
        left: Box<RIter>,
        keys: Vec<(String, Option<RIter>)>,
    },
    OrderByClause {
        left: Box<RIter>,
        keys: Vec<(RIter, bool)>,
    },
    CountClause {
        left: Box<RIter>,
        var: String,
    },
    ReturnClause {
        left: Box<RIter>,
        expr: Box<RIter>,
    },
    // ---- non-FLWOR iterators ----
    Literal(Item),
    VarRef(String),
    Comparison { op: BinaryOp, left: Box<RIter>, right: Box<RIter> },
    Arithmetic { op: BinaryOp, left: Box<RIter>, right: Box<RIter> },
    Logical { op: BinaryOp, left: Box<RIter>, right: Box<RIter> },
    StringConcat { left: Box<RIter>, right: Box<RIter> },
    Range { left: Box<RIter>, right: Box<RIter> },
    Not(Box<RIter>),
    Neg(Box<RIter>),
    ObjectLookup { base: Box<RIter>, field: String },
    ArrayUnbox { base: Box<RIter> },
    ArrayLookup { base: Box<RIter>, index: Box<RIter> },
    Predicate { base: Box<RIter>, pred: Box<RIter> },
    ObjectConstructor(Vec<(String, RIter)>),
    ArrayConstructor(Vec<RIter>),
    Sequence(Vec<RIter>),
    If { cond: Box<RIter>, then: Box<RIter>, else_: Box<RIter> },
    FunctionCall { func: Builtin, args: Vec<RIter> },
    Collection(String),
}

/// Counts of iterator kinds, reproducing the paper's Table II split.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IterCounts {
    pub flwor: usize,
    pub other: usize,
}

impl IterCounts {
    pub fn total(&self) -> usize {
        self.flwor + self.other
    }
}

/// Builds the iterator tree from a rewritten expression tree.
pub fn build(e: &Expr) -> JResult<RIter> {
    Ok(match e {
        Expr::Literal(v) => RIter::Literal(v.clone()),
        Expr::VarRef(v) => RIter::VarRef(v.clone()),
        Expr::ObjectConstructor(pairs) => RIter::ObjectConstructor(
            pairs
                .iter()
                .map(|(k, v)| Ok((k.clone(), build(v)?)))
                .collect::<JResult<_>>()?,
        ),
        Expr::ArrayConstructor(items) => {
            RIter::ArrayConstructor(items.iter().map(build).collect::<JResult<_>>()?)
        }
        Expr::Sequence(items) => {
            RIter::Sequence(items.iter().map(build).collect::<JResult<_>>()?)
        }
        Expr::Flwor(fl) => build_flwor(fl)?,
        Expr::If { cond, then, else_ } => RIter::If {
            cond: Box::new(build(cond)?),
            then: Box::new(build(then)?),
            else_: Box::new(build(else_)?),
        },
        Expr::Binary { op, left, right } => {
            let l = Box::new(build(left)?);
            let r = Box::new(build(right)?);
            match op {
                BinaryOp::And | BinaryOp::Or => RIter::Logical { op: *op, left: l, right: r },
                BinaryOp::Eq
                | BinaryOp::Ne
                | BinaryOp::Lt
                | BinaryOp::Le
                | BinaryOp::Gt
                | BinaryOp::Ge => RIter::Comparison { op: *op, left: l, right: r },
                BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div | BinaryOp::IDiv
                | BinaryOp::Mod => RIter::Arithmetic { op: *op, left: l, right: r },
                BinaryOp::To => RIter::Range { left: l, right: r },
                BinaryOp::Concat => RIter::StringConcat { left: l, right: r },
            }
        }
        Expr::Neg(x) => RIter::Neg(Box::new(build(x)?)),
        Expr::Not(x) => RIter::Not(Box::new(build(x)?)),
        Expr::ObjectLookup { base, field } => {
            RIter::ObjectLookup { base: Box::new(build(base)?), field: field.clone() }
        }
        Expr::ArrayUnbox { base } => RIter::ArrayUnbox { base: Box::new(build(base)?) },
        Expr::ArrayLookup { base, index } => RIter::ArrayLookup {
            base: Box::new(build(base)?),
            index: Box::new(build(index)?),
        },
        Expr::Predicate { base, pred } => RIter::Predicate {
            base: Box::new(build(base)?),
            pred: Box::new(build(pred)?),
        },
        Expr::FunctionCall { name, args } => {
            if name == "collection" {
                match args.as_slice() {
                    [Expr::Literal(Item::Str(s))] => return Ok(RIter::Collection(s.to_string())),
                    _ => {
                        return Err(JsoniqError::Static(
                            "collection() requires one string literal argument".into(),
                        ))
                    }
                }
            }
            let func = Builtin::from_name(name).ok_or_else(|| {
                JsoniqError::Static(format!("unknown function '{name}'"))
            })?;
            RIter::FunctionCall { func, args: args.iter().map(build).collect::<JResult<_>>()? }
        }
    })
}

fn build_flwor(fl: &Flwor) -> JResult<RIter> {
    let mut chain: Option<Box<RIter>> = None;
    for c in &fl.clauses {
        let node = match c {
            Clause::For { var, at, expr, allowing_empty } => RIter::ForClause {
                left: chain.take(),
                var: var.clone(),
                at: at.clone(),
                allowing_empty: *allowing_empty,
                expr: Box::new(build(expr)?),
            },
            Clause::Let { var, expr } => RIter::LetClause {
                left: chain.take(),
                var: var.clone(),
                expr: Box::new(build(expr)?),
            },
            Clause::Where(p) => RIter::WhereClause {
                left: chain.take().ok_or_else(|| {
                    JsoniqError::Static("where cannot start a FLWOR".into())
                })?,
                pred: Box::new(build(p)?),
            },
            Clause::GroupBy { keys } => RIter::GroupByClause {
                left: chain.take().ok_or_else(|| {
                    JsoniqError::Static("group by cannot start a FLWOR".into())
                })?,
                keys: keys
                    .iter()
                    .map(|(v, e)| Ok((v.clone(), e.as_ref().map(build).transpose()?)))
                    .collect::<JResult<_>>()?,
            },
            Clause::OrderBy { keys } => RIter::OrderByClause {
                left: chain.take().ok_or_else(|| {
                    JsoniqError::Static("order by cannot start a FLWOR".into())
                })?,
                keys: keys
                    .iter()
                    .map(|(e, d)| Ok((build(e)?, *d)))
                    .collect::<JResult<_>>()?,
            },
            Clause::Count(v) => RIter::CountClause {
                left: chain.take().ok_or_else(|| {
                    JsoniqError::Static("count cannot start a FLWOR".into())
                })?,
                var: v.clone(),
            },
        };
        chain = Some(Box::new(node));
    }
    Ok(RIter::ReturnClause {
        left: chain.ok_or_else(|| JsoniqError::Static("empty FLWOR".into()))?,
        expr: Box::new(build(&fl.return_expr)?),
    })
}

impl RIter {
    /// True for FLWOR clause iterators.
    pub fn is_flwor(&self) -> bool {
        matches!(
            self,
            RIter::ForClause { .. }
                | RIter::LetClause { .. }
                | RIter::WhereClause { .. }
                | RIter::GroupByClause { .. }
                | RIter::OrderByClause { .. }
                | RIter::CountClause { .. }
                | RIter::ReturnClause { .. }
        )
    }

    /// Counts iterators by class (paper Table II).
    pub fn counts(&self) -> IterCounts {
        let mut c = IterCounts::default();
        self.visit(&mut |it| {
            if it.is_flwor() {
                c.flwor += 1;
            } else {
                c.other += 1;
            }
        });
        c
    }

    /// Pre-order traversal over all iterators.
    pub fn visit(&self, f: &mut dyn FnMut(&RIter)) {
        f(self);
        match self {
            RIter::ForClause { left, expr, .. } => {
                if let Some(l) = left {
                    l.visit(f);
                }
                expr.visit(f);
            }
            RIter::LetClause { left, expr, .. } => {
                if let Some(l) = left {
                    l.visit(f);
                }
                expr.visit(f);
            }
            RIter::WhereClause { left, pred } => {
                left.visit(f);
                pred.visit(f);
            }
            RIter::GroupByClause { left, keys } => {
                left.visit(f);
                for (_, e) in keys {
                    if let Some(e) = e {
                        e.visit(f);
                    }
                }
            }
            RIter::OrderByClause { left, keys } => {
                left.visit(f);
                for (e, _) in keys {
                    e.visit(f);
                }
            }
            RIter::CountClause { left, .. } => left.visit(f),
            RIter::ReturnClause { left, expr } => {
                left.visit(f);
                expr.visit(f);
            }
            RIter::Literal(_) | RIter::VarRef(_) | RIter::Collection(_) => {}
            RIter::Comparison { left, right, .. }
            | RIter::Arithmetic { left, right, .. }
            | RIter::Logical { left, right, .. }
            | RIter::StringConcat { left, right }
            | RIter::Range { left, right } => {
                left.visit(f);
                right.visit(f);
            }
            RIter::Not(x) | RIter::Neg(x) | RIter::ArrayUnbox { base: x } => x.visit(f),
            RIter::ObjectLookup { base, .. } => base.visit(f),
            RIter::ArrayLookup { base, index } => {
                base.visit(f);
                index.visit(f);
            }
            RIter::Predicate { base, pred } => {
                base.visit(f);
                pred.visit(f);
            }
            RIter::ObjectConstructor(pairs) => {
                for (_, v) in pairs {
                    v.visit(f);
                }
            }
            RIter::ArrayConstructor(items) | RIter::Sequence(items) => {
                for i in items {
                    i.visit(f);
                }
            }
            RIter::If { cond, then, else_ } => {
                cond.visit(f);
                then.visit(f);
                else_.visit(f);
            }
            RIter::FunctionCall { args, .. } => {
                for a in args {
                    a.visit(f);
                }
            }
        }
    }
}

/// Convenience: parse + rewrite + lower a JSONiq query to its iterator tree.
pub fn compile(src: &str) -> JResult<RIter> {
    let module = crate::parser::parse(src)?;
    let expr = crate::expr::rewrite(&module)?;
    build(&expr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listing1_iterator_shape() {
        let it = compile(
            r#"for $jet in collection("adl").Jet[]
               where abs($jet.eta) lt 1
               return $jet.pt"#,
        )
        .unwrap();
        // Root is the return clause, whose left child is the where clause,
        // whose left child is the for clause (paper Fig. 3b).
        match &it {
            RIter::ReturnClause { left, .. } => match &**left {
                RIter::WhereClause { left, .. } => {
                    assert!(matches!(&**left, RIter::ForClause { .. }))
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn counts_split_flwor_vs_other() {
        let it = compile(
            r#"for $jet in collection("adl").Jet[]
               where abs($jet.eta) lt 1
               return $jet.pt"#,
        )
        .unwrap();
        let c = it.counts();
        // for, where, return
        assert_eq!(c.flwor, 3);
        assert!(c.other >= 6); // collection, lookup, unbox, abs, lookup, literal, cmp, ...
        assert_eq!(c.total(), c.flwor + c.other);
    }

    #[test]
    fn collection_requires_literal() {
        let err = compile(r#"for $x in collection($name) return $x"#).unwrap_err();
        assert!(matches!(err, JsoniqError::Static(_)));
    }

    #[test]
    fn unknown_function_is_static_error() {
        let err = compile("nosuchfn(1)").unwrap_err();
        assert!(matches!(err, JsoniqError::Static(_)));
    }

    #[test]
    fn group_by_key_expression_is_counted() {
        let it = compile(
            r#"for $e in collection("t")
               group by $k := $e.X
               return count($e)"#,
        )
        .unwrap();
        let c = it.counts();
        assert_eq!(c.flwor, 3); // for, group by, return
    }
}
