//! JSONiq tokenizer.
//!
//! JSONiq keywords are contextual (`for`, `where`, `eq`, ... are all plain
//! names); the parser decides. Names are case-sensitive. Strings use JSON
//! double-quote syntax with escapes. Comments are XQuery-style `(: ... :)`.

use crate::ast::{JResult, JsoniqError};

/// One JSONiq token.
#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    /// `$name`
    Var(String),
    /// Bare name (identifier or contextual keyword).
    Name(String),
    Int(i64),
    Float(f64),
    Str(String),
    /// Punctuation: `{ } [ ] ( ) , : ; . := [[ ]] + - * = != < <= > >= ||`
    Sym(&'static str),
    Eof,
}

impl Tok {
    /// True when this token is the given bare name (exact case — JSONiq
    /// keywords are lowercase).
    pub fn is_name(&self, n: &str) -> bool {
        matches!(self, Tok::Name(t) if t == n)
    }

    pub fn is_sym(&self, s: &str) -> bool {
        matches!(self, Tok::Sym(t) if *t == s)
    }
}

/// Tokenizes JSONiq source.
pub fn tokenize(src: &str) -> JResult<Vec<Tok>> {
    let b = src.as_bytes();
    let mut out = Vec::with_capacity(src.len() / 4);
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            c if c.is_ascii_whitespace() => i += 1,
            b'(' if b.get(i + 1) == Some(&b':') => {
                // Nested (: comments :).
                let mut depth = 1;
                let mut j = i + 2;
                while depth > 0 {
                    if j + 1 >= b.len() {
                        return Err(JsoniqError::Lex("unterminated comment".into()));
                    }
                    if b[j] == b'(' && b[j + 1] == b':' {
                        depth += 1;
                        j += 2;
                    } else if b[j] == b':' && b[j + 1] == b')' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                i = j;
            }
            b'$' => {
                i += 1;
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                if start == i {
                    return Err(JsoniqError::Lex(format!("empty variable name at byte {i}")));
                }
                out.push(Tok::Var(std::str::from_utf8(&b[start..i]).unwrap().to_string()));
            }
            b'"' => {
                // Reuse the JSON string grammar via the snowdb parser by
                // scanning to the closing quote, then unescaping.
                let start = i;
                i += 1;
                while i < b.len() {
                    match b[i] {
                        b'\\' => i += 2,
                        b'"' => break,
                        _ => i += 1,
                    }
                }
                if i >= b.len() {
                    return Err(JsoniqError::Lex("unterminated string literal".into()));
                }
                i += 1;
                let raw = std::str::from_utf8(&b[start..i])
                    .map_err(|_| JsoniqError::Lex("invalid utf-8 in string".into()))?;
                let parsed = snowdb::variant::parse_json(raw)
                    .map_err(|e| JsoniqError::Lex(format!("bad string literal: {e}")))?;
                match parsed {
                    snowdb::Variant::Str(s) => out.push(Tok::Str(s.to_string())),
                    _ => return Err(JsoniqError::Lex("bad string literal".into())),
                }
            }
            b'0'..=b'9' => {
                let start = i;
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < b.len() && b[i] == b'.' && b.get(i + 1).is_some_and(u8::is_ascii_digit) {
                    is_float = true;
                    i += 1;
                    while i < b.len() && b[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < b.len() && (b[i] == b'e' || b[i] == b'E') {
                    let mut j = i + 1;
                    if j < b.len() && (b[j] == b'+' || b[j] == b'-') {
                        j += 1;
                    }
                    if j < b.len() && b[j].is_ascii_digit() {
                        is_float = true;
                        i = j;
                        while i < b.len() && b[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = std::str::from_utf8(&b[start..i]).unwrap();
                if is_float {
                    out.push(Tok::Float(text.parse().map_err(|_| {
                        JsoniqError::Lex(format!("bad number '{text}'"))
                    })?));
                } else {
                    out.push(Tok::Int(text.parse().map_err(|_| {
                        JsoniqError::Lex(format!("integer literal '{text}' overflows"))
                    })?));
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                out.push(Tok::Name(std::str::from_utf8(&b[start..i]).unwrap().to_string()));
            }
            _ => {
                let two: &[u8] = if i + 1 < b.len() { &b[i..i + 2] } else { &b[i..i + 1] };
                let sym2: Option<&'static str> = match two {
                    b":=" => Some(":="),
                    b"[[" => Some("[["),
                    b"]]" => Some("]]"),
                    b"!=" => Some("!="),
                    b"<=" => Some("<="),
                    b">=" => Some(">="),
                    b"||" => Some("||"),
                    _ => None,
                };
                if let Some(s) = sym2 {
                    out.push(Tok::Sym(s));
                    i += 2;
                    continue;
                }
                let sym1: Option<&'static str> = match b[i] {
                    b'{' => Some("{"),
                    b'}' => Some("}"),
                    b'[' => Some("["),
                    b']' => Some("]"),
                    b'(' => Some("("),
                    b')' => Some(")"),
                    b',' => Some(","),
                    b':' => Some(":"),
                    b';' => Some(";"),
                    b'.' => Some("."),
                    b'+' => Some("+"),
                    b'-' => Some("-"),
                    b'*' => Some("*"),
                    b'=' => Some("="),
                    b'<' => Some("<"),
                    b'>' => Some(">"),
                    b'/' => Some("/"),
                    b'?' => Some("?"),
                    _ => None,
                };
                match sym1 {
                    Some(s) => {
                        out.push(Tok::Sym(s));
                        i += 1;
                    }
                    None => {
                        return Err(JsoniqError::Lex(format!(
                            "unexpected character '{}' at byte {i}",
                            b[i] as char
                        )))
                    }
                }
            }
        }
    }
    out.push(Tok::Eof);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_variables_and_names() {
        let t = tokenize("for $jet in collection").unwrap();
        assert_eq!(t[0], Tok::Name("for".into()));
        assert_eq!(t[1], Tok::Var("jet".into()));
        assert_eq!(t[2], Tok::Name("in".into()));
    }

    #[test]
    fn lexes_unbox_and_lookup_brackets() {
        let t = tokenize("$a[] $b[[1]] $c[2]").unwrap();
        assert!(t[1].is_sym("["));
        assert!(t[2].is_sym("]"));
        assert!(t[4].is_sym("[["));
        assert!(t[6].is_sym("]]"));
    }

    #[test]
    fn nested_comments() {
        let t = tokenize("1 (: outer (: inner :) still :) 2").unwrap();
        assert_eq!(t, vec![Tok::Int(1), Tok::Int(2), Tok::Eof]);
    }

    #[test]
    fn string_escapes() {
        let t = tokenize(r#""a\"b""#).unwrap();
        assert_eq!(t[0], Tok::Str("a\"b".into()));
    }

    #[test]
    fn assignment_symbol() {
        let t = tokenize("let $x := 1").unwrap();
        assert!(t[2].is_sym(":="));
    }

    #[test]
    fn numbers() {
        let t = tokenize("1 2.5 1e2").unwrap();
        assert_eq!(t[0], Tok::Int(1));
        assert_eq!(t[1], Tok::Float(2.5));
        assert_eq!(t[2], Tok::Float(100.0));
    }

    #[test]
    fn rejects_bad_input() {
        assert!(tokenize("$").is_err());
        assert!(tokenize("\"abc").is_err());
        assert!(tokenize("(: never closed").is_err());
        assert!(tokenize("@").is_err());
    }
}
