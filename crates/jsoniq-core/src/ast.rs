//! JSONiq abstract syntax tree.
//!
//! The same node types serve as the *expression tree* after the rewrite phase
//! (function inlining, constant folding, dead-code elimination), matching
//! RumbleDB's pipeline where the expression tree is a normalized AST
//! (paper §III-A2).

use snowdb::Variant;

/// A JSONiq item; the engine shares `snowdb`'s variant data model.
pub type Item = Variant;

/// A parsed main module: user-declared functions plus the body expression.
#[derive(Clone, Debug, PartialEq)]
pub struct Module {
    pub functions: Vec<FunctionDecl>,
    pub body: Expr,
}

/// `declare function name($a, $b) { body };`
#[derive(Clone, Debug, PartialEq)]
pub struct FunctionDecl {
    pub name: String,
    pub params: Vec<String>,
    pub body: Expr,
}

/// Binary operators. Keyword comparisons (`eq`, `lt`, ...) are value
/// comparisons; the symbolic forms (`=`, `<`, ...) parse to the same operators
/// (general comparison semantics coincide on the atomic values these workloads
/// touch).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinaryOp {
    Or,
    And,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Add,
    Sub,
    Mul,
    Div,
    IDiv,
    Mod,
    /// `a to b` integer range.
    To,
    /// `||` string concatenation.
    Concat,
}

/// One FLWOR clause.
#[derive(Clone, Debug, PartialEq)]
pub enum Clause {
    For {
        var: String,
        /// Positional variable from `at $i` (1-based).
        at: Option<String>,
        expr: Expr,
        /// `allowing empty`: emit one tuple with an empty binding when the
        /// sequence is empty (the FLWOR analogue of an outer join).
        allowing_empty: bool,
    },
    Let {
        var: String,
        expr: Expr,
    },
    Where(Expr),
    GroupBy {
        /// `group by $k := expr, ...`; a missing expr groups by the variable's
        /// current binding.
        keys: Vec<(String, Option<Expr>)>,
    },
    OrderBy {
        keys: Vec<(Expr, bool)>, // (expr, descending)
    },
    Count(String),
}

/// A FLWOR expression: a clause chain ending in `return`.
#[derive(Clone, Debug, PartialEq)]
pub struct Flwor {
    pub clauses: Vec<Clause>,
    pub return_expr: Box<Expr>,
}

/// JSONiq expression.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    Literal(Item),
    VarRef(String),
    /// `{ "k": v, ... }`
    ObjectConstructor(Vec<(String, Expr)>),
    /// `[ a, b, ... ]`
    ArrayConstructor(Vec<Expr>),
    /// `(a, b, c)` comma sequence (and `()` the empty sequence).
    Sequence(Vec<Expr>),
    Flwor(Flwor),
    If {
        cond: Box<Expr>,
        then: Box<Expr>,
        else_: Box<Expr>,
    },
    Binary {
        op: BinaryOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    /// Unary minus.
    Neg(Box<Expr>),
    Not(Box<Expr>),
    /// `$x.field`
    ObjectLookup {
        base: Box<Expr>,
        field: String,
    },
    /// `$x[]` — array unboxing.
    ArrayUnbox {
        base: Box<Expr>,
    },
    /// `$x[[i]]` — array member lookup (1-based).
    ArrayLookup {
        base: Box<Expr>,
        index: Box<Expr>,
    },
    /// `$seq[p]` — positional (integer) or boolean predicate over a sequence.
    Predicate {
        base: Box<Expr>,
        pred: Box<Expr>,
    },
    FunctionCall {
        name: String,
        args: Vec<Expr>,
    },
}

impl Expr {
    /// Integer literal helper.
    pub fn int(i: i64) -> Expr {
        Expr::Literal(Variant::Int(i))
    }

    /// Walks the expression tree, applying `f` to every node (pre-order).
    pub fn walk(&self, f: &mut dyn FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Literal(_) | Expr::VarRef(_) => {}
            Expr::ObjectConstructor(pairs) => {
                for (_, v) in pairs {
                    v.walk(f);
                }
            }
            Expr::ArrayConstructor(items) | Expr::Sequence(items) => {
                for i in items {
                    i.walk(f);
                }
            }
            Expr::Flwor(fl) => {
                for c in &fl.clauses {
                    match c {
                        Clause::For { expr, .. } | Clause::Let { expr, .. } | Clause::Where(expr) => {
                            expr.walk(f)
                        }
                        Clause::GroupBy { keys } => {
                            for (_, e) in keys {
                                if let Some(e) = e {
                                    e.walk(f);
                                }
                            }
                        }
                        Clause::OrderBy { keys } => {
                            for (e, _) in keys {
                                e.walk(f);
                            }
                        }
                        Clause::Count(_) => {}
                    }
                }
                fl.return_expr.walk(f);
            }
            Expr::If { cond, then, else_ } => {
                cond.walk(f);
                then.walk(f);
                else_.walk(f);
            }
            Expr::Binary { left, right, .. } => {
                left.walk(f);
                right.walk(f);
            }
            Expr::Neg(e) | Expr::Not(e) | Expr::ArrayUnbox { base: e } => e.walk(f),
            Expr::ObjectLookup { base, .. } => base.walk(f),
            Expr::ArrayLookup { base, index } => {
                base.walk(f);
                index.walk(f);
            }
            Expr::Predicate { base, pred } => {
                base.walk(f);
                pred.walk(f);
            }
            Expr::FunctionCall { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
        }
    }
}

/// Compiler errors for the JSONiq front-end.
#[derive(Debug, Clone, PartialEq)]
pub enum JsoniqError {
    Lex(String),
    Parse(String),
    /// Static errors: unknown variable/function, arity mismatch, recursion.
    Static(String),
    /// Dynamic errors raised by the interpreter.
    Dynamic(String),
    /// Errors raised while translating to SQL.
    Translate(String),
    /// Errors bubbled up from the engine.
    Engine(String),
    /// Evaluation exceeded the configured deadline.
    Timeout,
}

impl std::fmt::Display for JsoniqError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JsoniqError::Lex(m) => write!(f, "lexical error: {m}"),
            JsoniqError::Parse(m) => write!(f, "syntax error: {m}"),
            JsoniqError::Static(m) => write!(f, "static error: {m}"),
            JsoniqError::Dynamic(m) => write!(f, "dynamic error: {m}"),
            JsoniqError::Translate(m) => write!(f, "translation error: {m}"),
            JsoniqError::Engine(m) => write!(f, "engine error: {m}"),
            JsoniqError::Timeout => write!(f, "evaluation exceeded the deadline"),
        }
    }
}

impl std::error::Error for JsoniqError {}

impl From<snowdb::SnowError> for JsoniqError {
    fn from(e: snowdb::SnowError) -> Self {
        JsoniqError::Engine(e.to_string())
    }
}

/// Result alias for the JSONiq front-end.
pub type JResult<T> = std::result::Result<T, JsoniqError>;
