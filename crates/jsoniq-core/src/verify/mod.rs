//! JSONiq-level verification lattice.
//!
//! Extends the SQL-side oracle (`snowdb::verify`) with the two axes only the
//! front-end knows about: the nested-query strategy the translator uses
//! (flag-column vs. JOIN-based, paper §IV-C) and the JSONiq interpreter as an
//! engine-independent ground truth. One logical query therefore executes as
//!
//! ```text
//! {interpreter}  ∪  {FlagColumn, JoinBased} × {optimizer on/off} × {threads}
//! ```
//!
//! and every point must agree under canonical ordering with epsilon-aware
//! equality. The interpreter materializes cross products row by row, so it is
//! only feasible at small scales — corpus tests keep interpreter-checked data
//! sets tiny and run the SQL-only lattice at scale.

pub mod gen;

use std::sync::Arc;

use snowdb::verify::{
    canonical_rows, first_diff, render_row, ConfigOutcome, Divergence, DivergenceDetail,
    SqlConfig, VerifyReport, DEFAULT_EPSILON,
};
use snowdb::{Database, QueryOptions, Variant};

use crate::interp::{DatabaseCollections, Interpreter};
use crate::snowflake::{translate_query, NestedStrategy};

/// The full JSONiq-level configuration lattice.
#[derive(Clone, Debug)]
pub struct JsoniqLattice {
    /// SQL-side execution configurations applied to every translation.
    pub sql: Vec<SqlConfig>,
    /// Translator strategies to cover.
    pub strategies: Vec<NestedStrategy>,
    /// Whether to run the JSONiq interpreter as the ground-truth baseline.
    pub interpreter: bool,
    /// Relative epsilon for float comparison.
    pub epsilon: f64,
}

impl JsoniqLattice {
    /// Everything: interpreter baseline, both strategies, the default SQL
    /// lattice up to `max_threads`.
    pub fn full(max_threads: usize) -> JsoniqLattice {
        JsoniqLattice {
            sql: snowdb::verify::default_lattice(max_threads),
            strategies: vec![NestedStrategy::FlagColumn, NestedStrategy::JoinBased],
            interpreter: true,
            epsilon: DEFAULT_EPSILON,
        }
    }

    /// Drops the interpreter baseline (for data sets too large to interpret);
    /// the first SQL configuration of the first strategy becomes the baseline.
    pub fn without_interpreter(mut self) -> JsoniqLattice {
        self.interpreter = false;
        self
    }
}

struct Run {
    label: String,
    rows: Option<Vec<Vec<Variant>>>,
    error: Option<String>,
    /// `EXPLAIN` (or a placeholder for the interpreter).
    plan: String,
    /// Plan annotated with measured per-operator metrics, when available.
    metrics: String,
}

/// Verifies one JSONiq query across the lattice. The first point (the
/// interpreter when enabled) is the baseline.
pub fn verify_jsoniq(db: &Arc<Database>, src: &str, lattice: &JsoniqLattice) -> VerifyReport {
    let mut runs: Vec<Run> = Vec::new();

    if lattice.interpreter {
        let provider = DatabaseCollections { db: db.as_ref() };
        let interp = Interpreter::new(&provider);
        let (rows, error) = match interp.eval_query(src) {
            // The interpreter yields a sequence of items; the translated SQL
            // yields single-column rows, so compare in that shape.
            Ok(seq) => (Some(canonical_rows(seq.into_iter().map(|v| vec![v]).collect())), None),
            Err(e) => (None, Some(e.to_string())),
        };
        runs.push(Run {
            label: "interpreter".into(),
            rows,
            error,
            plan: "<JSONiq interpreter (reference semantics)>".into(),
            metrics: String::new(),
        });
    }

    for &strategy in &lattice.strategies {
        let tag = match strategy {
            NestedStrategy::FlagColumn => "flag",
            NestedStrategy::JoinBased => "join",
        };
        let sql = match translate_query(db.clone(), src, strategy) {
            Ok(df) => df.sql().to_string(),
            Err(e) => {
                runs.push(Run {
                    label: format!("{tag}/translate"),
                    rows: None,
                    error: Some(e.to_string()),
                    plan: String::new(),
                    metrics: String::new(),
                });
                continue;
            }
        };
        for cfg in &lattice.sql {
            let opts = QueryOptions {
                optimize: cfg.optimize,
                threads: Some(cfg.threads),
                vectorize: Some(cfg.vectorize),
                encode: Some(cfg.encode),
            };
            let label = format!("{tag}/{}", cfg.label());
            let plan = db
                .explain_with(&sql, cfg.optimize)
                .unwrap_or_else(|e| format!("<explain failed: {e}>"));
            match db.query_with(&sql, &opts) {
                Ok(result) => {
                    let metrics =
                        match (&result.profile.metrics, db.compile_with(&sql, cfg.optimize)) {
                            (Some(m), Ok(p)) => snowdb::plan::explain_analyze(&p, m),
                            _ => String::new(),
                        };
                    runs.push(Run {
                        label,
                        rows: Some(canonical_rows(result.rows)),
                        error: None,
                        plan,
                        metrics,
                    });
                }
                Err(e) => runs.push(Run {
                    label,
                    rows: None,
                    error: Some(e.to_string()),
                    plan,
                    metrics: String::new(),
                }),
            }
        }
    }

    build_report(src, runs, lattice.epsilon)
}

fn build_report(query: &str, runs: Vec<Run>, epsilon: f64) -> VerifyReport {
    let baseline = &runs[0];
    let mut outcomes = Vec::with_capacity(runs.len());
    let mut divergences = Vec::new();
    for (i, run) in runs.iter().enumerate() {
        let (agrees, detail) = if i == 0 {
            (true, None)
        } else {
            match (&baseline.rows, &run.rows) {
                (Some(b), Some(c)) => match first_diff(b, c, epsilon) {
                    None => (true, None),
                    Some((index, br, cr)) => (
                        false,
                        Some(DivergenceDetail::Row {
                            index,
                            baseline_row: br.map(render_row),
                            candidate_row: cr.map(render_row),
                        }),
                    ),
                },
                _ if baseline.error.is_some() && baseline.error == run.error => (true, None),
                _ => (
                    false,
                    Some(DivergenceDetail::Error {
                        baseline_error: baseline.error.clone(),
                        candidate_error: run.error.clone(),
                    }),
                ),
            }
        };
        outcomes.push(ConfigOutcome {
            label: run.label.clone(),
            rows: run.rows.as_ref().map(Vec::len),
            error: run.error.clone(),
            agrees,
        });
        if let Some(detail) = detail {
            divergences.push(Divergence {
                candidate: run.label.clone(),
                detail,
                baseline_plan: baseline.plan.clone(),
                candidate_plan: run.plan.clone(),
                baseline_metrics: baseline.metrics.clone(),
                candidate_metrics: run.metrics.clone(),
            });
        }
    }
    VerifyReport { query: query.to_string(), baseline: baseline.label.clone(), outcomes, divergences }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snowdb::storage::{ColumnDef, ColumnType};

    fn db() -> Arc<Database> {
        let d = Database::new();
        d.load_table_with_partition_rows(
            "t",
            vec![
                ColumnDef::new("ID", ColumnType::Int),
                ColumnDef::new("XS", ColumnType::Variant),
            ],
            (0..20).map(|i| {
                vec![
                    Variant::Int(i),
                    Variant::array((0..(i % 4)).map(Variant::Int).collect::<Vec<_>>()),
                ]
            }),
            4,
        )
        .unwrap();
        Arc::new(d)
    }

    #[test]
    fn full_lattice_agrees_on_nested_count() {
        let db = db();
        let q = r#"for $t in collection("t") where $t.ID mod 2 eq 0 return count($t.XS[])"#;
        let report = verify_jsoniq(&db, q, &JsoniqLattice::full(4));
        assert!(report.agrees(), "{}", report.render());
        assert_eq!(report.baseline, "interpreter");
        // interpreter + 2 strategies × 24 SQL configs
        assert_eq!(report.outcomes.len(), 49);
    }

    #[test]
    fn translation_failure_is_reported_not_fatal() {
        let db = db();
        let report = verify_jsoniq(
            &db,
            r#"for $t in collection("no_such_table") return $t.ID"#,
            &JsoniqLattice::full(2),
        );
        // The interpreter and both translations fail with the same unknown-
        // collection error, so the lattice still "agrees" — on the error.
        assert!(report.outcomes.iter().all(|o| o.error.is_some()), "{}", report.render());
    }
}
