//! Grammar-directed random JSONiq query generator.
//!
//! Produces small FLWOR queries over a declared collection schema, drawing
//! every choice from a seeded RNG so a corpus of random queries is exactly
//! reproducible offline (the `rand` shim is deterministic). The grammar stays
//! inside the translator's supported dialect — each shape mirrors one of the
//! ADL query skeletons (scalar filter-project, array iteration, group-by
//! histogram, nested count / existential sub-FLWOR) so a divergence flagged by
//! the oracle is an engine bug, not a dialect gap.

use rand::{Rng, StdRng};

/// Shape of one collection for generation purposes.
#[derive(Clone, Debug)]
pub struct GenSchema {
    /// Collection name as used in `collection("...")`.
    pub collection: String,
    /// Integer event-id field, used for deterministic `mod` predicates.
    pub event_field: &'static str,
    /// Float-valued paths on the row object (e.g. `MET.PT`).
    pub float_paths: Vec<&'static str>,
    /// Arrays of objects: `(array field, float member fields)`.
    pub arrays: Vec<(&'static str, Vec<&'static str>)>,
}

/// The ADL HEP schema (see `adl::generator::schema`).
pub fn adl_schema(table: &str) -> GenSchema {
    GenSchema {
        collection: table.to_string(),
        event_field: "EVENT",
        float_paths: vec!["MET.PT", "MET.PHI"],
        arrays: vec![
            ("JET", vec!["PT", "ETA", "PHI", "MASS"]),
            ("MUON", vec!["PT", "ETA", "PHI", "MASS"]),
            ("ELECTRON", vec!["PT", "ETA", "PHI", "MASS"]),
            ("PHOTON", vec!["PT", "ETA", "PHI", "MASS"]),
        ],
    }
}

fn pick<'a, T>(rng: &mut StdRng, xs: &'a [T]) -> &'a T {
    &xs[rng.gen_range(0..xs.len())]
}

fn cmp_op(rng: &mut StdRng) -> &'static str {
    const OPS: [&str; 4] = ["lt", "le", "gt", "ge"];
    OPS[rng.gen_range(0..OPS.len())]
}

/// A predicate over the row variable `$e`.
fn event_pred(rng: &mut StdRng, s: &GenSchema) -> String {
    match rng.gen_range(0..4u32) {
        0 => {
            let path = pick(rng, &s.float_paths);
            format!("$e.{path} {} {}", cmp_op(rng), rng.gen_range(5..80))
        }
        1 => {
            let k = rng.gen_range(2..7);
            format!("$e.{} mod {} eq {}", s.event_field, k, rng.gen_range(0..k))
        }
        2 => {
            let (arr, _) = pick(rng, &s.arrays);
            format!("size($e.{arr}) ge {}", rng.gen_range(1..4))
        }
        _ => {
            let path = pick(rng, &s.float_paths);
            format!(
                "$e.{path} {} {} and $e.{} mod {} eq 0",
                cmp_op(rng),
                rng.gen_range(5..80),
                s.event_field,
                rng.gen_range(2..5),
            )
        }
    }
}

/// A predicate over an array-element variable `$x` with the given members.
fn element_pred(rng: &mut StdRng, members: &[&'static str]) -> String {
    let field = pick(rng, members);
    if *field == "ETA" && rng.gen_bool(0.5) {
        format!("abs($x.ETA) lt {}", rng.gen_range(1..4))
    } else {
        format!("$x.{field} {} {}", cmp_op(rng), rng.gen_range(5..60))
    }
}

/// A scalar returned for the row variable `$e`.
fn event_scalar(rng: &mut StdRng, s: &GenSchema) -> String {
    match rng.gen_range(0..4u32) {
        0 => format!("$e.{}", pick(rng, &s.float_paths)),
        1 => format!("$e.{}", s.event_field),
        2 => {
            let a = pick(rng, &s.float_paths);
            let b = pick(rng, &s.float_paths);
            format!("$e.{a} + abs($e.{b})")
        }
        _ => {
            let path = pick(rng, &s.float_paths);
            format!(r#"{{"id": $e.{}, "v": $e.{path}}}"#, s.event_field)
        }
    }
}

/// Generates one random query. Five shapes, all drawn from the ADL skeletons.
pub fn random_query(rng: &mut StdRng, s: &GenSchema) -> String {
    let c = &s.collection;
    match rng.gen_range(0..5u32) {
        // Scalar filter + project over whole events.
        0 => format!(
            r#"for $e in collection("{c}") where {} return {}"#,
            event_pred(rng, s),
            event_scalar(rng, s),
        ),
        // Iterate one nested array, filter on element fields.
        1 => {
            let (arr, members) = pick(rng, &s.arrays);
            let field = pick(rng, members);
            format!(
                r#"for $x in collection("{c}").{arr}[] where {} return $x.{field}"#,
                element_pred(rng, members),
            )
        }
        // Group-by histogram with a count aggregate.
        2 => {
            let k = rng.gen_range(2..8);
            format!(
                r#"for $e in collection("{c}") where {} group by $g := $e.{} mod {k} order by $g return {{"g": $g, "n": count($e)}}"#,
                event_pred(rng, s),
                s.event_field,
            )
        }
        // Nested count over a sub-FLWOR (ADL Q4 skeleton).
        3 => {
            let (arr, members) = pick(rng, &s.arrays);
            format!(
                r#"for $e in collection("{c}") where count(for $x in $e.{arr}[] where {} return $x) ge {} return $e.{}"#,
                element_pred(rng, members),
                rng.gen_range(1..3),
                s.event_field,
            )
        }
        // Existential sub-FLWOR (ADL Q5 skeleton).
        _ => {
            let (arr, members) = pick(rng, &s.arrays);
            format!(
                r#"for $e in collection("{c}") where exists(for $x in $e.{arr}[] where {} return 1) return {}"#,
                element_pred(rng, members),
                event_scalar(rng, s),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let s = adl_schema("hep");
        let gen = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..10).map(|_| random_query(&mut rng, &s)).collect::<Vec<_>>()
        };
        assert_eq!(gen(42), gen(42));
        assert_ne!(gen(42), gen(43));
    }

    #[test]
    fn generated_queries_parse() {
        let s = adl_schema("hep");
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let q = random_query(&mut rng, &s);
            crate::parse(&q).unwrap_or_else(|e| panic!("{q}: {e}"));
        }
    }
}
