//! Translation cache (paper §V-B: "we could translate faster by introducing a
//! translation cache").
//!
//! Caches the generated SQL text keyed by (query source, strategy, options),
//! so repeated submissions of the same JSONiq query skip parsing, rewriting,
//! iterator-tree construction, and Snowpark composition entirely.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::ast::JResult;
use crate::snowflake::{NestedStrategy, Translator};
use snowpark::{DataFrame, Session};

/// Cache statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    source: String,
    strategy_join: bool,
    native_filter: bool,
    /// Schema generation at translation time. Translated SQL expands `$t` to
    /// the column list of the table as it existed then; a re-ingested or
    /// altered table must miss, or the cache serves SQL bound to a schema that
    /// no longer exists.
    generation: u64,
}

/// A translating front-end with a query-text cache.
pub struct CachingTranslator {
    session: Session,
    cache: Mutex<HashMap<CacheKey, Arc<str>>>,
    stats: Mutex<CacheStats>,
    native_filter: bool,
}

impl CachingTranslator {
    /// Creates an empty cache bound to a session.
    pub fn new(session: Session) -> CachingTranslator {
        CachingTranslator {
            session,
            cache: Mutex::new(HashMap::new()),
            stats: Mutex::new(CacheStats::default()),
            native_filter: false,
        }
    }

    /// Enables the §VII-B native array-filter fast path for cache misses.
    pub fn with_native_array_filter(mut self, on: bool) -> CachingTranslator {
        self.native_filter = on;
        self
    }

    /// Translates (or re-uses) a query; the returned dataframe is bound to the
    /// cache's session.
    pub fn translate(&self, src: &str, strategy: NestedStrategy) -> JResult<DataFrame> {
        let key = CacheKey {
            source: src.to_string(),
            strategy_join: strategy == NestedStrategy::JoinBased,
            native_filter: self.native_filter,
            generation: self.session.schema_generation(),
        };
        if let Some(sql) = self.cache.lock().get(&key).cloned() {
            self.stats.lock().hits += 1;
            return Ok(self.session.sql(&sql));
        }
        let mut t = Translator::new(self.session.clone(), strategy)
            .with_native_array_filter(self.native_filter);
        let df = t.translate(src)?;
        self.cache.lock().insert(key, Arc::from(df.sql()));
        self.stats.lock().misses += 1;
        Ok(df)
    }

    /// Current hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        *self.stats.lock()
    }

    /// Number of cached translations.
    pub fn len(&self) -> usize {
        self.cache.lock().len()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.cache.lock().is_empty()
    }

    /// Drops all cached translations.
    pub fn clear(&self) {
        self.cache.lock().clear();
        *self.stats.lock() = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snowdb::storage::{ColumnDef, ColumnType};
    use snowdb::{Database, Variant};

    fn session() -> Session {
        let db = Database::new();
        db.load_table(
            "t",
            vec![ColumnDef::new("X", ColumnType::Int)],
            (0..5).map(|i| vec![Variant::Int(i)]),
        )
        .unwrap();
        Session::new(Arc::new(db))
    }

    const Q: &str = r#"for $t in collection("t") where $t.X ge 2 return $t.X"#;

    #[test]
    fn second_translation_hits_the_cache() {
        let c = CachingTranslator::new(session());
        let a = c.translate(Q, NestedStrategy::FlagColumn).unwrap();
        let b = c.translate(Q, NestedStrategy::FlagColumn).unwrap();
        assert_eq!(a.sql(), b.sql());
        assert_eq!(c.stats(), CacheStats { hits: 1, misses: 1 });
        assert_eq!(b.collect().unwrap().rows.len(), 3);
    }

    #[test]
    fn reingest_invalidates_cached_translation() {
        let db = Arc::new(Database::new());
        db.load_table(
            "t",
            vec![ColumnDef::new("X", ColumnType::Int)],
            (0..3).map(|i| vec![Variant::Int(i)]),
        )
        .unwrap();
        let c = CachingTranslator::new(Session::new(db.clone()));
        let q = r#"for $t in collection("t") return $t"#;
        let before = c.translate(q, NestedStrategy::FlagColumn).unwrap();
        // `$t` expands to the column list, so the cached SQL is bound to the
        // one-column schema.
        assert!(!before.sql().contains('Y'));

        // Re-ingest with an extra column; the same source must now MISS and
        // the fresh translation must see the new schema.
        db.load_table(
            "t",
            vec![ColumnDef::new("X", ColumnType::Int), ColumnDef::new("Y", ColumnType::Int)],
            (0..3).map(|i| vec![Variant::Int(i), Variant::Int(i * 10)]),
        )
        .unwrap();
        let after = c.translate(q, NestedStrategy::FlagColumn).unwrap();
        assert_eq!(c.stats(), CacheStats { hits: 0, misses: 2 });
        assert!(after.sql().contains('Y'), "stale SQL served: {}", after.sql());
        assert_eq!(after.collect().unwrap().rows.len(), 3);
    }

    #[test]
    fn strategy_and_options_partition_the_cache() {
        let c = CachingTranslator::new(session());
        c.translate(Q, NestedStrategy::FlagColumn).unwrap();
        c.translate(Q, NestedStrategy::JoinBased).unwrap();
        assert_eq!(c.stats(), CacheStats { hits: 0, misses: 2 });
        assert_eq!(c.len(), 2);
        c.clear();
        assert!(c.is_empty());
    }
}
