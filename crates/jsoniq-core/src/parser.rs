//! Recursive-descent JSONiq parser.

use snowdb::Variant;

use crate::ast::*;
use crate::lexer::{tokenize, Tok};

/// Parses a JSONiq main module (optional function declarations + body).
pub fn parse(src: &str) -> JResult<Module> {
    let toks = tokenize(src)?;
    let mut p = Parser { toks, pos: 0 };
    let mut functions = Vec::new();
    while p.peek().is_name("declare") {
        functions.push(p.function_decl()?);
    }
    let body = p.expr()?;
    match p.peek() {
        Tok::Eof => Ok(Module { functions, body }),
        t => Err(JsoniqError::Parse(format!("unexpected trailing token {t:?}"))),
    }
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos]
    }

    fn peek2(&self) -> &Tok {
        self.toks.get(self.pos + 1).unwrap_or(&Tok::Eof)
    }

    fn next(&mut self) -> Tok {
        let t = self.toks[self.pos].clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat_name(&mut self, n: &str) -> bool {
        if self.peek().is_name(n) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_name(&mut self, n: &str) -> JResult<()> {
        if self.eat_name(n) {
            Ok(())
        } else {
            Err(JsoniqError::Parse(format!("expected '{n}', found {:?}", self.peek())))
        }
    }

    fn eat_sym(&mut self, s: &str) -> bool {
        if self.peek().is_sym(s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, s: &str) -> JResult<()> {
        if self.eat_sym(s) {
            Ok(())
        } else {
            Err(JsoniqError::Parse(format!("expected '{s}', found {:?}", self.peek())))
        }
    }

    fn var(&mut self) -> JResult<String> {
        match self.next() {
            Tok::Var(v) => Ok(v),
            t => Err(JsoniqError::Parse(format!("expected a $variable, found {t:?}"))),
        }
    }

    fn name(&mut self) -> JResult<String> {
        match self.next() {
            Tok::Name(n) => Ok(n),
            t => Err(JsoniqError::Parse(format!("expected a name, found {t:?}"))),
        }
    }

    fn function_decl(&mut self) -> JResult<FunctionDecl> {
        self.expect_name("declare")?;
        self.expect_name("function")?;
        let name = self.name()?;
        self.expect_sym("(")?;
        let mut params = Vec::new();
        if !self.peek().is_sym(")") {
            loop {
                params.push(self.var()?);
                if !self.eat_sym(",") {
                    break;
                }
            }
        }
        self.expect_sym(")")?;
        self.expect_sym("{")?;
        let body = self.expr()?;
        self.expect_sym("}")?;
        // Trailing ';' after a declaration is customary.
        self.eat_sym(";");
        Ok(FunctionDecl { name, params, body })
    }

    /// Expr := ExprSingle ("," ExprSingle)*
    fn expr(&mut self) -> JResult<Expr> {
        let first = self.expr_single()?;
        if !self.peek().is_sym(",") {
            return Ok(first);
        }
        let mut items = vec![first];
        while self.eat_sym(",") {
            items.push(self.expr_single()?);
        }
        Ok(Expr::Sequence(items))
    }

    fn expr_single(&mut self) -> JResult<Expr> {
        match self.peek() {
            t if t.is_name("for") || t.is_name("let") => {
                if matches!(self.peek2(), Tok::Var(_)) {
                    return self.flwor();
                }
                self.or_expr()
            }
            t if t.is_name("if") && self.peek2().is_sym("(") => self.if_expr(),
            t if (t.is_name("some") || t.is_name("every"))
                && matches!(self.peek2(), Tok::Var(_)) =>
            {
                self.quantified()
            }
            _ => self.or_expr(),
        }
    }

    fn flwor(&mut self) -> JResult<Expr> {
        let mut clauses = Vec::new();
        loop {
            if self.peek().is_name("for") && matches!(self.peek2(), Tok::Var(_)) {
                self.pos += 1;
                loop {
                    let var = self.var()?;
                    let allowing_empty = if self.eat_name("allowing") {
                        self.expect_name("empty")?;
                        true
                    } else {
                        false
                    };
                    let at = if self.eat_name("at") { Some(self.var()?) } else { None };
                    self.expect_name("in")?;
                    let expr = self.expr_single()?;
                    clauses.push(Clause::For { var, at, expr, allowing_empty });
                    if !self.eat_sym(",") {
                        break;
                    }
                }
            } else if self.peek().is_name("let") && matches!(self.peek2(), Tok::Var(_)) {
                self.pos += 1;
                loop {
                    let var = self.var()?;
                    self.expect_sym(":=")?;
                    let expr = self.expr_single()?;
                    clauses.push(Clause::Let { var, expr });
                    if !self.eat_sym(",") {
                        break;
                    }
                }
            } else if self.peek().is_name("where") {
                self.pos += 1;
                clauses.push(Clause::Where(self.expr_single()?));
            } else if self.peek().is_name("group") {
                self.pos += 1;
                self.expect_name("by")?;
                let mut keys = Vec::new();
                loop {
                    let var = self.var()?;
                    let expr = if self.eat_sym(":=") { Some(self.expr_single()?) } else { None };
                    keys.push((var, expr));
                    if !self.eat_sym(",") {
                        break;
                    }
                }
                clauses.push(Clause::GroupBy { keys });
            } else if self.peek().is_name("order") {
                self.pos += 1;
                self.expect_name("by")?;
                let mut keys = Vec::new();
                loop {
                    let e = self.expr_single()?;
                    let desc = if self.eat_name("descending") {
                        true
                    } else {
                        self.eat_name("ascending");
                        false
                    };
                    keys.push((e, desc));
                    if !self.eat_sym(",") {
                        break;
                    }
                }
                clauses.push(Clause::OrderBy { keys });
            } else if self.peek().is_name("count") && matches!(self.peek2(), Tok::Var(_)) {
                self.pos += 1;
                clauses.push(Clause::Count(self.var()?));
            } else if self.peek().is_name("return") {
                self.pos += 1;
                let ret = self.expr_single()?;
                if clauses.is_empty() {
                    return Err(JsoniqError::Parse(
                        "FLWOR requires at least one clause before return".into(),
                    ));
                }
                if !matches!(clauses[0], Clause::For { .. } | Clause::Let { .. }) {
                    return Err(JsoniqError::Parse(
                        "FLWOR must start with a for or let clause".into(),
                    ));
                }
                return Ok(Expr::Flwor(Flwor { clauses, return_expr: Box::new(ret) }));
            } else {
                return Err(JsoniqError::Parse(format!(
                    "expected a FLWOR clause or return, found {:?}",
                    self.peek()
                )));
            }
        }
    }

    fn if_expr(&mut self) -> JResult<Expr> {
        self.expect_name("if")?;
        self.expect_sym("(")?;
        let cond = self.expr()?;
        self.expect_sym(")")?;
        self.expect_name("then")?;
        let then = self.expr_single()?;
        self.expect_name("else")?;
        let else_ = self.expr_single()?;
        Ok(Expr::If { cond: Box::new(cond), then: Box::new(then), else_: Box::new(else_) })
    }

    /// `some $x in E satisfies P` desugars to `exists(for $x in E where P return 1)`;
    /// `every ...` to `empty(for $x in E where not(P) return 1)`.
    fn quantified(&mut self) -> JResult<Expr> {
        let every = self.peek().is_name("every");
        self.pos += 1;
        let mut vars = Vec::new();
        loop {
            let v = self.var()?;
            self.expect_name("in")?;
            let e = self.expr_single()?;
            vars.push((v, e));
            if !self.eat_sym(",") {
                break;
            }
        }
        self.expect_name("satisfies")?;
        let pred = self.expr_single()?;
        let cond = if every { Expr::Not(Box::new(pred)) } else { pred };
        let mut clauses: Vec<Clause> = vars
            .into_iter()
            .map(|(var, expr)| Clause::For { var, at: None, expr, allowing_empty: false })
            .collect();
        clauses.push(Clause::Where(cond));
        let fl = Expr::Flwor(Flwor { clauses, return_expr: Box::new(Expr::int(1)) });
        Ok(Expr::FunctionCall {
            name: if every { "empty" } else { "exists" }.into(),
            args: vec![fl],
        })
    }

    // ---- operator precedence chain ----

    fn or_expr(&mut self) -> JResult<Expr> {
        let mut left = self.and_expr()?;
        while self.peek().is_name("or") {
            self.pos += 1;
            let right = self.and_expr()?;
            left = Expr::Binary { op: BinaryOp::Or, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> JResult<Expr> {
        let mut left = self.not_expr()?;
        while self.peek().is_name("and") {
            self.pos += 1;
            let right = self.not_expr()?;
            left = Expr::Binary { op: BinaryOp::And, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> JResult<Expr> {
        // `not` is an ordinary function in JSONiq; also accept prefix form when
        // not followed by '(' as a function call.
        if self.peek().is_name("not") && !self.peek2().is_sym("(") {
            self.pos += 1;
            return Ok(Expr::Not(Box::new(self.not_expr()?)));
        }
        self.comparison_expr()
    }

    fn comparison_expr(&mut self) -> JResult<Expr> {
        let left = self.range_expr()?;
        let op = match self.peek() {
            Tok::Name(n) => match n.as_str() {
                "eq" => Some(BinaryOp::Eq),
                "ne" => Some(BinaryOp::Ne),
                "lt" => Some(BinaryOp::Lt),
                "le" => Some(BinaryOp::Le),
                "gt" => Some(BinaryOp::Gt),
                "ge" => Some(BinaryOp::Ge),
                _ => None,
            },
            Tok::Sym("=") => Some(BinaryOp::Eq),
            Tok::Sym("!=") => Some(BinaryOp::Ne),
            Tok::Sym("<") => Some(BinaryOp::Lt),
            Tok::Sym("<=") => Some(BinaryOp::Le),
            Tok::Sym(">") => Some(BinaryOp::Gt),
            Tok::Sym(">=") => Some(BinaryOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.range_expr()?;
            return Ok(Expr::Binary { op, left: Box::new(left), right: Box::new(right) });
        }
        Ok(left)
    }

    fn range_expr(&mut self) -> JResult<Expr> {
        let left = self.additive_expr()?;
        if self.peek().is_name("to") {
            self.pos += 1;
            let right = self.additive_expr()?;
            return Ok(Expr::Binary {
                op: BinaryOp::To,
                left: Box::new(left),
                right: Box::new(right),
            });
        }
        Ok(left)
    }

    fn additive_expr(&mut self) -> JResult<Expr> {
        let mut left = self.multiplicative_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Sym("+") => BinaryOp::Add,
                Tok::Sym("-") => BinaryOp::Sub,
                Tok::Sym("||") => BinaryOp::Concat,
                _ => break,
            };
            self.pos += 1;
            let right = self.multiplicative_expr()?;
            left = Expr::Binary { op, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn multiplicative_expr(&mut self) -> JResult<Expr> {
        let mut left = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Sym("*") => BinaryOp::Mul,
                Tok::Name(n) if n == "div" => BinaryOp::Div,
                Tok::Name(n) if n == "idiv" => BinaryOp::IDiv,
                Tok::Name(n) if n == "mod" => BinaryOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let right = self.unary_expr()?;
            left = Expr::Binary { op, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn unary_expr(&mut self) -> JResult<Expr> {
        if self.eat_sym("-") {
            return Ok(Expr::Neg(Box::new(self.unary_expr()?)));
        }
        if self.eat_sym("+") {
            return self.unary_expr();
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> JResult<Expr> {
        let mut e = self.primary()?;
        loop {
            if self.peek().is_sym(".") {
                self.pos += 1;
                let field = match self.next() {
                    Tok::Name(n) => n,
                    Tok::Str(s) => s,
                    t => {
                        return Err(JsoniqError::Parse(format!(
                            "expected a field name after '.', found {t:?}"
                        )))
                    }
                };
                e = Expr::ObjectLookup { base: Box::new(e), field };
            } else if self.peek().is_sym("[[") {
                self.pos += 1;
                let idx = self.expr()?;
                self.expect_sym("]]")?;
                e = Expr::ArrayLookup { base: Box::new(e), index: Box::new(idx) };
            } else if self.peek().is_sym("[") {
                self.pos += 1;
                if self.eat_sym("]") {
                    e = Expr::ArrayUnbox { base: Box::new(e) };
                } else {
                    let pred = self.expr()?;
                    self.expect_sym("]")?;
                    e = Expr::Predicate { base: Box::new(e), pred: Box::new(pred) };
                }
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> JResult<Expr> {
        match self.peek().clone() {
            Tok::Int(i) => {
                self.pos += 1;
                Ok(Expr::Literal(Variant::Int(i)))
            }
            Tok::Float(f) => {
                self.pos += 1;
                Ok(Expr::Literal(Variant::Float(f)))
            }
            Tok::Str(s) => {
                self.pos += 1;
                Ok(Expr::Literal(Variant::str(s)))
            }
            Tok::Var(v) => {
                self.pos += 1;
                Ok(Expr::VarRef(v))
            }
            Tok::Sym("(") => {
                self.pos += 1;
                if self.eat_sym(")") {
                    return Ok(Expr::Sequence(Vec::new()));
                }
                let e = self.expr()?;
                self.expect_sym(")")?;
                Ok(e)
            }
            Tok::Sym("[") => {
                self.pos += 1;
                let mut items = Vec::new();
                if !self.peek().is_sym("]") {
                    loop {
                        items.push(self.expr_single()?);
                        if !self.eat_sym(",") {
                            break;
                        }
                    }
                }
                self.expect_sym("]")?;
                Ok(Expr::ArrayConstructor(items))
            }
            Tok::Sym("{") => {
                self.pos += 1;
                let mut pairs = Vec::new();
                if !self.peek().is_sym("}") {
                    loop {
                        let key = match self.next() {
                            Tok::Name(n) => n,
                            Tok::Str(s) => s,
                            t => {
                                return Err(JsoniqError::Parse(format!(
                                    "expected an object key, found {t:?}"
                                )))
                            }
                        };
                        self.expect_sym(":")?;
                        let v = self.expr_single()?;
                        pairs.push((key, v));
                        if !self.eat_sym(",") {
                            break;
                        }
                    }
                }
                self.expect_sym("}")?;
                Ok(Expr::ObjectConstructor(pairs))
            }
            Tok::Name(n) => {
                match n.as_str() {
                    "true" if !self.peek2().is_sym("(") => {
                        self.pos += 1;
                        return Ok(Expr::Literal(Variant::Bool(true)));
                    }
                    "false" if !self.peek2().is_sym("(") => {
                        self.pos += 1;
                        return Ok(Expr::Literal(Variant::Bool(false)));
                    }
                    "null" if !self.peek2().is_sym("(") => {
                        self.pos += 1;
                        return Ok(Expr::Literal(Variant::Null));
                    }
                    _ => {}
                }
                if self.peek2().is_sym("(") {
                    self.pos += 2;
                    let mut args = Vec::new();
                    if !self.peek().is_sym(")") {
                        loop {
                            args.push(self.expr_single()?);
                            if !self.eat_sym(",") {
                                break;
                            }
                        }
                    }
                    self.expect_sym(")")?;
                    return Ok(Expr::FunctionCall { name: n, args });
                }
                Err(JsoniqError::Parse(format!("unexpected name '{n}' in expression")))
            }
            t => Err(JsoniqError::Parse(format!("unexpected token {t:?} in expression"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_listing1_from_paper() {
        // Simplified ADL Q3 reference code (paper Listing 1).
        let m = parse(
            r#"for $jet in collection("adl").Jet[]
               where abs($jet.eta) lt 1
               return $jet.pt"#,
        )
        .unwrap();
        let fl = match &m.body {
            Expr::Flwor(fl) => fl,
            other => panic!("expected FLWOR, got {other:?}"),
        };
        assert_eq!(fl.clauses.len(), 2);
        assert!(matches!(&fl.clauses[0], Clause::For { var, .. } if var == "jet"));
        assert!(matches!(&fl.clauses[1], Clause::Where(_)));
    }

    #[test]
    fn parses_function_declarations() {
        let m = parse(
            r#"declare function hypot($a, $b) { sqrt($a * $a + $b * $b) };
               hypot(3, 4)"#,
        )
        .unwrap();
        assert_eq!(m.functions.len(), 1);
        assert_eq!(m.functions[0].params, vec!["a", "b"]);
    }

    #[test]
    fn parses_group_by_and_order_by() {
        let m = parse(
            r#"for $e in collection("adl")
               let $v := $e.MET
               group by $bin := floor($v)
               order by $bin descending
               return {"value": $bin, "count": count($e)}"#,
        )
        .unwrap();
        let fl = match &m.body {
            Expr::Flwor(fl) => fl,
            other => panic!("{other:?}"),
        };
        assert!(matches!(&fl.clauses[2], Clause::GroupBy { keys } if keys.len() == 1));
        assert!(matches!(&fl.clauses[3], Clause::OrderBy { keys } if keys[0].1));
        assert!(matches!(&*fl.return_expr, Expr::ObjectConstructor(p) if p.len() == 2));
    }

    #[test]
    fn parses_nested_flwor_in_let() {
        let m = parse(
            r#"for $event in collection("adl")
               let $filtered := (
                 for $m in $event.Muon[]
                 where $m.pt gt 10
                 return $m
               )
               return size($filtered)"#,
        )
        .unwrap();
        let fl = match &m.body {
            Expr::Flwor(fl) => fl,
            other => panic!("{other:?}"),
        };
        match &fl.clauses[1] {
            Clause::Let { expr: Expr::Flwor(_), .. } => {}
            other => panic!("expected nested FLWOR in let, got {other:?}"),
        }
    }

    #[test]
    fn parses_positional_for_and_brackets() {
        let m = parse(
            r#"for $j at $i in collection("x").JET[]
               return $j[[1]]"#,
        )
        .unwrap();
        let fl = match &m.body {
            Expr::Flwor(fl) => fl,
            other => panic!("{other:?}"),
        };
        assert!(matches!(&fl.clauses[0], Clause::For { at: Some(i), .. } if i == "i"));
        assert!(matches!(&*fl.return_expr, Expr::ArrayLookup { .. }));
    }

    #[test]
    fn parses_quantified_expressions() {
        let m = parse(r#"some $x in (1, 2, 3) satisfies $x gt 2"#).unwrap();
        match &m.body {
            Expr::FunctionCall { name, args } => {
                assert_eq!(name, "exists");
                assert!(matches!(&args[0], Expr::Flwor(_)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn operator_precedence_and_unary() {
        let m = parse("1 + 2 * 3 eq 7 and not false").unwrap();
        assert!(matches!(&m.body, Expr::Binary { op: BinaryOp::And, .. }));
        let m = parse("-2 * 3").unwrap();
        match &m.body {
            Expr::Binary { op: BinaryOp::Mul, left, .. } => {
                assert!(matches!(&**left, Expr::Neg(_)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_if_and_sequences() {
        let m = parse("if (1 eq 1) then (1, 2) else ()").unwrap();
        match &m.body {
            Expr::If { then, else_, .. } => {
                assert!(matches!(&**then, Expr::Sequence(v) if v.len() == 2));
                assert!(matches!(&**else_, Expr::Sequence(v) if v.is_empty()));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_queries() {
        for bad in [
            "for $x",
            "for $x in y return",
            "let $x = 1 return $x",
            "{ 1: 2 }",
            "return 1",
            "where 1 return 2",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn string_object_keys() {
        let m = parse(r#"{"a b": 1}"#).unwrap();
        assert!(matches!(&m.body, Expr::ObjectConstructor(p) if p[0].0 == "a b"));
    }
}
