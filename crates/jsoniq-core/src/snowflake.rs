//! The Snowflake translation layer — `process_native_snowflake`.
//!
//! Translates an iterator tree into **one** native SQL query by composing
//! `snowpark` `DataFrame`/`Col` objects, exactly as the paper's §III describes:
//! FLWOR clause iterators manipulate the dataframe, non-FLWOR iterators compose
//! columns, and nested queries are handled by one of two strategies (§IV-C):
//!
//! - [`NestedStrategy::FlagColumn`]: an `OUTER => TRUE` flatten plus a `KEEP`
//!   flag column guarantees every parent object keeps at least one row; the
//!   `return` value is `IFF(KEEP, value, NULL)` and `ARRAY_AGG` skips the
//!   `NULL`s at reaggregation.
//! - [`NestedStrategy::JoinBased`]: the row-id-tagged dataframe is duplicated;
//!   the nested query filters freely, reaggregates per row id, and a left outer
//!   join with `NVL` repairs the objects the nested query dropped.
//!
//! The supported JSONiq subset is the one the paper's workloads exercise
//! (§IV-E lists the same limitations): no recursive functions, no ordering
//! guarantees through the translation, positional predicates only, and
//! `group by` inside nested queries is not translated.

use std::sync::Arc;

use snowpark::functions as f;
use snowpark::{Col, DataFrame, JoinType, Session, SortOrder};

use crate::ast::{BinaryOp, Item, JResult, JsoniqError};
use crate::itertree::{compile, Builtin, RIter};

/// Strategy for the erroneous-object-elimination problem (paper §IV-C).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum NestedStrategy {
    /// Flag-column approach (§IV-C1). The paper's default for all ADL queries
    /// except Q6.
    #[default]
    FlagColumn,
    /// JOIN-based approach (§IV-C2). Used for Q6, where the nested query has
    /// many unboxing/filtering steps.
    JoinBased,
}

/// How a translated variable is accessed.
#[derive(Clone, Debug)]
enum Binding {
    /// Bound by `for $x in collection(...)`: the whole row; field lookups
    /// resolve to table columns.
    Row { columns: Vec<String> },
    /// Bound to a single column expression of the current dataframe.
    /// `seq` marks sequence-valued bindings (nested-query results, unboxed
    /// arrays), whose SQL representation is an ARRAY column.
    Value { col: Col, seq: bool },
    /// A non-key variable after `group by`: only usable inside aggregates.
    Grouped(Col),
    /// A non-key variable bound to a whole row after `group by`.
    GroupedRow { columns: Vec<String> },
}

/// One pending SQL aggregate created while translating expressions above a
/// `group by` clause.
struct PendingAgg {
    alias: String,
    expr: Col,
}

struct Ctx {
    df: DataFrame,
    bindings: Vec<(String, Binding)>,
    /// Current flag column (flag-column strategy, inside a nested query).
    keep: Option<Col>,
    /// Group-by state: key column names plus pending aggregates.
    group: Option<GroupCtx>,
    /// Sort keys seen before `return` (applied after aggregation).
    pending_sort: Vec<(Col, SortOrder)>,
    /// Row-id columns of enclosing nested queries, innermost last; inner
    /// reaggregations must carry them through so the enclosing machinery can
    /// still group by them.
    rids: Vec<String>,
    /// Order-preservation column, when enabled.
    order_col: Option<String>,
}

struct GroupCtx {
    key_cols: Vec<String>,
    aggs: Vec<PendingAgg>,
}

impl Ctx {
    fn lookup(&self, var: &str) -> Option<&Binding> {
        self.bindings.iter().rev().find(|(v, _)| v == var).map(|(_, b)| b)
    }

    fn bind(&mut self, var: &str, b: Binding) {
        self.bindings.push((var.to_string(), b));
    }
}

/// Aggregation applied at the exit of a nested query, chosen from the calling
/// context (`let` wants the array, `count(...)`/`sum(...)` want a scalar) — this
/// is what lets the translation skip materializing arrays it would immediately
/// re-reduce, the pattern §V-D credits for Q8's speedup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum AggMode {
    Array,
    Count,
    Sum,
    Min,
    Max,
    Avg,
}

/// How a collection-row variable is used across the whole query, computed by
/// a pre-pass so nested-query reaggregation only restores (`ANY_VALUE`s) the
/// table columns the query actually touches — keeping the generated query's
/// scanned bytes in line with the handwritten baseline (paper §V-E).
#[derive(Clone, Debug)]
enum RowUsage {
    Fields(std::collections::HashSet<String>),
    Whole,
}

/// The JSONiq→SQL translator. One instance per query keeps fresh-name counters.
pub struct Translator {
    session: Session,
    strategy: NestedStrategy,
    fresh: usize,
    row_usage: std::collections::HashMap<String, RowUsage>,
    /// Use the engine's native `ARRAY_FILTER` for simple nested queries
    /// instead of the flatten/reaggregate machinery — the paper's §VII-B
    /// future-work feature. Off by default, matching the deployed system.
    native_array_filter: bool,
    /// Preserve the input order of the initial collection in the output
    /// (paper §IV-E: "we could address this by adding an order number to each
    /// item"). Off by default, matching the deployed system.
    preserve_order: bool,
}

impl Translator {
    /// Creates a translator bound to a session.
    pub fn new(session: Session, strategy: NestedStrategy) -> Translator {
        Translator {
            session,
            strategy,
            fresh: 0,
            row_usage: std::collections::HashMap::new(),
            native_array_filter: false,
            preserve_order: false,
        }
    }

    /// Enables input-order preservation (paper §IV-E future work): the initial
    /// collection rows are numbered and, absent an explicit `order by`, the
    /// output is sorted by that number.
    pub fn with_order_preservation(mut self, on: bool) -> Translator {
        self.preserve_order = on;
        self
    }

    /// Enables the native `ARRAY_FILTER` fast path (paper §VII-B).
    pub fn with_native_array_filter(mut self, on: bool) -> Translator {
        self.native_array_filter = on;
        self
    }

    /// Translates JSONiq source into a single lazily-executable [`DataFrame`].
    pub fn translate(&mut self, src: &str) -> JResult<DataFrame> {
        let it = compile(src)?;
        self.translate_iter(&it)
    }

    /// Translates an already-compiled iterator tree.
    pub fn translate_iter(&mut self, it: &RIter) -> JResult<DataFrame> {
        self.row_usage.clear();
        analyze_row_usage(it, &mut self.row_usage);
        match it {
            RIter::ReturnClause { .. } => self.translate_flwor(it),
            _ => {
                // Non-FLWOR top level: evaluate over a synthetic single row.
                let df = self.session.sql("SELECT 1 AS \"$DUMMY\"");
                let mut ctx = Ctx {
                    df,
                    bindings: Vec::new(),
                    keep: None,
                    group: None,
                    pending_sort: Vec::new(),
                    rids: Vec::new(),
                    order_col: None,
                };
                let col = self.value(it, &mut ctx)?;
                Ok(ctx.df.select([col.alias("RESULT")]))
            }
        }
    }

    fn fresh_name(&mut self, base: &str) -> String {
        self.fresh += 1;
        format!("{base}{}", self.fresh)
    }

    /// Sanitized SQL column name for a JSONiq variable.
    fn var_col(&mut self, var: &str) -> String {
        let mut s: String = var
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c.to_ascii_uppercase() } else { '_' })
            .collect();
        self.fresh += 1;
        s.push_str(&format!("_{}", self.fresh));
        s
    }

    // ---- FLWOR translation -------------------------------------------------

    /// Collects the clause chain of a FLWOR in source order.
    fn chain(root: &RIter) -> JResult<(Vec<&RIter>, &RIter)> {
        let (mut cur, ret) = match root {
            RIter::ReturnClause { left, expr } => (left.as_ref(), expr.as_ref()),
            _ => return Err(JsoniqError::Translate("expected a FLWOR".into())),
        };
        let mut clauses = Vec::new();
        loop {
            clauses.push(cur);
            let left = match cur {
                RIter::ForClause { left, .. } | RIter::LetClause { left, .. } => left.as_deref(),
                RIter::WhereClause { left, .. }
                | RIter::GroupByClause { left, .. }
                | RIter::OrderByClause { left, .. }
                | RIter::CountClause { left, .. } => Some(left.as_ref()),
                _ => return Err(JsoniqError::Translate("malformed FLWOR chain".into())),
            };
            match left {
                Some(l) => cur = l,
                None => break,
            }
        }
        clauses.reverse();
        Ok((clauses, ret))
    }

    /// True when a FLWOR consists solely of `let` clauses (scalar computation).
    fn is_let_only(root: &RIter) -> bool {
        match Self::chain(root) {
            Ok((clauses, _)) => {
                clauses.iter().all(|c| matches!(c, RIter::LetClause { .. }))
            }
            Err(_) => false,
        }
    }

    /// True when the expression is a nested FLWOR that requires the
    /// nested-query machinery (i.e. not a pure let chain).
    fn is_nested_flwor(e: &RIter) -> bool {
        matches!(e, RIter::ReturnClause { .. }) && !Self::is_let_only(e)
    }

    /// Hoists every nested query out of an expression *before* the expression
    /// itself is rendered (paper §IV-D: non-FLWOR iterators hosting nested
    /// queries must orchestrate the dataframe changes). Each nested query runs
    /// its machinery immediately; its scalar/array result is materialized into
    /// a fresh column bound to a hidden variable, and the expression is
    /// rewritten to reference that variable. This keeps sibling sub-expressions
    /// valid across the reaggregation that the machinery performs.
    fn hoist(&mut self, e: &RIter, ctx: &mut Ctx) -> JResult<RIter> {
        // Aggregate call directly over a nested FLWOR: run the machinery in
        // the aggregate's mode (the §V-D Q8 optimization), hoist the scalar.
        if let RIter::FunctionCall { func, args } = e {
            use Builtin::*;
            if matches!(func, Count | Sum | Min | Max | Avg | Exists | Empty)
                && args.len() == 1
            {
                // Two cases must be evaluated (and stashed) up front because
                // they run the reaggregation machinery, which would invalidate
                // sibling sub-expressions rendered earlier:
                // (a) the argument is a nested FLWOR;
                // (b) SUM/MIN/MAX/AVG over an array-valued value, which
                //     synthesizes a flatten + reaggregate.
                let machinery = Self::is_nested_flwor(&args[0])
                    || (matches!(func, Sum | Min | Max | Avg)
                        && matches!(
                            &args[0],
                            RIter::VarRef(_) | RIter::ObjectLookup { .. } | RIter::ArrayUnbox { .. }
                        )
                        && !self.uses_grouped_var(&args[0], ctx));
                if machinery {
                    let col = self.function(*func, args, ctx)?;
                    return Ok(self.stash(col, false, ctx));
                }
            }
        }
        if Self::is_nested_flwor(e) {
            let col = self.nested_query(e, AggMode::Array, ctx)?;
            return Ok(self.stash(col, true, ctx));
        }
        self.hoist_children(e, ctx)
    }

    /// Materializes a column and binds it to a hidden variable; returns the
    /// variable reference. Because the variable participates in `ctx.bindings`,
    /// later nested-query reaggregations restore it automatically.
    fn stash(&mut self, col: Col, seq: bool, ctx: &mut Ctx) -> RIter {
        let name = self.fresh_name("H");
        ctx.df = ctx.df.with_column(&name, &col);
        let hidden = format!("#hoist{name}");
        ctx.bind(&hidden, Binding::Value { col: f::col(&name), seq });
        RIter::VarRef(hidden)
    }

    fn hoist_children(&mut self, e: &RIter, ctx: &mut Ctx) -> JResult<RIter> {
        Ok(match e {
            RIter::Literal(_) | RIter::VarRef(_) | RIter::Collection(_) => e.clone(),
            RIter::Comparison { op, left, right } => RIter::Comparison {
                op: *op,
                left: Box::new(self.hoist(left, ctx)?),
                right: Box::new(self.hoist(right, ctx)?),
            },
            RIter::Arithmetic { op, left, right } => RIter::Arithmetic {
                op: *op,
                left: Box::new(self.hoist(left, ctx)?),
                right: Box::new(self.hoist(right, ctx)?),
            },
            RIter::Logical { op, left, right } => RIter::Logical {
                op: *op,
                left: Box::new(self.hoist(left, ctx)?),
                right: Box::new(self.hoist(right, ctx)?),
            },
            RIter::StringConcat { left, right } => RIter::StringConcat {
                left: Box::new(self.hoist(left, ctx)?),
                right: Box::new(self.hoist(right, ctx)?),
            },
            RIter::Range { left, right } => RIter::Range {
                left: Box::new(self.hoist(left, ctx)?),
                right: Box::new(self.hoist(right, ctx)?),
            },
            RIter::Not(x) => RIter::Not(Box::new(self.hoist(x, ctx)?)),
            RIter::Neg(x) => RIter::Neg(Box::new(self.hoist(x, ctx)?)),
            RIter::ObjectLookup { base, field } => RIter::ObjectLookup {
                base: Box::new(self.hoist(base, ctx)?),
                field: field.clone(),
            },
            RIter::ArrayUnbox { base } => {
                RIter::ArrayUnbox { base: Box::new(self.hoist(base, ctx)?) }
            }
            RIter::ArrayLookup { base, index } => RIter::ArrayLookup {
                base: Box::new(self.hoist(base, ctx)?),
                index: Box::new(self.hoist(index, ctx)?),
            },
            RIter::Predicate { base, pred } => RIter::Predicate {
                base: Box::new(self.hoist(base, ctx)?),
                pred: Box::new(self.hoist(pred, ctx)?),
            },
            RIter::ObjectConstructor(pairs) => RIter::ObjectConstructor(
                pairs
                    .iter()
                    .map(|(k, v)| Ok((k.clone(), self.hoist(v, ctx)?)))
                    .collect::<JResult<_>>()?,
            ),
            RIter::ArrayConstructor(items) => RIter::ArrayConstructor(
                items.iter().map(|i| self.hoist(i, ctx)).collect::<JResult<_>>()?,
            ),
            RIter::Sequence(items) => RIter::Sequence(
                items.iter().map(|i| self.hoist(i, ctx)).collect::<JResult<_>>()?,
            ),
            RIter::If { cond, then, else_ } => RIter::If {
                cond: Box::new(self.hoist(cond, ctx)?),
                then: Box::new(self.hoist(then, ctx)?),
                else_: Box::new(self.hoist(else_, ctx)?),
            },
            RIter::FunctionCall { func, args } => RIter::FunctionCall {
                func: *func,
                args: args.iter().map(|a| self.hoist(a, ctx)).collect::<JResult<_>>()?,
            },
            // Let-only FLWORs inline lazily in `value`; nested FLWORs were
            // handled in `hoist` before recursing here.
            flwor @ (RIter::ReturnClause { .. }
            | RIter::ForClause { .. }
            | RIter::LetClause { .. }
            | RIter::WhereClause { .. }
            | RIter::GroupByClause { .. }
            | RIter::OrderByClause { .. }
            | RIter::CountClause { .. }) => flwor.clone(),
        })
    }

    /// If `e` is a lookup/unbox chain rooted at `collection(...)` (e.g. the
    /// paper's `collection("adl").Jet[]`), returns the collection name and the
    /// chain rewritten over a variable.
    fn extract_collection(e: &RIter, var: &str) -> Option<(String, RIter)> {
        match e {
            RIter::Collection(name) => Some((name.clone(), RIter::VarRef(var.to_string()))),
            RIter::ObjectLookup { base, field } => {
                let (name, nb) = Self::extract_collection(base, var)?;
                Some((name, RIter::ObjectLookup { base: Box::new(nb), field: field.clone() }))
            }
            RIter::ArrayUnbox { base } => {
                let (name, nb) = Self::extract_collection(base, var)?;
                Some((name, RIter::ArrayUnbox { base: Box::new(nb) }))
            }
            RIter::ArrayLookup { base, index } => {
                let (name, nb) = Self::extract_collection(base, var)?;
                Some((name, RIter::ArrayLookup { base: Box::new(nb), index: index.clone() }))
            }
            _ => None,
        }
    }

    fn translate_flwor(&mut self, root: &RIter) -> JResult<DataFrame> {
        let (clauses, ret) = Self::chain(root)?;
        let mut ctx: Option<Ctx> = None;
        for clause in clauses {
            ctx = Some(self.clause(clause, ctx)?);
        }
        let mut ctx = ctx.ok_or_else(|| JsoniqError::Translate("empty FLWOR".into()))?;

        // `return`: translate the output expression (registering pending
        // aggregates when grouped), materialize the aggregation, sort, project.
        let ret = if ctx.group.is_some() {
            // In grouped mode the return expression is translated as-is so
            // aggregate calls over grouped variables register pending SQL
            // aggregates rather than nested queries.
            ret.clone()
        } else {
            self.hoist(ret, &mut ctx)?
        };
        let out = self.value(&ret, &mut ctx)?;
        let mut df = ctx.df;
        let grouped = ctx.group.is_some();
        if let Some(group) = ctx.group.take() {
            df = Self::apply_group(df, &group);
        }
        if !ctx.pending_sort.is_empty() {
            df = df.sort(&ctx.pending_sort);
        } else if let Some(ord) = &ctx.order_col {
            // Grouping discards tuple order (JSONiq group-by defines no order
            // either); only ungrouped outputs reflect the input order.
            if !grouped {
                df = df.sort(&[(f::col(ord), SortOrder::Asc)]);
            }
        }
        Ok(df.select([out.alias("RESULT")]))
    }

    fn apply_group(df: DataFrame, group: &GroupCtx) -> DataFrame {
        let keys: Vec<Col> = group.key_cols.iter().map(|k| f::col(k)).collect();
        let items: Vec<_> = group.aggs.iter().map(|a| a.expr.alias(&a.alias)).collect();
        df.group_by(&keys).agg(items)
    }

    fn clause(&mut self, clause: &RIter, ctx: Option<Ctx>) -> JResult<Ctx> {
        match clause {
            RIter::ForClause { var, at, expr, allowing_empty, .. } => {
                self.for_clause(var, at.as_deref(), expr, *allowing_empty, ctx)
            }
            RIter::LetClause { var, expr, .. } => {
                let mut ctx = ctx.ok_or_else(|| {
                    JsoniqError::Translate("let cannot start a translated query".into())
                })?;
                if ctx.group.is_some() {
                    return Err(JsoniqError::Translate(
                        "let after group by is not supported by the translation".into(),
                    ));
                }
                // Sequence-valued lets (`let $x := $e.JET[]`, `let $x := (for ...)`)
                // are represented as ARRAY columns and marked as sequences.
                let (col, seq) = match expr.as_ref() {
                    RIter::ArrayUnbox { base } => {
                        let base = self.hoist(base, &mut ctx)?;
                        (self.value(&base, &mut ctx)?, true)
                    }
                    RIter::ReturnClause { .. } if !Self::is_let_only(expr) => {
                        (self.value(expr, &mut ctx)?, true)
                    }
                    _ => {
                        let e = self.hoist(expr, &mut ctx)?;
                        (self.value(&e, &mut ctx)?, false)
                    }
                };
                let name = self.var_col(var);
                ctx.df = ctx.df.with_column(&name, &col);
                ctx.bind(var, Binding::Value { col: f::col(&name), seq });
                Ok(ctx)
            }
            RIter::WhereClause { pred, .. } => {
                let mut ctx = ctx.ok_or_else(|| {
                    JsoniqError::Translate("where cannot start a query".into())
                })?;
                if ctx.group.is_some() {
                    return Err(JsoniqError::Translate(
                        "where after group by is not supported by the translation".into(),
                    ));
                }
                let pred = self.hoist(pred, &mut ctx)?;
                let cond = self.value(&pred, &mut ctx)?;
                match ctx.keep.clone() {
                    // Inside a flag-column nested query: fold the predicate
                    // into the KEEP flag instead of dropping rows (§IV-C1).
                    Some(keep) => {
                        let name = self.fresh_name("KEEP");
                        let flag = keep.and(&f::iff(&cond, &f::lit_b(true), &f::lit_b(false)));
                        ctx.df = ctx.df.with_column(&name, &flag);
                        ctx.keep = Some(f::col(&name));
                    }
                    None => {
                        ctx.df = ctx.df.filter(&cond);
                    }
                }
                Ok(ctx)
            }
            RIter::GroupByClause { keys, .. } => {
                let mut ctx = ctx.ok_or_else(|| {
                    JsoniqError::Translate("group by cannot start a query".into())
                })?;
                if ctx.keep.is_some() {
                    return Err(JsoniqError::Translate(
                        "group by inside a nested query is not supported".into(),
                    ));
                }
                let mut key_cols = Vec::with_capacity(keys.len());
                for (var, key_expr) in keys {
                    let col = match key_expr {
                        Some(e) => {
                            let e = self.hoist(e, &mut ctx)?;
                            self.value(&e, &mut ctx)?
                        }
                        None => match ctx.lookup(var) {
                            Some(Binding::Value { col: c, .. }) => c.clone(),
                            _ => {
                                return Err(JsoniqError::Translate(format!(
                                    "group-by variable ${var} must be bound to a value"
                                )))
                            }
                        },
                    };
                    let name = self.var_col(var);
                    ctx.df = ctx.df.with_column(&name, &col);
                    key_cols.push(name);
                }
                // Re-bind: keys become plain columns; every previous binding
                // becomes grouped (only aggregates may touch it).
                let mut new_bindings = Vec::with_capacity(ctx.bindings.len() + keys.len());
                for (v, b) in &ctx.bindings {
                    let nb = match b {
                        Binding::Value { col: c, .. } => Binding::Grouped(c.clone()),
                        Binding::Row { columns } => {
                            Binding::GroupedRow { columns: columns.clone() }
                        }
                        other => other.clone(),
                    };
                    new_bindings.push((v.clone(), nb));
                }
                for ((var, _), name) in keys.iter().zip(&key_cols) {
                    new_bindings.push((var.clone(), Binding::Value { col: f::col(name), seq: false }));
                }
                ctx.bindings = new_bindings;
                ctx.group = Some(GroupCtx { key_cols, aggs: Vec::new() });
                Ok(ctx)
            }
            RIter::OrderByClause { keys, .. } => {
                let mut ctx = ctx.ok_or_else(|| {
                    JsoniqError::Translate("order by cannot start a query".into())
                })?;
                let mut sort = Vec::with_capacity(keys.len());
                for (e, desc) in keys {
                    let e = self.hoist(e, &mut ctx)?;
                    let col = self.value(&e, &mut ctx)?;
                    sort.push((col, if *desc { SortOrder::Desc } else { SortOrder::Asc }));
                }
                ctx.pending_sort = sort;
                Ok(ctx)
            }
            RIter::CountClause { var, .. } => {
                let mut ctx = ctx.ok_or_else(|| {
                    JsoniqError::Translate("count cannot start a query".into())
                })?;
                // Tuple numbering; the translation processes data unordered
                // (paper §IV-E), so this numbering is arbitrary but unique.
                let name = self.var_col(var);
                ctx.df = ctx.df.with_column(&name, &f::seq8().add(&f::lit(1)));
                ctx.bind(var, Binding::Value { col: f::col(&name), seq: false });
                Ok(ctx)
            }
            other => Err(JsoniqError::Translate(format!("unexpected clause {other:?}"))),
        }
    }

    fn for_clause(
        &mut self,
        var: &str,
        at: Option<&str>,
        expr: &RIter,
        allowing_empty: bool,
        ctx: Option<Ctx>,
    ) -> JResult<Ctx> {
        // `for $x in collection("t").FIELD[]`: bind the collection to a hidden
        // row variable first, then proceed with the rewritten chain.
        if !matches!(expr, RIter::Collection(_)) {
            let hidden = self.fresh_name("#row");
            if let Some((name, rewritten)) = Self::extract_collection(expr, &hidden) {
                let ctx2 =
                    self.for_clause(&hidden, None, &RIter::Collection(name), false, ctx)?;
                return self.for_clause(var, at, &rewritten, allowing_empty, Some(ctx2));
            }
        }
        match expr {
            RIter::Collection(name) => {
                if at.is_some() {
                    return Err(JsoniqError::Translate(
                        "positional variables over collections are not supported".into(),
                    ));
                }
                let table_df = self.session.table(name);
                let columns: Vec<String> = self
                    .session
                    .database()
                    .table(name)
                    .ok_or_else(|| {
                        JsoniqError::Translate(format!("unknown collection '{name}'"))
                    })?
                    .schema()
                    .iter()
                    .map(|c| c.name.clone())
                    .collect();
                match ctx {
                    None => {
                        let mut ctx = Ctx {
                            df: table_df,
                            bindings: Vec::new(),
                            keep: None,
                            group: None,
                            pending_sort: Vec::new(),
                            rids: Vec::new(),
                            order_col: None,
                        };
                        if self.preserve_order {
                            let ord = self.fresh_name("ORD");
                            ctx.df = ctx.df.with_column(&ord, &f::seq8());
                            ctx.order_col = Some(ord);
                        }
                        ctx.bind(var, Binding::Row { columns });
                        Ok(ctx)
                    }
                    Some(mut ctx) => {
                        // Successive `for` over another collection = join
                        // (paper §II-E); emitted as a cross join whose
                        // predicates the engine optimizer moves into the ON
                        // clause to form a hash join.
                        ctx.df = ctx.df.cross_join(&table_df);
                        ctx.bind(var, Binding::Row { columns });
                        Ok(ctx)
                    }
                }
            }
            _ => {
                let mut ctx = ctx.ok_or_else(|| {
                    JsoniqError::Translate(
                        "a translated query must start with a collection".into(),
                    )
                })?;
                // Array-valued sources flatten; which expressions are
                // array-valued is decided structurally (see DESIGN.md).
                let target = match expr {
                    RIter::ArrayUnbox { base } => self.value(base, &mut ctx)?,
                    RIter::VarRef(_)
                    | RIter::ObjectLookup { .. }
                    | RIter::ArrayLookup { .. }
                    | RIter::ReturnClause { .. }
                    | RIter::FunctionCall { .. }
                    | RIter::If { .. } => self.value(expr, &mut ctx)?,
                    RIter::Range { .. } => {
                        return Err(JsoniqError::Translate(
                            "range iteration is not supported by the translation; use `at` \
                             positional variables instead"
                                .into(),
                        ))
                    }
                    // Scalar expression: behaves like a singleton let.
                    other => {
                        let col = self.value(other, &mut ctx)?;
                        let name = self.var_col(var);
                        ctx.df = ctx.df.with_column(&name, &col);
                        ctx.bind(var, Binding::Value { col: f::col(&name), seq: false });
                        if let Some(a) = at {
                            let aname = self.var_col(a);
                            ctx.df = ctx.df.with_column(&aname, &f::lit(1));
                            ctx.bind(a, Binding::Value { col: f::col(&aname), seq: false });
                        }
                        return Ok(ctx);
                    }
                };
                let alias = self.fresh_name("F");
                let in_nested = ctx.keep.is_some();
                let outer = in_nested || allowing_empty;
                ctx.df = ctx.df.flatten(&target, &alias, outer);
                if in_nested {
                    // Maintain the KEEP flag: padding rows produced by the
                    // outer flatten must not contribute to reaggregation.
                    let name = self.fresh_name("KEEP");
                    let keep = ctx
                        .keep
                        .clone()
                        .expect("nested context")
                        .and(&f::flatten_index(&alias).is_not_null());
                    ctx.df = ctx.df.with_column(&name, &keep);
                    ctx.keep = Some(f::col(&name));
                }
                ctx.bind(var, Binding::Value { col: f::flatten_value(&alias), seq: false });
                if let Some(a) = at {
                    ctx.bind(a, Binding::Value { col: f::flatten_index(&alias).add(&f::lit(1)), seq: false });
                }
                Ok(ctx)
            }
        }
    }

    // ---- nested queries ------------------------------------------------

    /// Translates a nested FLWOR appearing inside an expression, reaggregating
    /// per parent row. Returns a column holding the nested result (an array
    /// for [`AggMode::Array`], a scalar otherwise) and mutates `ctx.df`.
    fn nested_query(&mut self, root: &RIter, mode: AggMode, ctx: &mut Ctx) -> JResult<Col> {
        if self.native_array_filter {
            if let Some(col) = self.try_native_filter(root, mode, ctx)? {
                return Ok(col);
            }
        }
        match self.strategy {
            NestedStrategy::FlagColumn => self.nested_flag(root, mode, ctx),
            NestedStrategy::JoinBased => self.nested_join(root, mode, ctx),
        }
    }

    /// Recognizes `for $x in <array>[] where <simple predicates on $x>
    /// return $x` and emits chained `ARRAY_FILTER` calls: no flatten, no
    /// reaggregation, no row-id bookkeeping (paper §VII-B).
    fn try_native_filter(
        &mut self,
        root: &RIter,
        mode: AggMode,
        ctx: &mut Ctx,
    ) -> JResult<Option<Col>> {
        // Only Array/Count-shaped results have a native reduction.
        if !matches!(mode, AggMode::Array | AggMode::Count) {
            return Ok(None);
        }
        let (clauses, ret) = Self::chain(root)?;
        let (var, source) = match clauses.first() {
            Some(RIter::ForClause { var, at: None, allowing_empty: false, expr, .. }) => {
                match expr.as_ref() {
                    RIter::ArrayUnbox { base } => (var, base.as_ref()),
                    _ => return Ok(None),
                }
            }
            _ => return Ok(None),
        };
        if !matches!(ret, RIter::VarRef(v) if v == var) {
            return Ok(None);
        }
        // Every remaining clause must be a simple where over $var.
        let mut filters: Vec<(Option<String>, &'static str, &RIter)> = Vec::new();
        for c in &clauses[1..] {
            let pred = match c {
                RIter::WhereClause { pred, .. } => pred,
                _ => return Ok(None),
            };
            let mut conjuncts = vec![pred.as_ref()];
            let mut simple = Vec::new();
            while let Some(e) = conjuncts.pop() {
                match e {
                    RIter::Logical { op: BinaryOp::And, left, right } => {
                        conjuncts.push(left);
                        conjuncts.push(right);
                    }
                    RIter::Comparison { op, left, right } => {
                        let (subject, lit, flip) = match (left.as_ref(), right.as_ref()) {
                            (s, RIter::Literal(_)) => (s, right.as_ref(), false),
                            (RIter::Literal(_), s) => (s, left.as_ref(), true),
                            _ => return Ok(None),
                        };
                        let field = match subject {
                            RIter::VarRef(v) if v == var => None,
                            RIter::ObjectLookup { base, field } => match base.as_ref() {
                                RIter::VarRef(v) if v == var => Some(field.clone()),
                                _ => return Ok(None),
                            },
                            _ => return Ok(None),
                        };
                        let op_str = match (op, flip) {
                            (BinaryOp::Eq, _) => "=",
                            (BinaryOp::Ne, _) => "<>",
                            (BinaryOp::Lt, false) | (BinaryOp::Gt, true) => "<",
                            (BinaryOp::Le, false) | (BinaryOp::Ge, true) => "<=",
                            (BinaryOp::Gt, false) | (BinaryOp::Lt, true) => ">",
                            (BinaryOp::Ge, false) | (BinaryOp::Le, true) => ">=",
                            _ => return Ok(None),
                        };
                        simple.push((field, op_str, lit));
                    }
                    _ => return Ok(None),
                }
            }
            filters.extend(simple);
        }
        let mut col = self.value(source, ctx)?;
        for (field, op, lit) in filters {
            let field_col = match field {
                Some(f) => f::lit_s(&f),
                None => f::null(),
            };
            let lit_col = self.value(lit, ctx)?;
            col = f::array_filter(&col, &field_col, &f::lit_s(op), &lit_col);
        }
        Ok(Some(match mode {
            AggMode::Array => col,
            AggMode::Count => f::array_size(&col),
            _ => unreachable!("guarded above"),
        }))
    }

    /// Ensures every `Value` binding is backed by a plain, uniquely named
    /// column, so it survives reaggregation and join re-qualification.
    fn materialize_bindings(&mut self, ctx: &mut Ctx) {
        let mut adds: Vec<(String, Col)> = Vec::new();
        let mut new_bindings = Vec::with_capacity(ctx.bindings.len());
        for (v, b) in ctx.bindings.clone() {
            match b {
                Binding::Value { col: c, seq } => {
                    let name = self.var_col(&v);
                    adds.push((name.clone(), c));
                    new_bindings.push((v, Binding::Value { col: f::col(&name), seq }));
                }
                other => new_bindings.push((v, other)),
            }
        }
        for (name, c) in adds {
            ctx.df = ctx.df.with_column(&name, &c);
        }
        ctx.bindings = new_bindings;
    }

    /// Table columns backing `Row` bindings that must survive reaggregation:
    /// only the columns the whole query references through each row variable
    /// (all of them when the variable is used as a whole object).
    fn row_columns(&self, ctx: &Ctx) -> Vec<String> {
        let mut cols = Vec::new();
        for (v, b) in &ctx.bindings {
            if let Binding::Row { columns } = b {
                match self.row_usage.get(v) {
                    Some(RowUsage::Fields(fields)) => {
                        for c in columns {
                            if fields.iter().any(|f| f.eq_ignore_ascii_case(c))
                                && !cols.contains(c)
                            {
                                cols.push(c.clone());
                            }
                        }
                    }
                    _ => {
                        for c in columns {
                            if !cols.contains(c) {
                                cols.push(c.clone());
                            }
                        }
                    }
                }
            }
        }
        cols
    }

    /// `(variable, column)` pairs for all `Value` bindings.
    fn value_columns(ctx: &Ctx) -> Vec<(String, Col)> {
        let mut out = Vec::new();
        for (v, b) in &ctx.bindings {
            if let Binding::Value { col: c, .. } = b {
                out.push((v.clone(), c.clone()));
            }
        }
        out
    }

    fn agg_of(mode: AggMode, value: &Col) -> Col {
        match mode {
            AggMode::Array => f::array_agg(value),
            AggMode::Count => f::count(value),
            AggMode::Sum => f::sum(value),
            AggMode::Min => f::min(value),
            AggMode::Max => f::max(value),
            AggMode::Avg => f::avg(value),
        }
    }

    fn agg_default(mode: AggMode, col: &Col) -> Col {
        match mode {
            // JSONiq: an empty nested query yields [], count 0, sum 0.
            AggMode::Array => f::nvl(col, &f::array_construct(&[])),
            AggMode::Count | AggMode::Sum => f::nvl(col, &f::lit(0)),
            AggMode::Min | AggMode::Max | AggMode::Avg => col.clone(),
        }
    }

    fn blank_ctx(&self) -> Ctx {
        Ctx {
            df: self.session.sql("SELECT 1"),
            bindings: Vec::new(),
            keep: None,
            group: None,
            pending_sort: Vec::new(),
            rids: Vec::new(),
            order_col: None,
        }
    }

    /// Flag-column strategy (paper §IV-C1).
    fn nested_flag(&mut self, root: &RIter, mode: AggMode, ctx: &mut Ctx) -> JResult<Col> {
        let (clauses, ret) = Self::chain(root)?;
        self.materialize_bindings(ctx);
        let rid = self.fresh_name("RID");
        ctx.df = ctx.df.with_column(&rid, &f::seq8());
        ctx.rids.push(rid.clone());

        // Enter the nested query: same dataframe, KEEP tracking on.
        let outer_keep = ctx.keep.clone();
        let keep0 = self.fresh_name("KEEP");
        let init = outer_keep.clone().unwrap_or_else(|| f::lit_b(true));
        ctx.df = ctx.df.with_column(&keep0, &init);
        ctx.keep = Some(f::col(&keep0));
        let bindings_before = ctx.bindings.len();

        for c in clauses {
            let taken = std::mem::replace(ctx, self.blank_ctx());
            *ctx = self.clause(c, Some(taken))?;
        }
        let ret = self.hoist(ret, ctx)?;
        let value = self.value(&ret, ctx)?;
        let keep = ctx.keep.clone().expect("keep flag");
        let guarded = f::iff(&keep, &value, &f::null());

        // Reaggregate by row id; restore outer bindings via ANY_VALUE.
        let result = self.fresh_name("NESTED");
        let mut items = vec![Self::agg_of(mode, &guarded).alias(&result)];
        // Bindings created inside the nested query go out of scope.
        ctx.bindings.truncate(bindings_before);
        for c in self.row_columns(ctx) {
            items.push(f::any_value(&f::col(&c)).alias(&c));
        }
        let mut rebind = Vec::new();
        for (v, col) in Self::value_columns(ctx) {
            let name = self.var_col(&v);
            items.push(f::any_value(&col).alias(&name));
            rebind.push((v, name));
        }
        // Preserve the row ids of enclosing nested queries.
        for outer_rid in ctx.rids.iter().filter(|r| **r != rid) {
            items.push(f::any_value(&f::col(outer_rid)).alias(outer_rid));
        }
        // Preserve the order-preservation column, if any.
        if let Some(ord) = &ctx.order_col {
            items.push(f::any_value(&f::col(ord)).alias(ord));
        }
        // Restore the enclosing KEEP flag, if any.
        let restored_keep = if let Some(k) = &outer_keep {
            let name = self.fresh_name("KEEP");
            items.push(f::any_value(k).alias(&name));
            Some(f::col(&name))
        } else {
            None
        };
        ctx.df = ctx.df.group_by(&[f::col(&rid)]).agg(items);
        for (v, name) in rebind {
            if let Some(slot) = ctx.bindings.iter_mut().rev().find(|(bv, _)| *bv == v) {
                let seq = matches!(slot.1, Binding::Value { seq: true, .. });
                slot.1 = Binding::Value { col: f::col(&name), seq };
            }
        }
        ctx.keep = restored_keep;
        ctx.rids.retain(|r| *r != rid);
        Ok(Self::agg_default(mode, &f::col(&result)))
    }

    /// JOIN-based strategy (paper §IV-C2).
    fn nested_join(&mut self, root: &RIter, mode: AggMode, ctx: &mut Ctx) -> JResult<Col> {
        let (clauses, ret) = Self::chain(root)?;
        self.materialize_bindings(ctx);
        let rid = self.fresh_name("RID");
        ctx.df = ctx.df.with_column(&rid, &f::seq8());
        // Copy the dataframe (same SQL text; SEQ8 is deterministic per plan
        // site, so both copies assign identical row ids).
        let copy = ctx.df.clone();

        // The nested query runs with plain filters and non-outer flattens,
        // freely eliminating rows.
        let mut inner = Ctx {
            df: ctx.df.clone(),
            bindings: ctx.bindings.clone(),
            keep: None,
            group: None,
            pending_sort: Vec::new(),
            rids: {
                let mut r = ctx.rids.clone();
                r.push(rid.clone());
                r
            },
            order_col: ctx.order_col.clone(),
        };
        for c in clauses {
            let taken = std::mem::replace(&mut inner, self.blank_ctx());
            inner = self.clause(c, Some(taken))?;
        }
        let ret = self.hoist(ret, &mut inner)?;
        let value = self.value(&ret, &mut inner)?;
        let result = self.fresh_name("NESTED");
        let partial = inner
            .df
            .group_by(&[f::col(&rid)])
            .agg([Self::agg_of(mode, &value).alias(&result)]);

        // Left outer join the copy with the partial result on the row id.
        let l = self.fresh_name("L");
        let r = self.fresh_name("R");
        let on = f::col_of(&l, &rid).eq(&f::col_of(&r, &rid));
        ctx.df = copy.join(&partial, JoinType::LeftOuter, &l, &r, Some(&on));
        // `materialize_bindings` made every binding a plain bare-named column,
        // which still resolves after the join; the result needs NULL repair.
        Ok(Self::agg_default(mode, &f::col_of(&r, &result)))
    }

    // ---- expression translation ---------------------------------------

    /// Translates a non-FLWOR expression to a [`Col`]. Nested FLWORs reached
    /// here run the nested-query machinery, mutating `ctx.df` (the paper's
    /// "the incoming DataFrame is passed into the right child").
    fn value(&mut self, it: &RIter, ctx: &mut Ctx) -> JResult<Col> {
        match it {
            RIter::Literal(v) => literal(v),
            RIter::VarRef(v) => match ctx.lookup(v) {
                Some(Binding::Value { col: c, .. }) => Ok(c.clone()),
                Some(Binding::Row { columns }) => {
                    // Whole-row reference: reconstruct the object.
                    let pairs: Vec<(&str, Col)> =
                        columns.iter().map(|c| (c.as_str(), f::col(c))).collect();
                    Ok(f::object_construct(&pairs))
                }
                Some(Binding::Grouped(_)) | Some(Binding::GroupedRow { .. }) => {
                    Err(JsoniqError::Translate(format!(
                        "grouped variable ${v} may only be used inside an aggregate function"
                    )))
                }
                None => Err(JsoniqError::Translate(format!("unbound variable ${v}"))),
            },
            RIter::ObjectLookup { base, field } => match base.as_ref() {
                RIter::VarRef(v) => match ctx.lookup(v).cloned() {
                    Some(Binding::Row { columns }) => {
                        let name = columns
                            .iter()
                            .find(|c| c.eq_ignore_ascii_case(field))
                            .cloned()
                            .ok_or_else(|| {
                                JsoniqError::Translate(format!(
                                    "collection bound to ${v} has no column '{field}'"
                                ))
                            })?;
                        Ok(f::col(&name))
                    }
                    Some(Binding::Value { col: c, .. }) => Ok(c.subfield(field)),
                    Some(Binding::Grouped(_)) | Some(Binding::GroupedRow { .. }) => {
                        Err(JsoniqError::Translate(format!(
                            "grouped variable ${v} may only be used inside an aggregate"
                        )))
                    }
                    None => Err(JsoniqError::Translate(format!("unbound variable ${v}"))),
                },
                _ => Ok(self.value(base, ctx)?.subfield(field)),
            },
            RIter::ArrayLookup { base, index } => {
                let b = self.value(base, ctx)?;
                let i = self.value(index, ctx)?;
                // JSONiq is 1-based, Snowflake GET is 0-based.
                Ok(f::get(&b, &i.sub(&f::lit(1))))
            }
            RIter::Predicate { base, pred } => {
                let b = match base.as_ref() {
                    RIter::ReturnClause { .. } => self.nested_query(base, AggMode::Array, ctx)?,
                    _ => self.value(base, ctx)?,
                };
                let p = self.value(pred, ctx)?;
                Ok(f::get(&b, &p.sub(&f::lit(1))))
            }
            RIter::Comparison { op, left, right } => {
                let l = self.value(left, ctx)?;
                let r = self.value(right, ctx)?;
                Ok(match op {
                    BinaryOp::Eq => l.eq(&r),
                    BinaryOp::Ne => l.neq(&r),
                    BinaryOp::Lt => l.lt(&r),
                    BinaryOp::Le => l.le(&r),
                    BinaryOp::Gt => l.gt(&r),
                    BinaryOp::Ge => l.ge(&r),
                    _ => return Err(JsoniqError::Translate("bad comparison".into())),
                })
            }
            RIter::Arithmetic { op, left, right } => {
                let l = self.value(left, ctx)?;
                let r = self.value(right, ctx)?;
                Ok(match op {
                    BinaryOp::Add => l.add(&r),
                    BinaryOp::Sub => l.sub(&r),
                    BinaryOp::Mul => l.mul(&r),
                    BinaryOp::Div => l.div(&r),
                    // Floor-based integer division; the workloads use it on
                    // non-negative domains where it matches truncation.
                    BinaryOp::IDiv => f::floor(&l.div(&r)).cast("INT"),
                    BinaryOp::Mod => l.rem(&r),
                    _ => return Err(JsoniqError::Translate("bad arithmetic".into())),
                })
            }
            RIter::Logical { op, left, right } => {
                let l = self.value(left, ctx)?;
                let r = self.value(right, ctx)?;
                Ok(match op {
                    BinaryOp::And => l.and(&r),
                    BinaryOp::Or => l.or(&r),
                    _ => return Err(JsoniqError::Translate("bad logical".into())),
                })
            }
            RIter::StringConcat { left, right } => {
                let l = self.value(left, ctx)?;
                let r = self.value(right, ctx)?;
                Ok(f::concat2(&l, &r))
            }
            RIter::Not(x) => Ok(self.value(x, ctx)?.not()),
            RIter::Neg(x) => Ok(self.value(x, ctx)?.neg()),
            RIter::If { cond, then, else_ } => {
                let c = self.value(cond, ctx)?;
                let t = self.value(then, ctx)?;
                let e = self.value(else_, ctx)?;
                Ok(f::iff(&c, &t, &e))
            }
            RIter::ObjectConstructor(pairs) => {
                let mut items: Vec<(String, Col)> = Vec::with_capacity(pairs.len());
                for (k, v) in pairs {
                    items.push((k.clone(), self.value(v, ctx)?));
                }
                let refs: Vec<(&str, Col)> =
                    items.iter().map(|(k, c)| (k.as_str(), c.clone())).collect();
                Ok(f::object_construct(&refs))
            }
            RIter::ArrayConstructor(items) => {
                // Members that are themselves sequences/arrays concatenate via
                // ARRAY_CAT; scalars wrap in singleton arrays.
                let mut acc: Option<Col> = None;
                let mut scalars: Vec<Col> = Vec::new();
                fn flush(acc: &mut Option<Col>, scalars: &mut Vec<Col>) {
                    if !scalars.is_empty() {
                        let refs: Vec<&Col> = scalars.iter().collect();
                        let arr = f::array_construct(&refs);
                        *acc = Some(match acc.take() {
                            None => arr,
                            Some(a) => f::array_cat(&a, &arr),
                        });
                        scalars.clear();
                    }
                }
                for item in items {
                    let is_seq_var = matches!(item, RIter::VarRef(v)
                        if matches!(ctx.lookup(v), Some(Binding::Value { seq: true, .. })));
                    if is_seq_var {
                        let arr = self.value(item, ctx)?;
                        flush(&mut acc, &mut scalars);
                        acc = Some(match acc.take() {
                            None => arr,
                            Some(a) => f::array_cat(&a, &arr),
                        });
                        continue;
                    }
                    match item {
                        RIter::ArrayUnbox { base } => {
                            let arr = self.value(base, ctx)?;
                            flush(&mut acc, &mut scalars);
                            acc = Some(match acc.take() {
                                None => arr,
                                Some(a) => f::array_cat(&a, &arr),
                            });
                        }
                        RIter::ReturnClause { .. } => {
                            let arr = self.nested_query(item, AggMode::Array, ctx)?;
                            flush(&mut acc, &mut scalars);
                            acc = Some(match acc.take() {
                                None => arr,
                                Some(a) => f::array_cat(&a, &arr),
                            });
                        }
                        _ => scalars.push(self.value(item, ctx)?),
                    }
                }
                flush(&mut acc, &mut scalars);
                Ok(acc.unwrap_or_else(|| f::array_construct(&[])))
            }
            RIter::Sequence(items) => match items.as_slice() {
                [] => Ok(f::null()),
                [one] => self.value(one, ctx),
                _ => Err(JsoniqError::Translate(
                    "general sequences are not supported by the translation; use arrays".into(),
                )),
            },
            RIter::ArrayUnbox { .. } => Err(JsoniqError::Translate(
                "array unboxing is only supported in for clauses, aggregates, and array \
                 constructors"
                    .into(),
            )),
            RIter::Range { .. } => Err(JsoniqError::Translate(
                "range expressions are not supported by the translation".into(),
            )),
            RIter::ReturnClause { .. } => {
                if Self::is_let_only(it) {
                    // A let-only FLWOR (typically produced by function
                    // inlining) is a scalar computation, not a nested query.
                    let (clauses, ret) = Self::chain(it)?;
                    for c in clauses {
                        let taken = std::mem::replace(ctx, self.blank_ctx());
                        *ctx = self.clause(c, Some(taken))?;
                    }
                    self.value(ret, ctx)
                } else {
                    self.nested_query(it, AggMode::Array, ctx)
                }
            }
            RIter::ForClause { .. }
            | RIter::LetClause { .. }
            | RIter::WhereClause { .. }
            | RIter::GroupByClause { .. }
            | RIter::OrderByClause { .. }
            | RIter::CountClause { .. } => {
                Err(JsoniqError::Translate("dangling FLWOR clause".into()))
            }
            RIter::Collection(_) => Err(JsoniqError::Translate(
                "collection() is only supported as a for-clause source".into(),
            )),
            RIter::FunctionCall { func, args } => self.function(*func, args, ctx),
        }
    }

    /// Maps aggregate-style builtins over sequences (grouped variables, nested
    /// FLWORs, unboxed arrays) and scalar builtins over columns.
    fn function(&mut self, func: Builtin, args: &[RIter], ctx: &mut Ctx) -> JResult<Col> {
        use Builtin::*;
        // Sequence aggregates first: their argument decides the plan shape.
        if matches!(func, Count | Sum | Min | Max | Avg | Exists | Empty) {
            let arg = args
                .first()
                .ok_or_else(|| JsoniqError::Translate(format!("{func:?} requires an argument")))?;
            let mode = match func {
                Count | Exists | Empty => AggMode::Count,
                Sum => AggMode::Sum,
                Min => AggMode::Min,
                Max => AggMode::Max,
                Avg => AggMode::Avg,
                _ => unreachable!(),
            };
            let scalar = match arg {
                // Aggregate over a nested query: reaggregate directly in the
                // wanted mode, skipping the intermediate array (cf. §V-D Q8).
                RIter::ReturnClause { .. } => Some(self.nested_query(arg, mode, ctx)?),
                // Aggregate over an unboxed array.
                RIter::ArrayUnbox { base } => {
                    let col = self.value(base, ctx)?;
                    match func {
                        Count | Exists | Empty => Some(f::array_size(&col)),
                        // SUM/MIN/MAX/AVG over an array have no single SQL
                        // function; synthesize a flatten + reaggregate.
                        _ => Some(self.aggregate_array(base, mode, ctx)?),
                    }
                }
                // Aggregate over a grouped variable (after group by).
                RIter::VarRef(v)
                    if matches!(
                        ctx.lookup(v),
                        Some(Binding::Grouped(_) | Binding::GroupedRow { .. })
                    ) =>
                {
                    let agg_expr = match (func, ctx.lookup(v).cloned()) {
                        (Count, _) => f::count_star(),
                        (_, Some(Binding::Grouped(c))) => Self::agg_of(mode, &c),
                        _ => {
                            return Err(JsoniqError::Translate(format!(
                                "cannot aggregate grouped row variable ${v} with {func:?}"
                            )))
                        }
                    };
                    Some(self.register_agg(agg_expr, ctx)?)
                }
                // Aggregate over an expression of grouped variables, e.g.
                // sum($x.price).
                e if self.uses_grouped_var(e, ctx) => {
                    let inner = self.value_with_grouped_as_value(e, ctx)?;
                    let agg_expr = Self::agg_of(mode, &inner);
                    Some(self.register_agg(agg_expr, ctx)?)
                }
                // Aggregate over a variable/lookup holding an array.
                RIter::VarRef(_) | RIter::ObjectLookup { .. } => {
                    let col = self.value(arg, ctx)?;
                    match func {
                        Count | Exists | Empty => Some(f::array_size(&col)),
                        _ => Some(self.aggregate_array(arg, mode, ctx)?),
                    }
                }
                _ => None,
            };
            let scalar = scalar.ok_or_else(|| {
                JsoniqError::Translate(format!("unsupported aggregate argument for {func:?}"))
            })?;
            return Ok(match func {
                Exists => scalar.gt(&f::lit(0)),
                Empty => scalar.le(&f::lit(0)),
                Sum | Count => f::nvl(&scalar, &f::lit(0)),
                _ => scalar,
            });
        }

        let mut cols = Vec::with_capacity(args.len());
        for a in args {
            cols.push(self.value(a, ctx)?);
        }
        let one = |cols: &[Col]| -> JResult<Col> {
            cols.first()
                .cloned()
                .ok_or_else(|| JsoniqError::Translate("missing function argument".into()))
        };
        let two = |cols: &[Col]| -> JResult<(Col, Col)> {
            match cols {
                [a, b, ..] => Ok((a.clone(), b.clone())),
                _ => Err(JsoniqError::Translate("missing function argument".into())),
            }
        };
        Ok(match func {
            Abs => f::abs(&one(&cols)?),
            Sqrt => f::sqrt(&one(&cols)?),
            Exp => f::exp(&one(&cols)?),
            Log => f::ln(&one(&cols)?),
            Pow => {
                let (a, b) = two(&cols)?;
                f::pow(&a, &b)
            }
            Floor => f::floor(&one(&cols)?),
            Ceiling => f::ceil(&one(&cols)?),
            Round => f::round(&one(&cols)?),
            Sin => f::sin(&one(&cols)?),
            Cos => f::cos(&one(&cols)?),
            Tan => f::tan(&one(&cols)?),
            Asin => f::asin(&one(&cols)?),
            Acos => f::acos(&one(&cols)?),
            Atan => f::atan(&one(&cols)?),
            Atan2 => {
                let (a, b) = two(&cols)?;
                f::atan2(&a, &b)
            }
            Sinh => f::sinh(&one(&cols)?),
            Cosh => f::cosh(&one(&cols)?),
            Tanh => f::tanh(&one(&cols)?),
            Pi => f::pi(),
            Size => f::array_size(&one(&cols)?),
            Keys | Members => {
                return Err(JsoniqError::Translate(format!(
                    "{func:?} is not supported by the translation"
                )))
            }
            Not => one(&cols)?.not(),
            Boolean => one(&cols)?,
            Head => f::get(&one(&cols)?, &f::lit(0)),
            Integer => one(&cols)?.cast("INT"),
            Double => f::to_double(&one(&cols)?),
            StringFn => one(&cols)?.cast("VARCHAR"),
            Concat => {
                let mut it = cols.iter();
                let first = it.next().cloned().unwrap_or_else(|| f::lit_s(""));
                it.fold(first, |acc, c| f::concat2(&acc, c))
            }
            Substring => {
                if cols.len() >= 3 {
                    f::substr3(&cols[0], &cols[1], &cols[2])
                } else {
                    let (a, b) = two(&cols)?;
                    f::substr2(&a, &b)
                }
            }
            StringLength => f::length(&one(&cols)?),
            Count | Sum | Min | Max | Avg | Exists | Empty => unreachable!("handled above"),
        })
    }

    /// Aggregates over an array-valued expression by synthesizing the nested
    /// query `for $x in <expr> return $x` and reaggregating in the requested
    /// mode (there is no single-call SQL array-SUM).
    fn aggregate_array(&mut self, arg: &RIter, mode: AggMode, ctx: &mut Ctx) -> JResult<Col> {
        let tmp = self.fresh_name("#agg");
        let fl = RIter::ReturnClause {
            left: Box::new(RIter::ForClause {
                left: None,
                var: tmp.clone(),
                at: None,
                allowing_empty: false,
                expr: Box::new(arg.clone()),
            }),
            expr: Box::new(RIter::VarRef(tmp)),
        };
        self.nested_query(&fl, mode, ctx)
    }

    /// Registers a pending aggregate for the current group-by and returns the
    /// column referring to it.
    fn register_agg(&mut self, expr: Col, ctx: &mut Ctx) -> JResult<Col> {
        let group = ctx.group.as_mut().ok_or_else(|| {
            JsoniqError::Translate("aggregate over a grouped variable outside group by".into())
        })?;
        let alias = format!("AGG{}", group.aggs.len());
        group.aggs.push(PendingAgg { alias: alias.clone(), expr });
        Ok(f::col(&alias))
    }

    /// True when the expression references a grouped variable.
    fn uses_grouped_var(&self, it: &RIter, ctx: &Ctx) -> bool {
        let mut found = false;
        it.visit(&mut |n| {
            if let RIter::VarRef(v) = n {
                if matches!(
                    ctx.lookup(v),
                    Some(Binding::Grouped(_) | Binding::GroupedRow { .. })
                ) {
                    found = true;
                }
            }
        });
        found
    }

    /// Translates an aggregate argument, temporarily treating grouped bindings
    /// as their per-tuple values (keys and per-tuple columns are both valid
    /// inside an aggregate argument).
    fn value_with_grouped_as_value(&mut self, it: &RIter, ctx: &mut Ctx) -> JResult<Col> {
        let saved = ctx.bindings.clone();
        for (_, b) in ctx.bindings.iter_mut() {
            match b {
                Binding::Grouped(c) => {
                    *b = Binding::Value { col: c.clone(), seq: false }
                }
                Binding::GroupedRow { columns } => {
                    *b = Binding::Row { columns: columns.clone() }
                }
                _ => {}
            }
        }
        let result = self.value(it, ctx);
        ctx.bindings = saved;
        result
    }
}

/// Collects, for every variable, which fields the query looks up on it —
/// or `Whole` when the variable occurs as a value itself (e.g. `return $e`).
fn analyze_row_usage(
    it: &RIter,
    out: &mut std::collections::HashMap<String, RowUsage>,
) {
    fn field_use(v: &str, field: &str, out: &mut std::collections::HashMap<String, RowUsage>) {
        match out.entry(v.to_string()).or_insert_with(|| RowUsage::Fields(Default::default())) {
            RowUsage::Fields(set) => {
                set.insert(field.to_string());
            }
            RowUsage::Whole => {}
        }
    }
    match it {
        RIter::ObjectLookup { base, field } => {
            if let RIter::VarRef(v) = base.as_ref() {
                field_use(v, field, out);
            } else {
                analyze_row_usage(base, out);
            }
        }
        RIter::VarRef(v) => {
            out.insert(v.clone(), RowUsage::Whole);
        }
        RIter::Literal(_) | RIter::Collection(_) => {}
        RIter::ForClause { left, expr, .. } | RIter::LetClause { left, expr, .. } => {
            if let Some(l) = left {
                analyze_row_usage(l, out);
            }
            analyze_row_usage(expr, out);
        }
        RIter::WhereClause { left, pred } => {
            analyze_row_usage(left, out);
            analyze_row_usage(pred, out);
        }
        RIter::GroupByClause { left, keys } => {
            analyze_row_usage(left, out);
            for (_, e) in keys {
                if let Some(e) = e {
                    analyze_row_usage(e, out);
                }
            }
        }
        RIter::OrderByClause { left, keys } => {
            analyze_row_usage(left, out);
            for (e, _) in keys {
                analyze_row_usage(e, out);
            }
        }
        RIter::CountClause { left, .. } => analyze_row_usage(left, out),
        RIter::ReturnClause { left, expr } => {
            analyze_row_usage(left, out);
            analyze_row_usage(expr, out);
        }
        RIter::Comparison { left, right, .. }
        | RIter::Arithmetic { left, right, .. }
        | RIter::Logical { left, right, .. }
        | RIter::StringConcat { left, right }
        | RIter::Range { left, right } => {
            analyze_row_usage(left, out);
            analyze_row_usage(right, out);
        }
        RIter::Not(x) | RIter::Neg(x) | RIter::ArrayUnbox { base: x } => {
            analyze_row_usage(x, out)
        }
        RIter::ArrayLookup { base, index } => {
            analyze_row_usage(base, out);
            analyze_row_usage(index, out);
        }
        RIter::Predicate { base, pred } => {
            analyze_row_usage(base, out);
            analyze_row_usage(pred, out);
        }
        RIter::ObjectConstructor(pairs) => {
            for (_, v) in pairs {
                analyze_row_usage(v, out);
            }
        }
        RIter::ArrayConstructor(items) | RIter::Sequence(items) => {
            for i in items {
                analyze_row_usage(i, out);
            }
        }
        RIter::If { cond, then, else_ } => {
            analyze_row_usage(cond, out);
            analyze_row_usage(then, out);
            analyze_row_usage(else_, out);
        }
        RIter::FunctionCall { func, args } => {
            // COUNT/EXISTS/EMPTY over a bare variable count tuples without
            // reading any column (they translate to COUNT(*)).
            if matches!(func, Builtin::Count | Builtin::Exists | Builtin::Empty)
                && matches!(args.as_slice(), [RIter::VarRef(_)])
            {
                return;
            }
            for a in args {
                analyze_row_usage(a, out);
            }
        }
    }
}

/// Renders a JSONiq literal as a SQL literal column.
fn literal(v: &Item) -> JResult<Col> {
    Ok(match v {
        Item::Null => f::null(),
        Item::Bool(b) => f::lit_b(*b),
        Item::Int(i) => f::lit(*i),
        Item::Float(x) => f::lit_f(*x),
        Item::Str(s) => f::lit_s(s),
        Item::Array(_) | Item::Object(_) => {
            return Err(JsoniqError::Translate(
                "structured literals must use constructors".into(),
            ))
        }
    })
}

/// Convenience entry point: translate a JSONiq query against a database and
/// return the dataframe (call `.collect()` to execute, `.sql()` to inspect).
pub fn translate_query(
    db: Arc<snowdb::Database>,
    src: &str,
    strategy: NestedStrategy,
) -> JResult<DataFrame> {
    let session = Session::new(db);
    Translator::new(session, strategy).translate(src)
}
