//! Local, row-at-a-time interpretation of the iterator tree.
//!
//! This execution mode is both (a) the semantic ground truth the SQL
//! translation is validated against, and (b) the stand-in for the paper's
//! RumbleDB-on-Spark baseline: tuple streams are fully materialized between
//! clauses and every expression is interpreted per item, reproducing the
//! interpretation/materialization overheads §V-D attributes to that system.

use std::collections::HashMap;
use std::rc::Rc;

use snowdb::variant::{cmp_variants, Key, Object};
use snowdb::Variant;

use crate::ast::{BinaryOp, Item, JResult, JsoniqError};
use crate::itertree::{compile, Builtin, RIter};

/// A JSONiq value: a sequence of items.
pub type Seq = Vec<Item>;

/// A FLWOR tuple: variable bindings.
pub type Env = HashMap<String, Rc<Seq>>;

/// Source of named collections.
pub trait CollectionProvider {
    fn collection(&self, name: &str) -> JResult<Vec<Item>>;
}

/// A provider backed by an in-memory map, for tests and small examples.
#[derive(Default)]
pub struct MemoryCollections {
    pub collections: HashMap<String, Vec<Item>>,
}

impl CollectionProvider for MemoryCollections {
    fn collection(&self, name: &str) -> JResult<Vec<Item>> {
        self.collections
            .get(name)
            .cloned()
            .ok_or_else(|| JsoniqError::Dynamic(format!("unknown collection '{name}'")))
    }
}

/// A provider that reads tables from a `snowdb` database, exposing each row as
/// an object keyed by column name — the data model of the paper's §III-C.
pub struct DatabaseCollections<'a> {
    pub db: &'a snowdb::Database,
}

impl CollectionProvider for DatabaseCollections<'_> {
    fn collection(&self, name: &str) -> JResult<Vec<Item>> {
        let table = self
            .db
            .table(name)
            .ok_or_else(|| JsoniqError::Dynamic(format!("unknown collection '{name}'")))?;
        let names: Vec<&str> = table.schema().iter().map(|c| c.name.as_str()).collect();
        let mut out = Vec::with_capacity(table.row_count());
        for part in table.partitions() {
            let mem = part
                .to_mem()
                .map_err(|e| JsoniqError::Dynamic(format!("collection '{name}': {e}")))?;
            for r in 0..mem.row_count() {
                let mut obj = Object::with_capacity(names.len());
                for (i, n) in names.iter().enumerate() {
                    obj.insert(*n, mem.column(i).get(r));
                }
                out.push(Variant::object(obj));
            }
        }
        Ok(out)
    }
}

/// The interpreter.
pub struct Interpreter<'a> {
    provider: &'a dyn CollectionProvider,
    /// Optional wall-clock deadline, checked at tuple-stream boundaries; used
    /// by the benchmark harness to enforce the paper's query cutoff.
    deadline: Option<std::time::Instant>,
    /// Simulates the Spark-backend operator boundary: values bound by `for`
    /// and `let` clauses are round-tripped through their serialized form, the
    /// data movement the paper's §III-A3/§V-D attributes to RumbleDB-on-Spark
    /// (UDF ↔ engine row conversion at each clause).
    serialize_boundaries: bool,
}

impl<'a> Interpreter<'a> {
    pub fn new(provider: &'a dyn CollectionProvider) -> Interpreter<'a> {
        Interpreter { provider, deadline: None, serialize_boundaries: false }
    }

    /// Interpreter with a wall-clock deadline.
    pub fn with_deadline(
        provider: &'a dyn CollectionProvider,
        deadline: std::time::Instant,
    ) -> Interpreter<'a> {
        Interpreter { provider, deadline: Some(deadline), serialize_boundaries: false }
    }

    /// Enables the Spark-boundary simulation (see the struct docs).
    pub fn with_serialization_boundaries(mut self, on: bool) -> Interpreter<'a> {
        self.serialize_boundaries = on;
        self
    }

    /// Round-trips a sequence through its serialized form when boundary
    /// simulation is on.
    fn boundary(&self, seq: Seq) -> Seq {
        if !self.serialize_boundaries {
            return seq;
        }
        seq.into_iter()
            .map(|v| {
                let text = snowdb::variant::to_json(&v);
                snowdb::variant::parse_json(&text).expect("round-trip")
            })
            .collect()
    }

    fn check_deadline(&self) -> JResult<()> {
        if let Some(d) = self.deadline {
            if std::time::Instant::now() > d {
                return Err(JsoniqError::Timeout);
            }
        }
        Ok(())
    }

    /// Compiles and evaluates a JSONiq query.
    pub fn eval_query(&self, src: &str) -> JResult<Seq> {
        let it = compile(src)?;
        self.eval(&it)
    }

    /// Evaluates an iterator tree with no initial bindings.
    pub fn eval(&self, it: &RIter) -> JResult<Seq> {
        self.eval_in(it, &Env::new())
    }

    fn eval_in(&self, it: &RIter, env: &Env) -> JResult<Seq> {
        match it {
            RIter::Literal(v) => Ok(vec![v.clone()]),
            RIter::VarRef(v) => env
                .get(v)
                .map(|s| (**s).clone())
                .ok_or_else(|| JsoniqError::Dynamic(format!("unbound variable ${v}"))),
            RIter::Collection(name) => self.provider.collection(name),
            RIter::ReturnClause { left, expr } => {
                let tuples = self.tuples(left, env)?;
                let mut out = Vec::new();
                for t in &tuples {
                    out.extend(self.eval_in(expr, t)?);
                }
                Ok(out)
            }
            // A bare non-return FLWOR clause cannot be evaluated as an expression.
            RIter::ForClause { .. }
            | RIter::LetClause { .. }
            | RIter::WhereClause { .. }
            | RIter::GroupByClause { .. }
            | RIter::OrderByClause { .. }
            | RIter::CountClause { .. } => {
                Err(JsoniqError::Dynamic("dangling FLWOR clause".into()))
            }
            RIter::Comparison { op, left, right } => {
                let l = self.eval_in(left, env)?;
                let r = self.eval_in(right, env)?;
                if l.is_empty() || r.is_empty() {
                    return Ok(Vec::new());
                }
                let a = singleton(&l, "comparison")?;
                let b = singleton(&r, "comparison")?;
                Ok(vec![Variant::Bool(compare(*op, a, b)?)])
            }
            RIter::Arithmetic { op, left, right } => {
                let l = self.eval_in(left, env)?;
                let r = self.eval_in(right, env)?;
                if l.is_empty() || r.is_empty() {
                    return Ok(Vec::new());
                }
                let a = singleton(&l, "arithmetic")?;
                let b = singleton(&r, "arithmetic")?;
                if a.is_null() || b.is_null() {
                    return Ok(vec![Variant::Null]);
                }
                Ok(vec![arith(*op, a, b)?])
            }
            RIter::Logical { op, left, right } => {
                let lv = ebv(&self.eval_in(left, env)?)?;
                match (op, lv) {
                    (BinaryOp::And, false) => Ok(vec![Variant::Bool(false)]),
                    (BinaryOp::Or, true) => Ok(vec![Variant::Bool(true)]),
                    _ => {
                        let rv = ebv(&self.eval_in(right, env)?)?;
                        Ok(vec![Variant::Bool(rv)])
                    }
                }
            }
            RIter::StringConcat { left, right } => {
                let l = self.eval_in(left, env)?;
                let r = self.eval_in(right, env)?;
                let mut s = String::new();
                s.push_str(&stringify_opt(&l));
                s.push_str(&stringify_opt(&r));
                Ok(vec![Variant::from(s)])
            }
            RIter::Range { left, right } => {
                let l = self.eval_in(left, env)?;
                let r = self.eval_in(right, env)?;
                if l.is_empty() || r.is_empty() {
                    return Ok(Vec::new());
                }
                let a = singleton(&l, "range")?
                    .as_i64()
                    .ok_or_else(|| JsoniqError::Dynamic("range bounds must be integers".into()))?;
                let b = singleton(&r, "range")?
                    .as_i64()
                    .ok_or_else(|| JsoniqError::Dynamic("range bounds must be integers".into()))?;
                Ok((a..=b).map(Variant::Int).collect())
            }
            RIter::Not(x) => Ok(vec![Variant::Bool(!ebv(&self.eval_in(x, env)?)?)]),
            RIter::Neg(x) => {
                let v = self.eval_in(x, env)?;
                if v.is_empty() {
                    return Ok(Vec::new());
                }
                match singleton(&v, "unary minus")? {
                    Variant::Int(i) => Ok(vec![Variant::Int(-i)]),
                    Variant::Float(f) => Ok(vec![Variant::Float(-f)]),
                    Variant::Null => Ok(vec![Variant::Null]),
                    other => Err(JsoniqError::Dynamic(format!(
                        "cannot negate {}",
                        other.type_name()
                    ))),
                }
            }
            RIter::ObjectLookup { base, field } => {
                let b = self.eval_in(base, env)?;
                let mut out = Vec::new();
                for item in &b {
                    if let Variant::Object(o) = item {
                        if let Some(v) = o.get(field) {
                            out.push(v.clone());
                        }
                    }
                }
                Ok(out)
            }
            RIter::ArrayUnbox { base } => {
                let b = self.eval_in(base, env)?;
                let mut out = Vec::new();
                for item in &b {
                    match item {
                        Variant::Array(a) => out.extend(a.iter().cloned()),
                        Variant::Null => {}
                        other => {
                            return Err(JsoniqError::Dynamic(format!(
                                "cannot unbox {}",
                                other.type_name()
                            )))
                        }
                    }
                }
                Ok(out)
            }
            RIter::ArrayLookup { base, index } => {
                let b = self.eval_in(base, env)?;
                let i = self.eval_in(index, env)?;
                if i.is_empty() {
                    return Ok(Vec::new());
                }
                let idx = singleton(&i, "array lookup")?
                    .as_i64()
                    .ok_or_else(|| JsoniqError::Dynamic("array index must be an integer".into()))?;
                let mut out = Vec::new();
                for item in &b {
                    if let Variant::Array(a) = item {
                        if idx >= 1 {
                            if let Some(v) = a.get((idx - 1) as usize) {
                                out.push(v.clone());
                            }
                        }
                    }
                }
                Ok(out)
            }
            RIter::Predicate { base, pred } => {
                let b = self.eval_in(base, env)?;
                // Only positional predicates are supported (the workloads use
                // `[1]`-style selections; context-item predicates are not part
                // of the supported subset).
                let p = self.eval_in(pred, env)?;
                let idx = singleton(&p, "predicate")?.as_i64().ok_or_else(|| {
                    JsoniqError::Dynamic(
                        "only positional (integer) predicates are supported".into(),
                    )
                })?;
                if idx >= 1 && (idx as usize) <= b.len() {
                    Ok(vec![b[(idx - 1) as usize].clone()])
                } else {
                    Ok(Vec::new())
                }
            }
            RIter::ObjectConstructor(pairs) => {
                let mut obj = Object::with_capacity(pairs.len());
                for (k, v) in pairs {
                    let vv = self.eval_in(v, env)?;
                    let item = match vv.len() {
                        0 => Variant::Null,
                        1 => vv.into_iter().next().unwrap(),
                        _ => Variant::array(vv),
                    };
                    obj.insert(k.as_str(), item);
                }
                Ok(vec![Variant::object(obj)])
            }
            RIter::ArrayConstructor(items) => {
                let mut out = Vec::new();
                for i in items {
                    out.extend(self.eval_in(i, env)?);
                }
                Ok(vec![Variant::array(out)])
            }
            RIter::Sequence(items) => {
                let mut out = Vec::new();
                for i in items {
                    out.extend(self.eval_in(i, env)?);
                }
                Ok(out)
            }
            RIter::If { cond, then, else_ } => {
                if ebv(&self.eval_in(cond, env)?)? {
                    self.eval_in(then, env)
                } else {
                    self.eval_in(else_, env)
                }
            }
            RIter::FunctionCall { func, args } => self.call(*func, args, env),
        }
    }

    /// Produces the FLWOR tuple stream up to (and including) the given clause.
    fn tuples(&self, clause: &RIter, env: &Env) -> JResult<Vec<Env>> {
        self.check_deadline()?;
        match clause {
            RIter::ForClause { left, var, at, allowing_empty, expr } => {
                let base = match left {
                    Some(l) => self.tuples(l, env)?,
                    None => vec![env.clone()],
                };
                let mut out = Vec::new();
                for t in &base {
                    let seq = self.eval_in(expr, t)?;
                    if seq.is_empty() && *allowing_empty {
                        let mut t2 = t.clone();
                        t2.insert(var.clone(), Rc::new(Vec::new()));
                        if let Some(a) = at {
                            t2.insert(a.clone(), Rc::new(vec![Variant::Int(0)]));
                        }
                        out.push(t2);
                        continue;
                    }
                    for (i, item) in self.boundary(seq).into_iter().enumerate() {
                        let mut t2 = t.clone();
                        t2.insert(var.clone(), Rc::new(vec![item]));
                        if let Some(a) = at {
                            t2.insert(a.clone(), Rc::new(vec![Variant::Int(i as i64 + 1)]));
                        }
                        out.push(t2);
                    }
                }
                Ok(out)
            }
            RIter::LetClause { left, var, expr } => {
                let base = match left {
                    Some(l) => self.tuples(l, env)?,
                    None => vec![env.clone()],
                };
                let mut out = Vec::with_capacity(base.len());
                for t in base {
                    let seq = self.boundary(self.eval_in(expr, &t)?);
                    let mut t2 = t;
                    t2.insert(var.clone(), Rc::new(seq));
                    out.push(t2);
                }
                Ok(out)
            }
            RIter::WhereClause { left, pred } => {
                let base = self.tuples(left, env)?;
                let mut out = Vec::with_capacity(base.len());
                for t in base {
                    if ebv(&self.eval_in(pred, &t)?)? {
                        out.push(t);
                    }
                }
                Ok(out)
            }
            RIter::GroupByClause { left, keys } => {
                let base = self.tuples(left, env)?;
                // Ordered grouping: group identity is the canonical key of the
                // grouping values; non-key variables concatenate.
                let mut order: Vec<Vec<Key>> = Vec::new();
                let mut groups: HashMap<Vec<Key>, (Vec<Item>, Vec<Env>)> = HashMap::new();
                for t in base {
                    let mut kvals = Vec::with_capacity(keys.len());
                    for (var, e) in keys {
                        let v = match e {
                            Some(e) => self.eval_in(e, &t)?,
                            None => t
                                .get(var)
                                .map(|s| (**s).clone())
                                .ok_or_else(|| {
                                    JsoniqError::Dynamic(format!(
                                        "group-by variable ${var} is unbound"
                                    ))
                                })?,
                        };
                        let item = match v.len() {
                            0 => Variant::Null,
                            1 => v.into_iter().next().unwrap(),
                            _ => {
                                return Err(JsoniqError::Dynamic(
                                    "group-by key must be a single atomic value".into(),
                                ))
                            }
                        };
                        kvals.push(item);
                    }
                    let key: Vec<Key> = kvals.iter().map(Key::of).collect();
                    match groups.get_mut(&key) {
                        Some((_, tuples)) => tuples.push(t),
                        None => {
                            order.push(key.clone());
                            groups.insert(key, (kvals, vec![t]));
                        }
                    }
                }
                let mut out = Vec::with_capacity(order.len());
                for key in order {
                    let (kvals, tuples) = groups.remove(&key).expect("group exists");
                    // Merge: every variable bound in the tuples concatenates,
                    // then key variables re-bind to their singleton key value.
                    let mut merged: Env = Env::new();
                    for t in &tuples {
                        for (name, seq) in t {
                            let entry = merged.entry(name.clone()).or_insert_with(|| {
                                Rc::new(Vec::new())
                            });
                            let v = Rc::make_mut(entry);
                            v.extend(seq.iter().cloned());
                        }
                    }
                    for ((var, _), kv) in keys.iter().zip(kvals) {
                        merged.insert(var.clone(), Rc::new(vec![kv]));
                    }
                    out.push(merged);
                }
                Ok(out)
            }
            RIter::OrderByClause { left, keys } => {
                let base = self.tuples(left, env)?;
                let mut decorated: Vec<(Vec<Item>, Env)> = Vec::with_capacity(base.len());
                for t in base {
                    let mut kv = Vec::with_capacity(keys.len());
                    for (e, _) in keys {
                        let v = self.eval_in(e, &t)?;
                        kv.push(match v.len() {
                            0 => Variant::Null, // "empty least"
                            1 => v.into_iter().next().unwrap(),
                            _ => {
                                return Err(JsoniqError::Dynamic(
                                    "order-by key must be a single atomic value".into(),
                                ))
                            }
                        });
                    }
                    decorated.push((kv, t));
                }
                decorated.sort_by(|(a, _), (b, _)| {
                    for (i, (_, desc)) in keys.iter().enumerate() {
                        let c = jsoniq_cmp(&a[i], &b[i]);
                        let c = if *desc { c.reverse() } else { c };
                        if c != std::cmp::Ordering::Equal {
                            return c;
                        }
                    }
                    std::cmp::Ordering::Equal
                });
                Ok(decorated.into_iter().map(|(_, t)| t).collect())
            }
            RIter::CountClause { left, var } => {
                let base = self.tuples(left, env)?;
                Ok(base
                    .into_iter()
                    .enumerate()
                    .map(|(i, mut t)| {
                        t.insert(var.clone(), Rc::new(vec![Variant::Int(i as i64 + 1)]));
                        t
                    })
                    .collect())
            }
            other => Err(JsoniqError::Dynamic(format!(
                "not a FLWOR clause: {other:?}"
            ))),
        }
    }

    fn call(&self, func: Builtin, args: &[RIter], env: &Env) -> JResult<Seq> {
        let mut vals = Vec::with_capacity(args.len());
        for a in args {
            vals.push(self.eval_in(a, env)?);
        }
        let arg = |i: usize| -> &Seq { &vals[i] };
        let num1 = |f: fn(f64) -> f64, name: &str| -> JResult<Seq> {
            let v = arg(0);
            if v.is_empty() {
                return Ok(Vec::new());
            }
            let x = singleton(v, name)?;
            if x.is_null() {
                return Ok(vec![Variant::Null]);
            }
            let x = x
                .as_f64()
                .ok_or_else(|| JsoniqError::Dynamic(format!("{name} expects a number")))?;
            Ok(vec![Variant::Float(f(x))])
        };
        match func {
            Builtin::Count => Ok(vec![Variant::Int(arg(0).len() as i64)]),
            Builtin::Exists => Ok(vec![Variant::Bool(!arg(0).is_empty())]),
            Builtin::Empty => Ok(vec![Variant::Bool(arg(0).is_empty())]),
            Builtin::Sum => {
                let mut acc = Variant::Int(0);
                for v in arg(0) {
                    if v.is_null() {
                        continue;
                    }
                    acc = arith(BinaryOp::Add, &acc, v)?;
                }
                Ok(vec![acc])
            }
            Builtin::Avg => {
                let s = arg(0);
                let nums: Vec<f64> = s.iter().filter_map(Variant::as_f64).collect();
                if nums.is_empty() {
                    return Ok(Vec::new());
                }
                Ok(vec![Variant::Float(nums.iter().sum::<f64>() / nums.len() as f64)])
            }
            Builtin::Min | Builtin::Max => {
                let s = arg(0);
                let mut best: Option<&Variant> = None;
                for v in s {
                    if v.is_null() {
                        continue;
                    }
                    best = Some(match best {
                        None => v,
                        Some(b) => {
                            let c = cmp_variants(v, b);
                            let better = if func == Builtin::Min {
                                c == std::cmp::Ordering::Less
                            } else {
                                c == std::cmp::Ordering::Greater
                            };
                            if better {
                                v
                            } else {
                                b
                            }
                        }
                    });
                }
                Ok(best.map(|b| vec![b.clone()]).unwrap_or_default())
            }
            Builtin::Abs => {
                let v = arg(0);
                if v.is_empty() {
                    return Ok(Vec::new());
                }
                match singleton(v, "abs")? {
                    Variant::Int(i) => Ok(vec![Variant::Int(i.abs())]),
                    Variant::Float(f) => Ok(vec![Variant::Float(f.abs())]),
                    Variant::Null => Ok(vec![Variant::Null]),
                    other => Err(JsoniqError::Dynamic(format!(
                        "abs expects a number, got {}",
                        other.type_name()
                    ))),
                }
            }
            Builtin::Sqrt => num1(f64::sqrt, "sqrt"),
            Builtin::Exp => num1(f64::exp, "exp"),
            Builtin::Log => num1(f64::ln, "log"),
            Builtin::Sin => num1(f64::sin, "sin"),
            Builtin::Cos => num1(f64::cos, "cos"),
            Builtin::Tan => num1(f64::tan, "tan"),
            Builtin::Asin => num1(f64::asin, "asin"),
            Builtin::Acos => num1(f64::acos, "acos"),
            Builtin::Atan => num1(f64::atan, "atan"),
            Builtin::Sinh => num1(f64::sinh, "sinh"),
            Builtin::Cosh => num1(f64::cosh, "cosh"),
            Builtin::Tanh => num1(f64::tanh, "tanh"),
            Builtin::Floor => num1(f64::floor, "floor"),
            Builtin::Ceiling => num1(f64::ceil, "ceiling"),
            Builtin::Round => {
                let v = arg(0);
                if v.is_empty() {
                    return Ok(Vec::new());
                }
                match singleton(v, "round")? {
                    Variant::Int(i) => Ok(vec![Variant::Int(*i)]),
                    Variant::Float(f) => Ok(vec![Variant::Float(f.round())]),
                    Variant::Null => Ok(vec![Variant::Null]),
                    other => Err(JsoniqError::Dynamic(format!(
                        "round expects a number, got {}",
                        other.type_name()
                    ))),
                }
            }
            Builtin::Pow => {
                let (a, b) = (arg(0), arg(1));
                if a.is_empty() || b.is_empty() {
                    return Ok(Vec::new());
                }
                let x = singleton(a, "pow")?.as_f64();
                let y = singleton(b, "pow")?.as_f64();
                match (x, y) {
                    (Some(x), Some(y)) => Ok(vec![Variant::Float(x.powf(y))]),
                    _ => Err(JsoniqError::Dynamic("pow expects numbers".into())),
                }
            }
            Builtin::Atan2 => {
                let (a, b) = (arg(0), arg(1));
                if a.is_empty() || b.is_empty() {
                    return Ok(Vec::new());
                }
                let y = singleton(a, "atan2")?.as_f64();
                let x = singleton(b, "atan2")?.as_f64();
                match (y, x) {
                    (Some(y), Some(x)) => Ok(vec![Variant::Float(y.atan2(x))]),
                    _ => Err(JsoniqError::Dynamic("atan2 expects numbers".into())),
                }
            }
            Builtin::Pi => Ok(vec![Variant::Float(std::f64::consts::PI)]),
            Builtin::Size => {
                let v = arg(0);
                if v.is_empty() {
                    return Ok(Vec::new());
                }
                match singleton(v, "size")? {
                    Variant::Array(a) => Ok(vec![Variant::Int(a.len() as i64)]),
                    Variant::Null => Ok(vec![Variant::Null]),
                    other => Err(JsoniqError::Dynamic(format!(
                        "size expects an array, got {}",
                        other.type_name()
                    ))),
                }
            }
            Builtin::Keys => {
                let mut out = Vec::new();
                for v in arg(0) {
                    if let Variant::Object(o) = v {
                        out.extend(o.iter().map(|(k, _)| Variant::from(k)));
                    }
                }
                Ok(out)
            }
            Builtin::Members => {
                let mut out = Vec::new();
                for v in arg(0) {
                    if let Variant::Array(a) = v {
                        out.extend(a.iter().cloned());
                    }
                }
                Ok(out)
            }
            Builtin::Not => Ok(vec![Variant::Bool(!ebv(arg(0))?)]),
            Builtin::Boolean => Ok(vec![Variant::Bool(ebv(arg(0))?)]),
            Builtin::Head => Ok(arg(0).first().cloned().into_iter().collect()),
            Builtin::Integer => {
                let v = arg(0);
                if v.is_empty() {
                    return Ok(Vec::new());
                }
                match singleton(v, "integer")? {
                    Variant::Int(i) => Ok(vec![Variant::Int(*i)]),
                    Variant::Float(f) => Ok(vec![Variant::Int(f.round() as i64)]),
                    Variant::Str(s) => s
                        .trim()
                        .parse::<i64>()
                        .map(|i| vec![Variant::Int(i)])
                        .map_err(|_| JsoniqError::Dynamic(format!("cannot cast '{s}' to integer"))),
                    Variant::Bool(b) => Ok(vec![Variant::Int(*b as i64)]),
                    other => Err(JsoniqError::Dynamic(format!(
                        "cannot cast {} to integer",
                        other.type_name()
                    ))),
                }
            }
            Builtin::Double => {
                let v = arg(0);
                if v.is_empty() {
                    return Ok(Vec::new());
                }
                match singleton(v, "double")? {
                    Variant::Int(i) => Ok(vec![Variant::Float(*i as f64)]),
                    Variant::Float(f) => Ok(vec![Variant::Float(*f)]),
                    Variant::Str(s) => s
                        .trim()
                        .parse::<f64>()
                        .map(|f| vec![Variant::Float(f)])
                        .map_err(|_| JsoniqError::Dynamic(format!("cannot cast '{s}' to double"))),
                    other => Err(JsoniqError::Dynamic(format!(
                        "cannot cast {} to double",
                        other.type_name()
                    ))),
                }
            }
            Builtin::StringFn => {
                let v = arg(0);
                if v.is_empty() {
                    return Ok(vec![Variant::str("")]);
                }
                Ok(vec![Variant::from(stringify(singleton(v, "string")?))])
            }
            Builtin::Concat => {
                let mut s = String::new();
                for v in &vals {
                    s.push_str(&stringify_opt(v));
                }
                Ok(vec![Variant::from(s)])
            }
            Builtin::Substring => {
                let s = arg(0);
                if s.is_empty() {
                    return Ok(Vec::new());
                }
                let text = match singleton(s, "substring")? {
                    Variant::Str(t) => t.to_string(),
                    other => stringify(other),
                };
                let start = singleton(arg(1), "substring")?
                    .as_i64()
                    .ok_or_else(|| JsoniqError::Dynamic("substring start must be integer".into()))?;
                let chars: Vec<char> = text.chars().collect();
                let begin = (start.max(1) - 1) as usize;
                let out: String = if vals.len() > 2 {
                    let len = singleton(arg(2), "substring")?.as_i64().unwrap_or(0).max(0) as usize;
                    chars.iter().skip(begin).take(len).collect()
                } else {
                    chars.iter().skip(begin).collect()
                };
                Ok(vec![Variant::from(out)])
            }
            Builtin::StringLength => {
                let v = arg(0);
                if v.is_empty() {
                    return Ok(vec![Variant::Int(0)]);
                }
                match singleton(v, "string-length")? {
                    Variant::Str(s) => Ok(vec![Variant::Int(s.chars().count() as i64)]),
                    other => Ok(vec![Variant::Int(stringify(other).chars().count() as i64)]),
                }
            }
        }
    }
}

/// JSONiq value comparison.
fn compare(op: BinaryOp, a: &Variant, b: &Variant) -> JResult<bool> {
    use std::cmp::Ordering;
    let c = jsoniq_cmp(a, b);
    Ok(match op {
        BinaryOp::Eq => a == b,
        BinaryOp::Ne => a != b,
        BinaryOp::Lt => c == Ordering::Less,
        BinaryOp::Le => c != Ordering::Greater,
        BinaryOp::Gt => c == Ordering::Greater,
        BinaryOp::Ge => c != Ordering::Less,
        _ => return Err(JsoniqError::Dynamic("not a comparison operator".into())),
    })
}

/// JSONiq ordering: `null` sorts before everything (the "null smallest" rule,
/// also JSONiq's "empty least" once empties map to null).
pub fn jsoniq_cmp(a: &Variant, b: &Variant) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    match (a.is_null(), b.is_null()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Less,
        (false, true) => Ordering::Greater,
        (false, false) => cmp_variants(a, b),
    }
}

/// JSONiq arithmetic on two non-null items.
fn arith(op: BinaryOp, a: &Variant, b: &Variant) -> JResult<Variant> {
    use snowdb::variant::NumericPair;
    let pair = NumericPair::coerce(a, b).ok_or_else(|| {
        JsoniqError::Dynamic(format!(
            "cannot apply arithmetic to {} and {}",
            a.type_name(),
            b.type_name()
        ))
    })?;
    Ok(match (op, pair) {
        (BinaryOp::Add, NumericPair::Int(x, y)) => match x.checked_add(y) {
            Some(v) => Variant::Int(v),
            None => Variant::Float(x as f64 + y as f64),
        },
        (BinaryOp::Sub, NumericPair::Int(x, y)) => match x.checked_sub(y) {
            Some(v) => Variant::Int(v),
            None => Variant::Float(x as f64 - y as f64),
        },
        (BinaryOp::Mul, NumericPair::Int(x, y)) => match x.checked_mul(y) {
            Some(v) => Variant::Int(v),
            None => Variant::Float(x as f64 * y as f64),
        },
        (BinaryOp::Div, NumericPair::Int(x, y)) => {
            if y == 0 {
                return Err(JsoniqError::Dynamic("division by zero".into()));
            }
            Variant::Float(x as f64 / y as f64)
        }
        (BinaryOp::IDiv, NumericPair::Int(x, y)) => {
            if y == 0 {
                return Err(JsoniqError::Dynamic("division by zero".into()));
            }
            Variant::Int(x / y)
        }
        (BinaryOp::Mod, NumericPair::Int(x, y)) => {
            if y == 0 {
                return Err(JsoniqError::Dynamic("division by zero".into()));
            }
            Variant::Int(x % y)
        }
        (BinaryOp::Add, NumericPair::Float(x, y)) => Variant::Float(x + y),
        (BinaryOp::Sub, NumericPair::Float(x, y)) => Variant::Float(x - y),
        (BinaryOp::Mul, NumericPair::Float(x, y)) => Variant::Float(x * y),
        (BinaryOp::Div, NumericPair::Float(x, y)) => {
            if y == 0.0 {
                return Err(JsoniqError::Dynamic("division by zero".into()));
            }
            Variant::Float(x / y)
        }
        (BinaryOp::IDiv, NumericPair::Float(x, y)) => Variant::Int((x / y).trunc() as i64),
        (BinaryOp::Mod, NumericPair::Float(x, y)) => Variant::Float(x % y),
        _ => return Err(JsoniqError::Dynamic("not an arithmetic operator".into())),
    })
}

/// Effective boolean value of a sequence.
pub fn ebv(seq: &[Item]) -> JResult<bool> {
    match seq {
        [] => Ok(false),
        [one] => Ok(match one {
            Variant::Null => false,
            Variant::Bool(b) => *b,
            Variant::Int(i) => *i != 0,
            Variant::Float(f) => *f != 0.0 && !f.is_nan(),
            Variant::Str(s) => !s.is_empty(),
            Variant::Array(_) | Variant::Object(_) => true,
        }),
        _ => Err(JsoniqError::Dynamic(
            "effective boolean value of a multi-item sequence".into(),
        )),
    }
}

fn singleton<'s>(seq: &'s [Item], what: &str) -> JResult<&'s Item> {
    match seq {
        [one] => Ok(one),
        _ => Err(JsoniqError::Dynamic(format!(
            "{what} expects a single item, got a sequence of {}",
            seq.len()
        ))),
    }
}

fn stringify(v: &Variant) -> String {
    match v {
        Variant::Str(s) => s.to_string(),
        other => snowdb::variant::to_json(other),
    }
}

fn stringify_opt(seq: &[Item]) -> String {
    match seq {
        [] => String::new(),
        [one] => stringify(one),
        _ => seq.iter().map(stringify).collect::<Vec<_>>().join(" "),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Seq {
        let mem = MemoryCollections::default();
        Interpreter::new(&mem).eval_query(src).unwrap()
    }

    fn run_with(src: &str, name: &str, docs: &[&str]) -> Seq {
        let mut mem = MemoryCollections::default();
        mem.collections.insert(
            name.to_string(),
            docs.iter().map(|d| snowdb::variant::parse_json(d).unwrap()).collect(),
        );
        Interpreter::new(&mem).eval_query(src).unwrap()
    }

    #[test]
    fn basic_flwor() {
        let r = run("for $x in (1, 2, 3) where $x ge 2 return $x * 10");
        assert_eq!(r, vec![Variant::Int(20), Variant::Int(30)]);
    }

    #[test]
    fn let_binds_sequences() {
        let r = run("let $s := (1, 2, 3) return count($s)");
        assert_eq!(r, vec![Variant::Int(3)]);
    }

    #[test]
    fn object_and_array_navigation() {
        let r = run_with(
            r#"for $e in collection("t") return $e.A[[2]].B"#,
            "t",
            &[r#"{"A": [{"B": 1}, {"B": 2}]}"#],
        );
        assert_eq!(r, vec![Variant::Int(2)]);
    }

    #[test]
    fn unboxing_flattens_arrays() {
        let r = run_with(
            r#"for $m in collection("t").M[] return $m"#,
            "t",
            &[r#"{"M": [1, 2]}"#, r#"{"M": []}"#, r#"{"M": [3]}"#],
        );
        assert_eq!(r, vec![Variant::Int(1), Variant::Int(2), Variant::Int(3)]);
    }

    #[test]
    fn group_by_with_count() {
        let r = run(
            r#"for $x in (1, 2, 3, 4, 5)
               group by $k := $x mod 2
               order by $k
               return {"k": $k, "n": count($x)}"#,
        );
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].get_field("n"), Variant::Int(2)); // evens: 2, 4
        assert_eq!(r[1].get_field("n"), Variant::Int(3)); // odds: 1, 3, 5
    }

    #[test]
    fn order_by_descending() {
        let r = run("for $x in (2, 1, 3) order by $x descending return $x");
        assert_eq!(r, vec![Variant::Int(3), Variant::Int(2), Variant::Int(1)]);
    }

    #[test]
    fn count_clause_numbers_tuples() {
        let r = run("for $x in (10, 20) count $c return $c");
        assert_eq!(r, vec![Variant::Int(1), Variant::Int(2)]);
    }

    #[test]
    fn nested_flwor_in_let_keeps_cardinality() {
        // Paper Listing 4 semantics: the nested query cannot remove parents.
        let r = run_with(
            r#"for $event in collection("adl")
               let $filtered := (
                 for $m in $event.Muon[]
                 where $m gt 10
                 return $m
               )
               return count($filtered)"#,
            "adl",
            &[r#"{"Muon": [5, 20, 30]}"#, r#"{"Muon": []}"#, r#"{"Muon": [1]}"#],
        );
        assert_eq!(r, vec![Variant::Int(2), Variant::Int(0), Variant::Int(0)]);
    }

    #[test]
    fn positional_for_variable() {
        let r = run("for $x at $i in (5, 6) return $i * 100 + $x");
        assert_eq!(r, vec![Variant::Int(105), Variant::Int(206)]);
    }

    #[test]
    fn allowing_empty_emits_empty_binding() {
        let r = run(
            "for $x allowing empty in () return if (exists($x)) then 1 else 0",
        );
        assert_eq!(r, vec![Variant::Int(0)]);
    }

    #[test]
    fn quantified_expressions() {
        let r = run("some $x in (1, 2, 3) satisfies $x gt 2");
        assert_eq!(r, vec![Variant::Bool(true)]);
        let r = run("every $x in (1, 2, 3) satisfies $x gt 2");
        assert_eq!(r, vec![Variant::Bool(false)]);
    }

    #[test]
    fn range_expression() {
        let r = run("for $i in 1 to 3 return $i");
        assert_eq!(r, vec![Variant::Int(1), Variant::Int(2), Variant::Int(3)]);
    }

    #[test]
    fn positional_predicate_selects() {
        let r = run("(for $x in (9, 8, 7) order by $x return $x)[1]");
        assert_eq!(r, vec![Variant::Int(7)]);
        let r = run("(1, 2)[5]");
        assert!(r.is_empty());
    }

    #[test]
    fn aggregates() {
        assert_eq!(run("sum((1, 2, 3))"), vec![Variant::Int(6)]);
        assert_eq!(run("sum(())"), vec![Variant::Int(0)]);
        assert_eq!(run("min((3, 1, 2))"), vec![Variant::Int(1)]);
        assert_eq!(run("max((3.5, 1.0))"), vec![Variant::Float(3.5)]);
        assert_eq!(run("avg((1, 2))"), vec![Variant::Float(1.5)]);
        assert!(run("min(())").is_empty());
    }

    #[test]
    fn empty_sequence_propagates_through_comparison() {
        let r = run("for $x in (1) where ().y lt 1 return $x");
        assert!(r.is_empty());
    }

    #[test]
    fn division_semantics() {
        assert_eq!(run("7 div 2"), vec![Variant::Float(3.5)]);
        assert_eq!(run("7 idiv 2"), vec![Variant::Int(3)]);
        assert_eq!(run("7 mod 2"), vec![Variant::Int(1)]);
    }

    #[test]
    fn object_constructor_wraps_sequences() {
        let r = run(r#"{"a": (1, 2), "b": (), "c": 5}"#);
        let o = r[0].as_object().unwrap();
        assert_eq!(o.get("a").unwrap().as_array().unwrap().len(), 2);
        assert!(o.get("b").unwrap().is_null());
        assert_eq!(o.get("c"), Some(&Variant::Int(5)));
    }

    #[test]
    fn string_functions() {
        assert_eq!(run(r#""a" || "b""#), vec![Variant::str("ab")]);
        assert_eq!(run(r#"substring("hello", 2, 3)"#), vec![Variant::str("ell")]);
        assert_eq!(run(r#"string_length("héllo")"#), vec![Variant::Int(5)]);
    }

    #[test]
    fn errors_are_reported() {
        let mem = MemoryCollections::default();
        let it = Interpreter::new(&mem);
        assert!(matches!(it.eval_query("$nope"), Err(JsoniqError::Dynamic(_))));
        assert!(matches!(it.eval_query("1 div 0"), Err(JsoniqError::Dynamic(_))));
        assert!(matches!(
            it.eval_query(r#"for $x in collection("missing") return $x"#),
            Err(JsoniqError::Dynamic(_))
        ));
    }
}
