//! Expression-tree rewrites.
//!
//! Converts a parsed [`Module`] into a self-contained expression tree by
//! applying the optimizations the paper attributes to RumbleDB's parsing layer
//! (§III-A2): **function inlining** (with capture-avoiding renaming and a
//! recursion check — recursive functions are unsupported, paper §IV-E),
//! **constant folding**, and **dead-code elimination** of unused `let` bindings.

use std::collections::HashMap;

use snowdb::Variant;

use crate::ast::*;

/// Rewrites a module into a single expression tree.
pub fn rewrite(module: &Module) -> JResult<Expr> {
    let mut functions = HashMap::new();
    for f in &module.functions {
        if functions.insert(f.name.clone(), f.clone()).is_some() {
            return Err(JsoniqError::Static(format!("duplicate function '{}'", f.name)));
        }
    }
    let mut r = Rewriter { functions, fresh: 0, stack: Vec::new() };
    let mut e = r.inline(&module.body)?;
    fold(&mut e);
    loop {
        // Literal-let propagation, folding, and DCE enable each other;
        // iterate to a (small) fixpoint.
        let before = count_nodes(&e);
        propagate_literal_lets(&mut e);
        eliminate_dead_lets(&mut e);
        fold(&mut e);
        if count_nodes(&e) == before {
            break;
        }
    }
    // A FLWOR consisting only of a return (all lets eliminated) collapses to
    // its return expression.
    collapse_empty_flwor(&mut e);
    Ok(e)
}

/// Counts AST nodes (used for fixpoint detection and complexity metrics).
pub fn count_nodes(e: &Expr) -> usize {
    let mut n = 0;
    e.walk(&mut |_| n += 1);
    n
}

struct Rewriter {
    functions: HashMap<String, FunctionDecl>,
    fresh: usize,
    /// Inlining stack for recursion detection.
    stack: Vec<String>,
}

impl Rewriter {
    fn fresh_name(&mut self, base: &str) -> String {
        self.fresh += 1;
        format!("{base}#{}", self.fresh)
    }

    /// Inlines user-function calls bottom-up.
    fn inline(&mut self, e: &Expr) -> JResult<Expr> {
        // First rewrite children, then handle the node itself.
        let e = self.map_children(e)?;
        if let Expr::FunctionCall { name, args } = &e {
            if let Some(decl) = self.functions.get(name).cloned() {
                if self.stack.contains(name) {
                    return Err(JsoniqError::Static(format!(
                        "recursive function '{name}' is not supported"
                    )));
                }
                if decl.params.len() != args.len() {
                    return Err(JsoniqError::Static(format!(
                        "function '{name}' expects {} arguments, got {}",
                        decl.params.len(),
                        args.len()
                    )));
                }
                self.stack.push(name.clone());
                // α-rename the body so nothing in it can capture caller names.
                let mut renames = HashMap::new();
                let mut param_names = Vec::with_capacity(decl.params.len());
                for p in &decl.params {
                    let fresh = self.fresh_name(p);
                    renames.insert(p.clone(), fresh.clone());
                    param_names.push(fresh);
                }
                let body = self.alpha_rename(&decl.body, &renames);
                // Inline the (already-rewritten) body too, so nested calls resolve.
                let body = self.inline(&body)?;
                self.stack.pop();
                if args.is_empty() {
                    return Ok(body);
                }
                let clauses = param_names
                    .into_iter()
                    .zip(args.iter().cloned())
                    .map(|(var, expr)| Clause::Let { var, expr })
                    .collect();
                return Ok(Expr::Flwor(Flwor { clauses, return_expr: Box::new(body) }));
            }
        }
        Ok(e)
    }

    fn map_children(&mut self, e: &Expr) -> JResult<Expr> {
        Ok(match e {
            Expr::Literal(_) | Expr::VarRef(_) => e.clone(),
            Expr::ObjectConstructor(pairs) => Expr::ObjectConstructor(
                pairs
                    .iter()
                    .map(|(k, v)| Ok((k.clone(), self.inline(v)?)))
                    .collect::<JResult<_>>()?,
            ),
            Expr::ArrayConstructor(items) => Expr::ArrayConstructor(
                items.iter().map(|i| self.inline(i)).collect::<JResult<_>>()?,
            ),
            Expr::Sequence(items) => {
                Expr::Sequence(items.iter().map(|i| self.inline(i)).collect::<JResult<_>>()?)
            }
            Expr::Flwor(fl) => {
                let clauses = fl
                    .clauses
                    .iter()
                    .map(|c| {
                        Ok(match c {
                            Clause::For { var, at, expr, allowing_empty } => Clause::For {
                                var: var.clone(),
                                at: at.clone(),
                                expr: self.inline(expr)?,
                                allowing_empty: *allowing_empty,
                            },
                            Clause::Let { var, expr } => {
                                Clause::Let { var: var.clone(), expr: self.inline(expr)? }
                            }
                            Clause::Where(p) => Clause::Where(self.inline(p)?),
                            Clause::GroupBy { keys } => Clause::GroupBy {
                                keys: keys
                                    .iter()
                                    .map(|(v, e)| {
                                        Ok((
                                            v.clone(),
                                            e.as_ref().map(|e| self.inline(e)).transpose()?,
                                        ))
                                    })
                                    .collect::<JResult<_>>()?,
                            },
                            Clause::OrderBy { keys } => Clause::OrderBy {
                                keys: keys
                                    .iter()
                                    .map(|(e, d)| Ok((self.inline(e)?, *d)))
                                    .collect::<JResult<_>>()?,
                            },
                            Clause::Count(v) => Clause::Count(v.clone()),
                        })
                    })
                    .collect::<JResult<_>>()?;
                Expr::Flwor(Flwor {
                    clauses,
                    return_expr: Box::new(self.inline(&fl.return_expr)?),
                })
            }
            Expr::If { cond, then, else_ } => Expr::If {
                cond: Box::new(self.inline(cond)?),
                then: Box::new(self.inline(then)?),
                else_: Box::new(self.inline(else_)?),
            },
            Expr::Binary { op, left, right } => Expr::Binary {
                op: *op,
                left: Box::new(self.inline(left)?),
                right: Box::new(self.inline(right)?),
            },
            Expr::Neg(x) => Expr::Neg(Box::new(self.inline(x)?)),
            Expr::Not(x) => Expr::Not(Box::new(self.inline(x)?)),
            Expr::ObjectLookup { base, field } => Expr::ObjectLookup {
                base: Box::new(self.inline(base)?),
                field: field.clone(),
            },
            Expr::ArrayUnbox { base } => {
                Expr::ArrayUnbox { base: Box::new(self.inline(base)?) }
            }
            Expr::ArrayLookup { base, index } => Expr::ArrayLookup {
                base: Box::new(self.inline(base)?),
                index: Box::new(self.inline(index)?),
            },
            Expr::Predicate { base, pred } => Expr::Predicate {
                base: Box::new(self.inline(base)?),
                pred: Box::new(self.inline(pred)?),
            },
            Expr::FunctionCall { name, args } => Expr::FunctionCall {
                name: name.clone(),
                args: args.iter().map(|a| self.inline(a)).collect::<JResult<_>>()?,
            },
        })
    }

    /// Renames free variables per `renames`, freshly renaming every binder in
    /// the body so inlined code can never capture or be captured.
    fn alpha_rename(&mut self, e: &Expr, renames: &HashMap<String, String>) -> Expr {
        match e {
            Expr::VarRef(v) => Expr::VarRef(renames.get(v).cloned().unwrap_or_else(|| v.clone())),
            Expr::Literal(_) => e.clone(),
            Expr::ObjectConstructor(pairs) => Expr::ObjectConstructor(
                pairs.iter().map(|(k, v)| (k.clone(), self.alpha_rename(v, renames))).collect(),
            ),
            Expr::ArrayConstructor(items) => Expr::ArrayConstructor(
                items.iter().map(|i| self.alpha_rename(i, renames)).collect(),
            ),
            Expr::Sequence(items) => {
                Expr::Sequence(items.iter().map(|i| self.alpha_rename(i, renames)).collect())
            }
            Expr::Flwor(fl) => {
                let mut scope = renames.clone();
                let mut clauses = Vec::with_capacity(fl.clauses.len());
                for c in &fl.clauses {
                    match c {
                        Clause::For { var, at, expr, allowing_empty } => {
                            let expr = self.alpha_rename(expr, &scope);
                            let nv = self.fresh_name(var);
                            scope.insert(var.clone(), nv.clone());
                            let nat = at.as_ref().map(|a| {
                                let na = self.fresh_name(a);
                                scope.insert(a.clone(), na.clone());
                                na
                            });
                            clauses.push(Clause::For {
                                var: nv,
                                at: nat,
                                expr,
                                allowing_empty: *allowing_empty,
                            });
                        }
                        Clause::Let { var, expr } => {
                            let expr = self.alpha_rename(expr, &scope);
                            let nv = self.fresh_name(var);
                            scope.insert(var.clone(), nv.clone());
                            clauses.push(Clause::Let { var: nv, expr });
                        }
                        Clause::Where(p) => clauses.push(Clause::Where(self.alpha_rename(p, &scope))),
                        Clause::GroupBy { keys } => {
                            let mut nk = Vec::with_capacity(keys.len());
                            for (v, e) in keys {
                                let e = e.as_ref().map(|e| self.alpha_rename(e, &scope));
                                let nv = self.fresh_name(v);
                                scope.insert(v.clone(), nv.clone());
                                nk.push((nv, e));
                            }
                            clauses.push(Clause::GroupBy { keys: nk });
                        }
                        Clause::OrderBy { keys } => clauses.push(Clause::OrderBy {
                            keys: keys
                                .iter()
                                .map(|(e, d)| (self.alpha_rename(e, &scope), *d))
                                .collect(),
                        }),
                        Clause::Count(v) => {
                            let nv = self.fresh_name(v);
                            scope.insert(v.clone(), nv.clone());
                            clauses.push(Clause::Count(nv));
                        }
                    }
                }
                Expr::Flwor(Flwor {
                    clauses,
                    return_expr: Box::new(self.alpha_rename(&fl.return_expr, &scope)),
                })
            }
            Expr::If { cond, then, else_ } => Expr::If {
                cond: Box::new(self.alpha_rename(cond, renames)),
                then: Box::new(self.alpha_rename(then, renames)),
                else_: Box::new(self.alpha_rename(else_, renames)),
            },
            Expr::Binary { op, left, right } => Expr::Binary {
                op: *op,
                left: Box::new(self.alpha_rename(left, renames)),
                right: Box::new(self.alpha_rename(right, renames)),
            },
            Expr::Neg(x) => Expr::Neg(Box::new(self.alpha_rename(x, renames))),
            Expr::Not(x) => Expr::Not(Box::new(self.alpha_rename(x, renames))),
            Expr::ObjectLookup { base, field } => Expr::ObjectLookup {
                base: Box::new(self.alpha_rename(base, renames)),
                field: field.clone(),
            },
            Expr::ArrayUnbox { base } => {
                Expr::ArrayUnbox { base: Box::new(self.alpha_rename(base, renames)) }
            }
            Expr::ArrayLookup { base, index } => Expr::ArrayLookup {
                base: Box::new(self.alpha_rename(base, renames)),
                index: Box::new(self.alpha_rename(index, renames)),
            },
            Expr::Predicate { base, pred } => Expr::Predicate {
                base: Box::new(self.alpha_rename(base, renames)),
                pred: Box::new(self.alpha_rename(pred, renames)),
            },
            Expr::FunctionCall { name, args } => Expr::FunctionCall {
                name: name.clone(),
                args: args.iter().map(|a| self.alpha_rename(a, renames)).collect(),
            },
        }
    }
}

// ---- constant folding --------------------------------------------------

/// Folds literal-only arithmetic, comparison, and boolean sub-expressions.
fn fold(e: &mut Expr) {
    // Children first.
    match e {
        Expr::Binary { left, right, .. } => {
            fold(left);
            fold(right);
        }
        Expr::Neg(x) | Expr::Not(x) | Expr::ArrayUnbox { base: x } => fold(x),
        Expr::ObjectLookup { base, .. } => fold(base),
        Expr::ArrayLookup { base, index } => {
            fold(base);
            fold(index);
        }
        Expr::Predicate { base, pred } => {
            fold(base);
            fold(pred);
        }
        Expr::If { cond, then, else_ } => {
            fold(cond);
            fold(then);
            fold(else_);
        }
        Expr::ObjectConstructor(pairs) => {
            for (_, v) in pairs {
                fold(v);
            }
        }
        Expr::ArrayConstructor(items) | Expr::Sequence(items) => {
            for i in items {
                fold(i);
            }
        }
        Expr::FunctionCall { args, .. } => {
            for a in args {
                fold(a);
            }
        }
        Expr::Flwor(fl) => {
            for c in &mut fl.clauses {
                match c {
                    Clause::For { expr, .. } | Clause::Let { expr, .. } | Clause::Where(expr) => {
                        fold(expr)
                    }
                    Clause::GroupBy { keys } => {
                        for (_, e) in keys {
                            if let Some(e) = e {
                                fold(e);
                            }
                        }
                    }
                    Clause::OrderBy { keys } => {
                        for (e, _) in keys {
                            fold(e);
                        }
                    }
                    Clause::Count(_) => {}
                }
            }
            fold(&mut fl.return_expr);
        }
        Expr::Literal(_) | Expr::VarRef(_) => {}
    }

    let replacement = match e {
        Expr::Binary { op, left, right } => match (&**left, &**right) {
            (Expr::Literal(a), Expr::Literal(b)) => fold_binary(*op, a, b),
            _ => None,
        },
        Expr::Neg(x) => match &**x {
            Expr::Literal(Variant::Int(i)) => Some(Expr::Literal(Variant::Int(-i))),
            Expr::Literal(Variant::Float(f)) => Some(Expr::Literal(Variant::Float(-f))),
            _ => None,
        },
        Expr::Not(x) => match &**x {
            Expr::Literal(Variant::Bool(b)) => Some(Expr::Literal(Variant::Bool(!b))),
            _ => None,
        },
        Expr::If { cond, then, else_ } => match &**cond {
            Expr::Literal(Variant::Bool(true)) => Some((**then).clone()),
            Expr::Literal(Variant::Bool(false)) => Some((**else_).clone()),
            _ => None,
        },
        _ => None,
    };
    if let Some(r) = replacement {
        *e = r;
    }
}

fn fold_binary(op: BinaryOp, a: &Variant, b: &Variant) -> Option<Expr> {
    use snowdb::variant::NumericPair;
    let lit = |v: Variant| Some(Expr::Literal(v));
    match op {
        BinaryOp::And | BinaryOp::Or => match (a, b) {
            (Variant::Bool(x), Variant::Bool(y)) => lit(Variant::Bool(if op == BinaryOp::And {
                *x && *y
            } else {
                *x || *y
            })),
            _ => None,
        },
        BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul => match NumericPair::coerce(a, b)? {
            NumericPair::Int(x, y) => {
                let r = match op {
                    BinaryOp::Add => x.checked_add(y)?,
                    BinaryOp::Sub => x.checked_sub(y)?,
                    BinaryOp::Mul => x.checked_mul(y)?,
                    _ => unreachable!(),
                };
                lit(Variant::Int(r))
            }
            NumericPair::Float(x, y) => {
                let r = match op {
                    BinaryOp::Add => x + y,
                    BinaryOp::Sub => x - y,
                    BinaryOp::Mul => x * y,
                    _ => unreachable!(),
                };
                lit(Variant::Float(r))
            }
        },
        BinaryOp::Div => match NumericPair::coerce(a, b)? {
            NumericPair::Int(_, 0) => None,
            NumericPair::Int(x, y) => lit(Variant::Float(x as f64 / y as f64)),
            NumericPair::Float(_, 0.0) => None,
            NumericPair::Float(x, y) => lit(Variant::Float(x / y)),
        },
        BinaryOp::Eq | BinaryOp::Ne | BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge => {
            use std::cmp::Ordering;
            if a.is_null() || b.is_null() {
                return None;
            }
            let c = snowdb::variant::cmp_variants(a, b);
            let r = match op {
                BinaryOp::Eq => a == b,
                BinaryOp::Ne => a != b,
                BinaryOp::Lt => c == Ordering::Less,
                BinaryOp::Le => c != Ordering::Greater,
                BinaryOp::Gt => c == Ordering::Greater,
                BinaryOp::Ge => c != Ordering::Less,
                _ => unreachable!(),
            };
            lit(Variant::Bool(r))
        }
        BinaryOp::Concat => match (a, b) {
            (Variant::Str(x), Variant::Str(y)) => lit(Variant::from(format!("{x}{y}"))),
            _ => None,
        },
        BinaryOp::IDiv | BinaryOp::Mod | BinaryOp::To => None,
    }
}

// ---- dead-let elimination ------------------------------------------------

/// Removes `let` bindings whose variable is never referenced downstream.
fn eliminate_dead_lets(e: &mut Expr) {
    match e {
        Expr::Flwor(fl) => {
            for c in &mut fl.clauses {
                match c {
                    Clause::For { expr, .. } | Clause::Let { expr, .. } | Clause::Where(expr) => {
                        eliminate_dead_lets(expr)
                    }
                    Clause::GroupBy { keys } => {
                        for (_, e) in keys.iter_mut() {
                            if let Some(e) = e {
                                eliminate_dead_lets(e);
                            }
                        }
                    }
                    Clause::OrderBy { keys } => {
                        for (e, _) in keys.iter_mut() {
                            eliminate_dead_lets(e);
                        }
                    }
                    Clause::Count(_) => {}
                }
            }
            eliminate_dead_lets(&mut fl.return_expr);
            // A let is dead when its variable is not used by any later clause,
            // the return expression, or a group-by (grouping re-binds all vars).
            let has_group_by =
                fl.clauses.iter().any(|c| matches!(c, Clause::GroupBy { .. }));
            if has_group_by {
                return;
            }
            let mut keep = vec![true; fl.clauses.len()];
            for (i, c) in fl.clauses.iter().enumerate() {
                if let Clause::Let { var, .. } = c {
                    let mut used = false;
                    for later in &fl.clauses[i + 1..] {
                        if clause_uses_var(later, var) {
                            used = true;
                            break;
                        }
                    }
                    if !used {
                        used = expr_uses_var(&fl.return_expr, var);
                    }
                    keep[i] = used;
                }
            }
            let mut it = keep.iter();
            fl.clauses.retain(|_| *it.next().unwrap());
        }
        Expr::Binary { left, right, .. } => {
            eliminate_dead_lets(left);
            eliminate_dead_lets(right);
        }
        Expr::Neg(x) | Expr::Not(x) | Expr::ArrayUnbox { base: x } => eliminate_dead_lets(x),
        Expr::ObjectLookup { base, .. } => eliminate_dead_lets(base),
        Expr::ArrayLookup { base, index } => {
            eliminate_dead_lets(base);
            eliminate_dead_lets(index);
        }
        Expr::Predicate { base, pred } => {
            eliminate_dead_lets(base);
            eliminate_dead_lets(pred);
        }
        Expr::If { cond, then, else_ } => {
            eliminate_dead_lets(cond);
            eliminate_dead_lets(then);
            eliminate_dead_lets(else_);
        }
        Expr::ObjectConstructor(pairs) => {
            for (_, v) in pairs {
                eliminate_dead_lets(v);
            }
        }
        Expr::ArrayConstructor(items) | Expr::Sequence(items) => {
            for i in items {
                eliminate_dead_lets(i);
            }
        }
        Expr::FunctionCall { args, .. } => {
            for a in args {
                eliminate_dead_lets(a);
            }
        }
        Expr::Literal(_) | Expr::VarRef(_) => {}
    }
}

/// Substitutes literal `let` bindings into downstream expressions. Safe because
/// α-renaming has made every binder unique, so no capture can occur.
fn propagate_literal_lets(e: &mut Expr) {
    if let Expr::Flwor(fl) = e {
        let mut subs: HashMap<String, Variant> = HashMap::new();
        for c in &mut fl.clauses {
            match c {
                Clause::Let { var, expr } => {
                    subst_literals(expr, &subs);
                    propagate_literal_lets(expr);
                    if let Expr::Literal(v) = expr {
                        subs.insert(var.clone(), v.clone());
                    }
                }
                Clause::For { expr, .. } | Clause::Where(expr) => {
                    subst_literals(expr, &subs);
                    propagate_literal_lets(expr);
                }
                Clause::GroupBy { keys } => {
                    // Grouping re-binds non-key variables to sequences; stop
                    // propagating beyond this point.
                    for (_, ke) in keys.iter_mut() {
                        if let Some(ke) = ke {
                            subst_literals(ke, &subs);
                            propagate_literal_lets(ke);
                        }
                    }
                    subs.clear();
                }
                Clause::OrderBy { keys } => {
                    for (ke, _) in keys.iter_mut() {
                        subst_literals(ke, &subs);
                        propagate_literal_lets(ke);
                    }
                }
                Clause::Count(_) => {}
            }
        }
        subst_literals(&mut fl.return_expr, &subs);
        propagate_literal_lets(&mut fl.return_expr);
    } else {
        visit_children_mut(e, &mut propagate_literal_lets);
    }
}

fn subst_literals(e: &mut Expr, subs: &HashMap<String, Variant>) {
    if let Expr::VarRef(v) = e {
        if let Some(val) = subs.get(v) {
            *e = Expr::Literal(val.clone());
        }
        return;
    }
    visit_children_mut(e, &mut |c| subst_literals(c, subs));
}

/// Applies `f` to each direct child expression (including clause expressions).
fn visit_children_mut(e: &mut Expr, f: &mut dyn FnMut(&mut Expr)) {
    match e {
        Expr::Literal(_) | Expr::VarRef(_) => {}
        Expr::ObjectConstructor(pairs) => {
            for (_, v) in pairs {
                f(v);
            }
        }
        Expr::ArrayConstructor(items) | Expr::Sequence(items) => {
            for i in items {
                f(i);
            }
        }
        Expr::Flwor(fl) => {
            for c in &mut fl.clauses {
                match c {
                    Clause::For { expr, .. } | Clause::Let { expr, .. } | Clause::Where(expr) => {
                        f(expr)
                    }
                    Clause::GroupBy { keys } => {
                        for (_, e) in keys.iter_mut() {
                            if let Some(e) = e {
                                f(e);
                            }
                        }
                    }
                    Clause::OrderBy { keys } => {
                        for (e, _) in keys.iter_mut() {
                            f(e);
                        }
                    }
                    Clause::Count(_) => {}
                }
            }
            f(&mut fl.return_expr);
        }
        Expr::If { cond, then, else_ } => {
            f(cond);
            f(then);
            f(else_);
        }
        Expr::Binary { left, right, .. } => {
            f(left);
            f(right);
        }
        Expr::Neg(x) | Expr::Not(x) | Expr::ArrayUnbox { base: x } => f(x),
        Expr::ObjectLookup { base, .. } => f(base),
        Expr::ArrayLookup { base, index } => {
            f(base);
            f(index);
        }
        Expr::Predicate { base, pred } => {
            f(base);
            f(pred);
        }
        Expr::FunctionCall { args, .. } => {
            for a in args {
                f(a);
            }
        }
    }
}

/// Replaces FLWORs whose clause list became empty with their return expression.
fn collapse_empty_flwor(e: &mut Expr) {
    visit_children_mut(e, &mut collapse_empty_flwor);
    if let Expr::Flwor(fl) = e {
        if fl.clauses.is_empty() {
            *e = (*fl.return_expr).clone();
        }
    }
}

fn clause_uses_var(c: &Clause, var: &str) -> bool {
    match c {
        Clause::For { expr, .. } | Clause::Let { expr, .. } | Clause::Where(expr) => {
            expr_uses_var(expr, var)
        }
        Clause::GroupBy { keys } => keys
            .iter()
            .any(|(v, e)| v == var || e.as_ref().is_some_and(|e| expr_uses_var(e, var))),
        Clause::OrderBy { keys } => keys.iter().any(|(e, _)| expr_uses_var(e, var)),
        Clause::Count(_) => false,
    }
}

/// Whether `e` references `var` free or bound — a conservative over-approximation
/// (α-renaming has already made names unique, so shadowing cannot occur).
fn expr_uses_var(e: &Expr, var: &str) -> bool {
    let mut used = false;
    e.walk(&mut |x| {
        if let Expr::VarRef(v) = x {
            if v == var {
                used = true;
            }
        }
    });
    used
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn rw(src: &str) -> Expr {
        rewrite(&parse(src).unwrap()).unwrap()
    }

    #[test]
    fn inlines_functions() {
        let e = rw("declare function double($x) { $x * 2 }; double(21)");
        // After inlining + folding the whole thing is the literal 42.
        assert_eq!(e, Expr::Literal(Variant::Int(42)));
    }

    #[test]
    fn inlining_is_capture_avoiding() {
        let e = rw(
            r#"declare function f($x) { for $y in (1, 2) return $x + $y };
               for $y in (10, 20) return f($y)"#,
        );
        // The inner $y of the function body must not capture the caller's $y;
        // verify no VarRef resolves ambiguously by checking that the inlined
        // body's for-variable differs from the outer one.
        let mut names = Vec::new();
        e.walk(&mut |x| {
            if let Expr::Flwor(fl) = x {
                for c in &fl.clauses {
                    if let Clause::For { var, .. } = c {
                        names.push(var.clone());
                    }
                }
            }
        });
        assert_eq!(names.len(), 2);
        assert_ne!(names[0], names[1]);
    }

    #[test]
    fn rejects_recursion() {
        let m = parse("declare function f($x) { f($x) }; f(1)").unwrap();
        match rewrite(&m) {
            Err(JsoniqError::Static(msg)) => assert!(msg.contains("recursive")),
            other => panic!("expected recursion error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_arity_mismatch() {
        let m = parse("declare function f($x) { $x }; f(1, 2)").unwrap();
        assert!(matches!(rewrite(&m), Err(JsoniqError::Static(_))));
    }

    #[test]
    fn folds_constants() {
        assert_eq!(rw("1 + 2 * 3"), Expr::Literal(Variant::Int(7)));
        assert_eq!(rw("10 div 4"), Expr::Literal(Variant::Float(2.5)));
        assert_eq!(rw("1 lt 2"), Expr::Literal(Variant::Bool(true)));
        assert_eq!(rw("if (true) then 1 else 2"), Expr::Literal(Variant::Int(1)));
    }

    #[test]
    fn removes_dead_lets() {
        let e = rw(r#"for $x in (1, 2) let $unused := $x * 100 return $x"#);
        let mut lets = 0;
        e.walk(&mut |x| {
            if let Expr::Flwor(fl) = x {
                lets += fl.clauses.iter().filter(|c| matches!(c, Clause::Let { .. })).count();
            }
        });
        assert_eq!(lets, 0);
    }

    #[test]
    fn keeps_live_lets() {
        let e = rw(r#"for $x in (1, 2) let $y := $x * 100 return $y"#);
        let mut lets = 0;
        e.walk(&mut |x| {
            if let Expr::Flwor(fl) = x {
                lets += fl.clauses.iter().filter(|c| matches!(c, Clause::Let { .. })).count();
            }
        });
        assert_eq!(lets, 1);
    }

    #[test]
    fn unknown_functions_are_left_for_later_stages() {
        // Built-ins are resolved at iterator-tree construction, not here.
        let e = rw("abs(-3)");
        assert!(matches!(e, Expr::FunctionCall { .. }));
    }
}
