//! `jsoniq-core` — the paper's primary contribution: a JSONiq compiler that
//! lowers queries through an AST, an expression tree, and an iterator tree, and
//! then either interprets them locally (the RumbleDB-like baseline) or
//! translates them into a single native SQL query via the `snowpark` API.

pub mod ast;
pub mod cache;
pub mod expr;
pub mod interp;
pub mod itertree;
pub mod lexer;
pub mod parser;
pub mod snowflake;
pub mod verify;

pub use ast::*;
pub use parser::parse;
