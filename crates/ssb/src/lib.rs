//! `ssb` — the Star Schema Benchmark substrate: data generators for the
//! lineorder fact table and four dimensions, plus the thirteen benchmark
//! queries in both handwritten SQL and JSONiq.

pub mod generator;
pub mod queries;

pub use generator::{load_ssb, load_ssb_tiny, SsbConfig, LINEORDERS_SF1};
pub use queries::{queries, query, SsbQuery};
