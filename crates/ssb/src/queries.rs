//! The thirteen SSB queries (paper §V-G), each as handwritten SQL and as a
//! JSONiq formulation using successive `for` clauses over collections with
//! join predicates in `where` (paper §II-E: "SQL JOINs can be expressed as
//! successive for clauses").
//!
//! The JSONiq version returns one *object* per result row, so its translation
//! carries an extra `OBJECT_CONSTRUCT` — exactly the overhead the paper
//! observes for SSB at low scale factors. The test suite compares the two by
//! wrapping handwritten rows into objects using [`SsbQuery::keys`].

/// One SSB query in both formulations.
#[derive(Clone, Debug)]
pub struct SsbQuery {
    pub id: &'static str,
    pub jsoniq: String,
    pub sql: String,
    /// Output object keys, in handwritten-SQL column order.
    pub keys: Vec<&'static str>,
}

/// All thirteen queries.
pub fn queries() -> Vec<SsbQuery> {
    vec![
        q1x("q1.1", "$d.D_YEAR eq 1993", "$lo.LO_DISCOUNT ge 1 and $lo.LO_DISCOUNT le 3 and $lo.LO_QUANTITY lt 25",
            "D_YEAR = 1993", "LO_DISCOUNT BETWEEN 1 AND 3 AND LO_QUANTITY < 25"),
        q1x("q1.2", "$d.D_YEARMONTHNUM eq 199401", "$lo.LO_DISCOUNT ge 4 and $lo.LO_DISCOUNT le 6 and $lo.LO_QUANTITY ge 26 and $lo.LO_QUANTITY le 35",
            "D_YEARMONTHNUM = 199401", "LO_DISCOUNT BETWEEN 4 AND 6 AND LO_QUANTITY BETWEEN 26 AND 35"),
        q1x("q1.3", "$d.D_WEEKNUMINYEAR eq 6 and $d.D_YEAR eq 1994", "$lo.LO_DISCOUNT ge 5 and $lo.LO_DISCOUNT le 7 and $lo.LO_QUANTITY ge 26 and $lo.LO_QUANTITY le 35",
            "D_WEEKNUMINYEAR = 6 AND D_YEAR = 1994", "LO_DISCOUNT BETWEEN 5 AND 7 AND LO_QUANTITY BETWEEN 26 AND 35"),
        q2x("q2.1", r#"$p.P_CATEGORY eq "MFGR#12""#, r#"$s.S_REGION eq "AMERICA""#,
            "P_CATEGORY = 'MFGR#12'", "S_REGION = 'AMERICA'"),
        q2x("q2.2", r#"$p.P_BRAND1 ge "MFGR#2221" and $p.P_BRAND1 le "MFGR#2228""#, r#"$s.S_REGION eq "ASIA""#,
            "P_BRAND1 BETWEEN 'MFGR#2221' AND 'MFGR#2228'", "S_REGION = 'ASIA'"),
        q2x("q2.3", r#"$p.P_BRAND1 eq "MFGR#2221""#, r#"$s.S_REGION eq "EUROPE""#,
            "P_BRAND1 = 'MFGR#2221'", "S_REGION = 'EUROPE'"),
        q3x("q3.1", "C_NATION", "S_NATION",
            r#"$c.C_REGION eq "ASIA" and $s.S_REGION eq "ASIA" and $d.D_YEAR ge 1992 and $d.D_YEAR le 1997"#,
            "C_REGION = 'ASIA' AND S_REGION = 'ASIA' AND D_YEAR BETWEEN 1992 AND 1997"),
        q3x("q3.2", "C_CITY", "S_CITY",
            r#"$c.C_NATION eq "UNITED STATES" and $s.S_NATION eq "UNITED STATES" and $d.D_YEAR ge 1992 and $d.D_YEAR le 1997"#,
            "C_NATION = 'UNITED STATES' AND S_NATION = 'UNITED STATES' AND D_YEAR BETWEEN 1992 AND 1997"),
        q3x("q3.3", "C_CITY", "S_CITY",
            r#"($c.C_CITY eq "UNITED KI1" or $c.C_CITY eq "UNITED KI5") and ($s.S_CITY eq "UNITED KI1" or $s.S_CITY eq "UNITED KI5") and $d.D_YEAR ge 1992 and $d.D_YEAR le 1997"#,
            "C_CITY IN ('UNITED KI1', 'UNITED KI5') AND S_CITY IN ('UNITED KI1', 'UNITED KI5') AND D_YEAR BETWEEN 1992 AND 1997"),
        q3x("q3.4", "C_CITY", "S_CITY",
            r#"($c.C_CITY eq "UNITED KI1" or $c.C_CITY eq "UNITED KI5") and ($s.S_CITY eq "UNITED KI1" or $s.S_CITY eq "UNITED KI5") and $d.D_YEARMONTH eq "Dec1997""#,
            "C_CITY IN ('UNITED KI1', 'UNITED KI5') AND S_CITY IN ('UNITED KI1', 'UNITED KI5') AND D_YEARMONTH = 'Dec1997'"),
        q4_1(),
        q4_2(),
        q4_3(),
    ]
}

/// Fetches one query by id.
pub fn query(id: &str) -> SsbQuery {
    queries()
        .into_iter()
        .find(|q| q.id == id)
        .unwrap_or_else(|| panic!("unknown SSB query '{id}'"))
}

/// Q1.x family: revenue delta from discount changes; lineorder ⋈ date.
fn q1x(
    id: &'static str,
    jq_date: &str,
    jq_lo: &str,
    sql_date: &str,
    sql_lo: &str,
) -> SsbQuery {
    // Top-level FLWOR with a constant grouping key: the `where` stays a real
    // filter, so the optimizer can turn the collection cross joins into hash
    // joins (a `sum(<FLWOR>)` wrapper would route the join predicates through
    // the nested-query flag machinery instead).
    let jsoniq = format!(
        r#"for $lo in collection("lineorder")
for $d in collection("ddate")
where $lo.LO_ORDERDATE eq $d.D_DATEKEY and {jq_date} and {jq_lo}
let $val := $lo.LO_EXTENDEDPRICE * $lo.LO_DISCOUNT
group by $g := 1
return {{"revenue": sum($val)}}"#
    );
    let sql = format!(
        "SELECT SUM(LO_EXTENDEDPRICE * LO_DISCOUNT) AS REVENUE \
         FROM LINEORDER JOIN DDATE ON LO_ORDERDATE = D_DATEKEY \
         WHERE {sql_date} AND {sql_lo}"
    );
    SsbQuery { id, jsoniq, sql, keys: vec!["revenue"] }
}

/// Q2.x family: revenue by year and brand; lineorder ⋈ date ⋈ part ⋈ supplier.
fn q2x(
    id: &'static str,
    jq_part: &str,
    jq_supp: &str,
    sql_part: &str,
    sql_supp: &str,
) -> SsbQuery {
    let jsoniq = format!(
        r#"for $lo in collection("lineorder")
for $d in collection("ddate")
for $p in collection("part")
for $s in collection("supplier")
where $lo.LO_ORDERDATE eq $d.D_DATEKEY
  and $lo.LO_PARTKEY eq $p.P_PARTKEY
  and $lo.LO_SUPPKEY eq $s.S_SUPPKEY
  and {jq_part} and {jq_supp}
group by $year := $d.D_YEAR, $brand := $p.P_BRAND1
order by $year, $brand
return {{"d_year": $year, "p_brand1": $brand, "revenue": sum($lo.LO_REVENUE)}}"#
    );
    let sql = format!(
        "SELECT D_YEAR, P_BRAND1, SUM(LO_REVENUE) AS REVENUE \
         FROM LINEORDER \
           JOIN DDATE ON LO_ORDERDATE = D_DATEKEY \
           JOIN PART ON LO_PARTKEY = P_PARTKEY \
           JOIN SUPPLIER ON LO_SUPPKEY = S_SUPPKEY \
         WHERE {sql_part} AND {sql_supp} \
         GROUP BY D_YEAR, P_BRAND1 ORDER BY D_YEAR, P_BRAND1"
    );
    SsbQuery { id, jsoniq, sql, keys: vec!["d_year", "p_brand1", "revenue"] }
}

/// Q3.x family: revenue by customer/supplier geography and year.
fn q3x(
    id: &'static str,
    c_col: &'static str,
    s_col: &'static str,
    jq_where: &str,
    sql_where: &str,
) -> SsbQuery {
    let (ck, sk) = (c_col.to_lowercase(), s_col.to_lowercase());
    let jsoniq = format!(
        r#"for $lo in collection("lineorder")
for $c in collection("customer")
for $s in collection("supplier")
for $d in collection("ddate")
where $lo.LO_CUSTKEY eq $c.C_CUSTKEY
  and $lo.LO_SUPPKEY eq $s.S_SUPPKEY
  and $lo.LO_ORDERDATE eq $d.D_DATEKEY
  and {jq_where}
group by $ck := $c.{c_col}, $sk := $s.{s_col}, $year := $d.D_YEAR
order by $year ascending, sum($lo.LO_REVENUE) descending
return {{"{ck}": $ck, "{sk}": $sk, "d_year": $year, "revenue": sum($lo.LO_REVENUE)}}"#
    );
    let sql = format!(
        "SELECT {c_col}, {s_col}, D_YEAR, SUM(LO_REVENUE) AS REVENUE \
         FROM LINEORDER \
           JOIN CUSTOMER ON LO_CUSTKEY = C_CUSTKEY \
           JOIN SUPPLIER ON LO_SUPPKEY = S_SUPPKEY \
           JOIN DDATE ON LO_ORDERDATE = D_DATEKEY \
         WHERE {sql_where} \
         GROUP BY {c_col}, {s_col}, D_YEAR \
         ORDER BY D_YEAR ASC, REVENUE DESC"
    );
    let keys = match c_col {
        "C_NATION" => vec!["c_nation", "s_nation", "d_year", "revenue"],
        _ => vec!["c_city", "s_city", "d_year", "revenue"],
    };
    SsbQuery { id, jsoniq, sql, keys }
}

/// Q4.1: profit by year and customer nation over the Americas.
fn q4_1() -> SsbQuery {
    let jsoniq = r#"for $lo in collection("lineorder")
for $c in collection("customer")
for $s in collection("supplier")
for $p in collection("part")
for $d in collection("ddate")
where $lo.LO_CUSTKEY eq $c.C_CUSTKEY
  and $lo.LO_SUPPKEY eq $s.S_SUPPKEY
  and $lo.LO_PARTKEY eq $p.P_PARTKEY
  and $lo.LO_ORDERDATE eq $d.D_DATEKEY
  and $c.C_REGION eq "AMERICA" and $s.S_REGION eq "AMERICA"
  and ($p.P_MFGR eq "MFGR#1" or $p.P_MFGR eq "MFGR#2")
let $profit := $lo.LO_REVENUE - $lo.LO_SUPPLYCOST
group by $year := $d.D_YEAR, $nation := $c.C_NATION
order by $year, $nation
return {"d_year": $year, "c_nation": $nation, "profit": sum($profit)}"#
        .to_string();
    let sql = "SELECT D_YEAR, C_NATION, SUM(LO_REVENUE - LO_SUPPLYCOST) AS PROFIT \
               FROM LINEORDER \
                 JOIN CUSTOMER ON LO_CUSTKEY = C_CUSTKEY \
                 JOIN SUPPLIER ON LO_SUPPKEY = S_SUPPKEY \
                 JOIN PART ON LO_PARTKEY = P_PARTKEY \
                 JOIN DDATE ON LO_ORDERDATE = D_DATEKEY \
               WHERE C_REGION = 'AMERICA' AND S_REGION = 'AMERICA' \
                 AND P_MFGR IN ('MFGR#1', 'MFGR#2') \
               GROUP BY D_YEAR, C_NATION ORDER BY D_YEAR, C_NATION"
        .to_string();
    SsbQuery { id: "q4.1", jsoniq, sql, keys: vec!["d_year", "c_nation", "profit"] }
}

/// Q4.2: profit drill-down into supplier nation and part category.
fn q4_2() -> SsbQuery {
    let jsoniq = r#"for $lo in collection("lineorder")
for $c in collection("customer")
for $s in collection("supplier")
for $p in collection("part")
for $d in collection("ddate")
where $lo.LO_CUSTKEY eq $c.C_CUSTKEY
  and $lo.LO_SUPPKEY eq $s.S_SUPPKEY
  and $lo.LO_PARTKEY eq $p.P_PARTKEY
  and $lo.LO_ORDERDATE eq $d.D_DATEKEY
  and $c.C_REGION eq "AMERICA" and $s.S_REGION eq "AMERICA"
  and ($d.D_YEAR eq 1997 or $d.D_YEAR eq 1998)
  and ($p.P_MFGR eq "MFGR#1" or $p.P_MFGR eq "MFGR#2")
let $profit := $lo.LO_REVENUE - $lo.LO_SUPPLYCOST
group by $year := $d.D_YEAR, $nation := $s.S_NATION, $cat := $p.P_CATEGORY
order by $year, $nation, $cat
return {"d_year": $year, "s_nation": $nation, "p_category": $cat,
        "profit": sum($profit)}"#
        .to_string();
    let sql = "SELECT D_YEAR, S_NATION, P_CATEGORY, SUM(LO_REVENUE - LO_SUPPLYCOST) AS PROFIT \
               FROM LINEORDER \
                 JOIN CUSTOMER ON LO_CUSTKEY = C_CUSTKEY \
                 JOIN SUPPLIER ON LO_SUPPKEY = S_SUPPKEY \
                 JOIN PART ON LO_PARTKEY = P_PARTKEY \
                 JOIN DDATE ON LO_ORDERDATE = D_DATEKEY \
               WHERE C_REGION = 'AMERICA' AND S_REGION = 'AMERICA' \
                 AND D_YEAR IN (1997, 1998) AND P_MFGR IN ('MFGR#1', 'MFGR#2') \
               GROUP BY D_YEAR, S_NATION, P_CATEGORY \
               ORDER BY D_YEAR, S_NATION, P_CATEGORY"
        .to_string();
    SsbQuery {
        id: "q4.2",
        jsoniq,
        sql,
        keys: vec!["d_year", "s_nation", "p_category", "profit"],
    }
}

/// Q4.3: profit at the brand level for United States suppliers.
fn q4_3() -> SsbQuery {
    let jsoniq = r#"for $lo in collection("lineorder")
for $c in collection("customer")
for $s in collection("supplier")
for $p in collection("part")
for $d in collection("ddate")
where $lo.LO_CUSTKEY eq $c.C_CUSTKEY
  and $lo.LO_SUPPKEY eq $s.S_SUPPKEY
  and $lo.LO_PARTKEY eq $p.P_PARTKEY
  and $lo.LO_ORDERDATE eq $d.D_DATEKEY
  and $c.C_REGION eq "AMERICA" and $s.S_NATION eq "UNITED STATES"
  and ($d.D_YEAR eq 1997 or $d.D_YEAR eq 1998)
  and $p.P_CATEGORY eq "MFGR#14"
let $profit := $lo.LO_REVENUE - $lo.LO_SUPPLYCOST
group by $year := $d.D_YEAR, $city := $s.S_CITY, $brand := $p.P_BRAND1
order by $year, $city, $brand
return {"d_year": $year, "s_city": $city, "p_brand1": $brand,
        "profit": sum($profit)}"#
        .to_string();
    let sql = "SELECT D_YEAR, S_CITY, P_BRAND1, SUM(LO_REVENUE - LO_SUPPLYCOST) AS PROFIT \
               FROM LINEORDER \
                 JOIN CUSTOMER ON LO_CUSTKEY = C_CUSTKEY \
                 JOIN SUPPLIER ON LO_SUPPKEY = S_SUPPKEY \
                 JOIN PART ON LO_PARTKEY = P_PARTKEY \
                 JOIN DDATE ON LO_ORDERDATE = D_DATEKEY \
               WHERE C_REGION = 'AMERICA' AND S_NATION = 'UNITED STATES' \
                 AND D_YEAR IN (1997, 1998) AND P_CATEGORY = 'MFGR#14' \
               GROUP BY D_YEAR, S_CITY, P_BRAND1 \
               ORDER BY D_YEAR, S_CITY, P_BRAND1"
        .to_string();
    SsbQuery { id: "q4.3", jsoniq, sql, keys: vec!["d_year", "s_city", "p_brand1", "profit"] }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirteen_queries() {
        let qs = queries();
        assert_eq!(qs.len(), 13);
        let ids: Vec<_> = qs.iter().map(|q| q.id).collect();
        assert_eq!(
            ids,
            vec![
                "q1.1", "q1.2", "q1.3", "q2.1", "q2.2", "q2.3", "q3.1", "q3.2", "q3.3",
                "q3.4", "q4.1", "q4.2", "q4.3"
            ]
        );
    }

    #[test]
    fn lookup_by_id() {
        assert_eq!(query("q3.2").keys, vec!["c_city", "s_city", "d_year", "revenue"]);
    }

    #[test]
    #[should_panic(expected = "unknown SSB query")]
    fn unknown_id_panics() {
        query("q9.9");
    }
}
