//! Star Schema Benchmark data generator.
//!
//! Follows the official SSB value domains (O'Neil et al.): five regions with
//! five nations each, cities formed from the nation name's first nine
//! characters plus a digit, `MFGR#`-prefixed part hierarchies, a seven-year
//! date dimension (1992–1998), and lineorder measures with the official
//! ranges. Cardinalities are re-based for laptop scale: our SF1 fact table
//! holds [`LINEORDERS_SF1`] rows with dimension sizes in the official
//! proportions.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use snowdb::storage::{ColumnDef, ColumnType};
use snowdb::{Database, Variant};

/// Lineorder rows at re-based Scale Factor 1 (official SF1 is 6 M).
pub const LINEORDERS_SF1: usize = 32_768;

/// Regions and their nations; AMERICA/ASIA/EUROPE carry the nation names the
/// official queries select on.
pub const REGIONS: [(&str, [&str; 5]); 5] = [
    ("AFRICA", ["ALGERIA", "ETHIOPIA", "KENYA", "MOROCCO", "MOZAMBIQUE"]),
    ("AMERICA", ["ARGENTINA", "BRAZIL", "CANADA", "PERU", "UNITED STATES"]),
    ("ASIA", ["CHINA", "INDIA", "INDONESIA", "JAPAN", "VIETNAM"]),
    ("EUROPE", ["FRANCE", "GERMANY", "ROMANIA", "RUSSIA", "UNITED KINGDOM"]),
    ("MIDDLE EAST", ["EGYPT", "IRAN", "IRAQ", "JORDAN", "SAUDI ARABIA"]),
];

const MONTH_NAMES: [&str; 12] = [
    "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
];

const DAYS_PER_MONTH: [u32; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

/// Generator configuration; all cardinalities derive from `lineorders`.
#[derive(Clone, Copy, Debug)]
pub struct SsbConfig {
    pub lineorders: usize,
    pub seed: u64,
    pub partition_rows: usize,
}

impl Default for SsbConfig {
    fn default() -> Self {
        SsbConfig { lineorders: LINEORDERS_SF1, seed: 7, partition_rows: 4096 }
    }
}

impl SsbConfig {
    /// Re-based scale factor: `sf(1.0)` ≈ official proportions at 1/180 size.
    pub fn scale_factor(sf: f64) -> SsbConfig {
        SsbConfig {
            lineorders: ((LINEORDERS_SF1 as f64 * sf) as usize).max(64),
            ..Default::default()
        }
    }

    pub fn customers(&self) -> usize {
        (self.lineorders / 8).max(20)
    }

    pub fn suppliers(&self) -> usize {
        (self.lineorders / 64).max(10)
    }

    pub fn parts(&self) -> usize {
        (self.lineorders / 4).max(50)
    }
}

/// Official SSB city encoding: nation name padded/truncated to nine
/// characters plus a digit (`UNITED KINGDOM`, 1 → `"UNITED KI1"`).
pub fn city_of(nation: &str, digit: usize) -> String {
    let mut name: String = nation.chars().take(9).collect();
    while name.len() < 9 {
        name.push(' ');
    }
    format!("{name}{digit}")
}

fn pick_nation(rng: &mut StdRng) -> (&'static str, &'static str) {
    let (region, nations) = REGIONS[rng.gen_range(0..REGIONS.len())];
    (region, nations[rng.gen_range(0..5)])
}

fn str_cols(names: &[&str]) -> Vec<ColumnDef> {
    names.iter().map(|n| ColumnDef::new(*n, ColumnType::Str)).collect()
}

fn int_cols(names: &[&str]) -> Vec<ColumnDef> {
    names.iter().map(|n| ColumnDef::new(*n, ColumnType::Int)).collect()
}

/// Full 1992–1998 date dimension: schema, rows, and the datekey list used to
/// draw lineorder FKs.
fn date_dimension() -> (Vec<ColumnDef>, Vec<Vec<Variant>>, Vec<i64>) {
    let mut date_schema = int_cols(&["D_DATEKEY", "D_YEAR", "D_YEARMONTHNUM", "D_MONTHNUMINYEAR", "D_WEEKNUMINYEAR", "D_DAYNUMINYEAR"]);
    date_schema.push(ColumnDef::new("D_YEARMONTH", ColumnType::Str));
    date_schema.push(ColumnDef::new("D_DAYOFWEEK", ColumnType::Str));
    let mut date_rows: Vec<Vec<Variant>> = Vec::new();
    let mut datekeys: Vec<i64> = Vec::new();
    for year in 1992..=1998i64 {
        let mut daynum = 0i64;
        for (m, &days) in DAYS_PER_MONTH.iter().enumerate() {
            for day in 1..=days as i64 {
                daynum += 1;
                let datekey = year * 10_000 + (m as i64 + 1) * 100 + day;
                datekeys.push(datekey);
                date_rows.push(vec![
                    Variant::Int(datekey),
                    Variant::Int(year),
                    Variant::Int(year * 100 + m as i64 + 1),
                    Variant::Int(m as i64 + 1),
                    Variant::Int((daynum - 1) / 7 + 1),
                    Variant::Int(daynum),
                    Variant::from(format!("{}{}", MONTH_NAMES[m], year)),
                    Variant::from(
                        ["Monday", "Tuesday", "Wednesday", "Thursday", "Friday", "Saturday", "Sunday"]
                            [(daynum as usize) % 7],
                    ),
                ]);
            }
        }
    }
    (date_schema, date_rows, datekeys)
}

/// Loads all five SSB tables into the database:
/// `LINEORDER`, `CUSTOMER`, `SUPPLIER`, `PART`, `DDATE`.
pub fn load_ssb(db: &Database, cfg: &SsbConfig) {
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // ---- DDATE: all days of 1992-1998 --------------------------------------
    let (date_schema, date_rows, datekeys) = date_dimension();
    db.load_table_with_partition_rows("DDATE", date_schema, date_rows, cfg.partition_rows)
        .expect("date schema fixed");

    // ---- CUSTOMER -----------------------------------------------------------
    let n_cust = cfg.customers();
    let mut cust_schema = int_cols(&["C_CUSTKEY"]);
    cust_schema.extend(str_cols(&["C_NAME", "C_CITY", "C_NATION", "C_REGION", "C_MKTSEGMENT"]));
    let segments = ["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"];
    let cust_rows: Vec<Vec<Variant>> = (1..=n_cust as i64)
        .map(|k| {
            let (region, nation) = pick_nation(&mut rng);
            let digit = rng.gen_range(0..10);
            vec![
                Variant::Int(k),
                Variant::from(format!("Customer#{k:09}")),
                Variant::from(city_of(nation, digit)),
                Variant::from(nation),
                Variant::from(region),
                Variant::from(segments[rng.gen_range(0..segments.len())]),
            ]
        })
        .collect();
    db.load_table_with_partition_rows("CUSTOMER", cust_schema, cust_rows, cfg.partition_rows)
        .expect("customer schema fixed");

    // ---- SUPPLIER -----------------------------------------------------------
    let n_supp = cfg.suppliers();
    let mut supp_schema = int_cols(&["S_SUPPKEY"]);
    supp_schema.extend(str_cols(&["S_NAME", "S_CITY", "S_NATION", "S_REGION"]));
    let supp_rows: Vec<Vec<Variant>> = (1..=n_supp as i64)
        .map(|k| {
            let (region, nation) = pick_nation(&mut rng);
            let digit = rng.gen_range(0..10);
            vec![
                Variant::Int(k),
                Variant::from(format!("Supplier#{k:09}")),
                Variant::from(city_of(nation, digit)),
                Variant::from(nation),
                Variant::from(region),
            ]
        })
        .collect();
    db.load_table_with_partition_rows("SUPPLIER", supp_schema, supp_rows, cfg.partition_rows)
        .expect("supplier schema fixed");

    // ---- PART ---------------------------------------------------------------
    let n_part = cfg.parts();
    let mut part_schema = int_cols(&["P_PARTKEY"]);
    part_schema.extend(str_cols(&["P_NAME", "P_MFGR", "P_CATEGORY", "P_BRAND1", "P_COLOR"]));
    part_schema.push(ColumnDef::new("P_SIZE", ColumnType::Int));
    let colors = ["red", "green", "blue", "yellow", "pink", "white", "black", "azure"];
    let part_rows: Vec<Vec<Variant>> = (1..=n_part as i64)
        .map(|k| {
            let mfgr = rng.gen_range(1..=5);
            let cat = rng.gen_range(1..=5);
            let brand = rng.gen_range(1..=40);
            vec![
                Variant::Int(k),
                Variant::from(format!("Part {k}")),
                Variant::from(format!("MFGR#{mfgr}")),
                Variant::from(format!("MFGR#{mfgr}{cat}")),
                Variant::from(format!("MFGR#{mfgr}{cat}{brand:02}")),
                Variant::from(colors[rng.gen_range(0..colors.len())]),
                Variant::Int(rng.gen_range(1..=50)),
            ]
        })
        .collect();
    db.load_table_with_partition_rows("PART", part_schema, part_rows, cfg.partition_rows)
        .expect("part schema fixed");

    // ---- LINEORDER ----------------------------------------------------------
    let lo_schema = vec![
        ColumnDef::new("LO_ORDERKEY", ColumnType::Int),
        ColumnDef::new("LO_LINENUMBER", ColumnType::Int),
        ColumnDef::new("LO_CUSTKEY", ColumnType::Int),
        ColumnDef::new("LO_PARTKEY", ColumnType::Int),
        ColumnDef::new("LO_SUPPKEY", ColumnType::Int),
        ColumnDef::new("LO_ORDERDATE", ColumnType::Int),
        ColumnDef::new("LO_QUANTITY", ColumnType::Int),
        ColumnDef::new("LO_EXTENDEDPRICE", ColumnType::Int),
        ColumnDef::new("LO_ORDTOTALPRICE", ColumnType::Int),
        ColumnDef::new("LO_DISCOUNT", ColumnType::Int),
        ColumnDef::new("LO_REVENUE", ColumnType::Int),
        ColumnDef::new("LO_SUPPLYCOST", ColumnType::Int),
        ColumnDef::new("LO_TAX", ColumnType::Int),
        ColumnDef::new("LO_COMMITDATE", ColumnType::Int),
        ColumnDef::new("LO_SHIPMODE", ColumnType::Str),
    ];
    let shipmodes = ["AIR", "SHIP", "TRUCK", "RAIL", "MAIL", "FOB", "REG AIR"];
    let lo_rows: Vec<Vec<Variant>> = (1..=cfg.lineorders as i64)
        .map(|k| {
            let quantity = rng.gen_range(1..=50i64);
            let price = rng.gen_range(90_000..=1_100_000i64);
            let discount = rng.gen_range(0..=10i64);
            let revenue = price * (100 - discount) / 100;
            let orderdate = datekeys[rng.gen_range(0..datekeys.len())];
            vec![
                Variant::Int((k + 3) / 4),
                Variant::Int((k - 1) % 4 + 1),
                Variant::Int(rng.gen_range(1..=n_cust as i64)),
                Variant::Int(rng.gen_range(1..=n_part as i64)),
                Variant::Int(rng.gen_range(1..=n_supp as i64)),
                Variant::Int(orderdate),
                Variant::Int(quantity),
                Variant::Int(price),
                Variant::Int(price * 4),
                Variant::Int(discount),
                Variant::Int(revenue),
                Variant::Int(price * 6 / 10),
                Variant::Int(rng.gen_range(0..=8i64)),
                Variant::Int(datekeys[rng.gen_range(0..datekeys.len())]),
                Variant::from(shipmodes[rng.gen_range(0..shipmodes.len())]),
            ]
        })
        .collect();
    db.load_table_with_partition_rows("LINEORDER", lo_schema, lo_rows, cfg.partition_rows)
        .expect("lineorder schema fixed");
}

/// Loads a foreign-key-closed miniature SSB database whose worst-case cross
/// product stays small enough to execute with the optimizer *disabled*.
///
/// The standard generator's DDATE is always 2 555 rows (every day of
/// 1992–1998) and its dimension floors are 20/10/50, so even the smallest
/// `load_ssb` database makes a raw four-way cross product infeasible for the
/// tuple-at-a-time interpreter. The verification lattice needs the
/// `optimize=false` axis to actually run the join corpus, so this loader
/// caps every table: 12 lineorders, 18 sampled dates, 8 customers,
/// 5 suppliers, 8 parts — a worst-case intermediate of ~69 k rows.
///
/// Dates are a deterministic stride over the full seven-year dimension, so
/// derived fields (`D_YEARMONTH`, week numbers, …) keep the official
/// encoding and every year is represented. All lineorder FKs resolve:
/// round-robin over the tiny dimensions, measures from the seeded rng.
pub fn load_ssb_tiny(db: &Database, cfg: &SsbConfig) {
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // ---- DDATE: every 142nd day of 1992-1998 → 18 rows ---------------------
    let (date_schema, date_rows, all_keys) = date_dimension();
    let sampled: Vec<Vec<Variant>> = date_rows.into_iter().step_by(142).collect();
    let datekeys: Vec<i64> = all_keys.into_iter().step_by(142).collect();
    assert_eq!(datekeys.len(), 18);
    db.load_table_with_partition_rows("DDATE", date_schema, sampled, cfg.partition_rows)
        .expect("date schema fixed");

    // ---- CUSTOMER: 8 rows over 4 regions -----------------------------------
    let mut cust_schema = int_cols(&["C_CUSTKEY"]);
    cust_schema.extend(str_cols(&["C_NAME", "C_CITY", "C_NATION", "C_REGION", "C_MKTSEGMENT"]));
    let segments = ["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"];
    let cust_rows: Vec<Vec<Variant>> = (1..=8i64)
        .map(|k| {
            let (region, nations) = REGIONS[(k as usize - 1) % 4];
            let nation = nations[(k as usize - 1) % 5];
            vec![
                Variant::Int(k),
                Variant::from(format!("Customer#{k:09}")),
                Variant::from(city_of(nation, (k as usize) % 10)),
                Variant::from(nation),
                Variant::from(region),
                Variant::from(segments[(k as usize - 1) % segments.len()]),
            ]
        })
        .collect();
    db.load_table_with_partition_rows("CUSTOMER", cust_schema, cust_rows, cfg.partition_rows)
        .expect("customer schema fixed");

    // ---- SUPPLIER: 5 rows, one per region ----------------------------------
    let mut supp_schema = int_cols(&["S_SUPPKEY"]);
    supp_schema.extend(str_cols(&["S_NAME", "S_CITY", "S_NATION", "S_REGION"]));
    let supp_rows: Vec<Vec<Variant>> = (1..=5i64)
        .map(|k| {
            let (region, nations) = REGIONS[k as usize - 1];
            let nation = nations[(k as usize * 2) % 5];
            vec![
                Variant::Int(k),
                Variant::from(format!("Supplier#{k:09}")),
                Variant::from(city_of(nation, (k as usize) % 10)),
                Variant::from(nation),
                Variant::from(region),
            ]
        })
        .collect();
    db.load_table_with_partition_rows("SUPPLIER", supp_schema, supp_rows, cfg.partition_rows)
        .expect("supplier schema fixed");

    // ---- PART: 8 rows spanning the MFGR hierarchy --------------------------
    let mut part_schema = int_cols(&["P_PARTKEY"]);
    part_schema.extend(str_cols(&["P_NAME", "P_MFGR", "P_CATEGORY", "P_BRAND1", "P_COLOR"]));
    part_schema.push(ColumnDef::new("P_SIZE", ColumnType::Int));
    let colors = ["red", "green", "blue", "yellow", "pink", "white", "black", "azure"];
    let part_rows: Vec<Vec<Variant>> = (1..=8i64)
        .map(|k| {
            let mfgr = (k - 1) % 5 + 1;
            let cat = (k - 1) % 5 + 1;
            let brand = (k - 1) * 5 + 1;
            vec![
                Variant::Int(k),
                Variant::from(format!("Part {k}")),
                Variant::from(format!("MFGR#{mfgr}")),
                Variant::from(format!("MFGR#{mfgr}{cat}")),
                Variant::from(format!("MFGR#{mfgr}{cat}{brand:02}")),
                Variant::from(colors[(k as usize - 1) % colors.len()]),
                Variant::Int((k - 1) % 50 + 1),
            ]
        })
        .collect();
    db.load_table_with_partition_rows("PART", part_schema, part_rows, cfg.partition_rows)
        .expect("part schema fixed");

    // ---- LINEORDER: 12 rows, FKs round-robin over the tiny dimensions ------
    let lo_schema = vec![
        ColumnDef::new("LO_ORDERKEY", ColumnType::Int),
        ColumnDef::new("LO_LINENUMBER", ColumnType::Int),
        ColumnDef::new("LO_CUSTKEY", ColumnType::Int),
        ColumnDef::new("LO_PARTKEY", ColumnType::Int),
        ColumnDef::new("LO_SUPPKEY", ColumnType::Int),
        ColumnDef::new("LO_ORDERDATE", ColumnType::Int),
        ColumnDef::new("LO_QUANTITY", ColumnType::Int),
        ColumnDef::new("LO_EXTENDEDPRICE", ColumnType::Int),
        ColumnDef::new("LO_ORDTOTALPRICE", ColumnType::Int),
        ColumnDef::new("LO_DISCOUNT", ColumnType::Int),
        ColumnDef::new("LO_REVENUE", ColumnType::Int),
        ColumnDef::new("LO_SUPPLYCOST", ColumnType::Int),
        ColumnDef::new("LO_TAX", ColumnType::Int),
        ColumnDef::new("LO_COMMITDATE", ColumnType::Int),
        ColumnDef::new("LO_SHIPMODE", ColumnType::Str),
    ];
    let shipmodes = ["AIR", "SHIP", "TRUCK", "RAIL", "MAIL", "FOB", "REG AIR"];
    let lo_rows: Vec<Vec<Variant>> = (1..=12i64)
        .map(|k| {
            let quantity = rng.gen_range(1..=50i64);
            let price = rng.gen_range(90_000..=1_100_000i64);
            let discount = rng.gen_range(0..=10i64);
            let revenue = price * (100 - discount) / 100;
            vec![
                Variant::Int((k + 3) / 4),
                Variant::Int((k - 1) % 4 + 1),
                Variant::Int((k - 1) % 8 + 1),
                Variant::Int((k - 1) % 8 + 1),
                Variant::Int((k - 1) % 5 + 1),
                Variant::Int(datekeys[(k as usize - 1) % datekeys.len()]),
                Variant::Int(quantity),
                Variant::Int(price),
                Variant::Int(price * 4),
                Variant::Int(discount),
                Variant::Int(revenue),
                Variant::Int(price * 6 / 10),
                Variant::Int(rng.gen_range(0..=8i64)),
                Variant::Int(datekeys[(k as usize + 6) % datekeys.len()]),
                Variant::from(shipmodes[(k as usize - 1) % shipmodes.len()]),
            ]
        })
        .collect();
    db.load_table_with_partition_rows("LINEORDER", lo_schema, lo_rows, cfg.partition_rows)
        .expect("lineorder schema fixed");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_all_tables() {
        let db = Database::new();
        load_ssb(&db, &SsbConfig { lineorders: 1000, seed: 3, partition_rows: 256 });
        assert_eq!(db.table("LINEORDER").unwrap().row_count(), 1000);
        assert_eq!(db.table("DDATE").unwrap().row_count(), 7 * 365);
        assert!(db.table("CUSTOMER").unwrap().row_count() >= 20);
        assert!(db.table("SUPPLIER").unwrap().row_count() >= 10);
        assert!(db.table("PART").unwrap().row_count() >= 50);
    }

    #[test]
    fn city_encoding_matches_official_format() {
        assert_eq!(city_of("UNITED KINGDOM", 1), "UNITED KI1");
        assert_eq!(city_of("UNITED STATES", 5), "UNITED ST5");
        assert_eq!(city_of("PERU", 3), "PERU     3");
    }

    #[test]
    fn foreign_keys_resolve() {
        let db = Database::new();
        let cfg = SsbConfig { lineorders: 500, seed: 1, partition_rows: 128 };
        load_ssb(&db, &cfg);
        let r = db
            .query(
                "SELECT COUNT(*) FROM lineorder l JOIN customer c ON l.lo_custkey = c.c_custkey",
            )
            .unwrap();
        assert_eq!(r.rows[0][0], Variant::Int(500));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Database::new();
        let b = Database::new();
        let cfg = SsbConfig { lineorders: 200, seed: 9, partition_rows: 64 };
        load_ssb(&a, &cfg);
        load_ssb(&b, &cfg);
        let qa = a.query("SELECT SUM(lo_revenue) FROM lineorder").unwrap();
        let qb = b.query("SELECT SUM(lo_revenue) FROM lineorder").unwrap();
        assert_eq!(qa.rows, qb.rows);
    }

    #[test]
    fn tiny_ssb_is_fk_closed_and_cross_product_feasible() {
        let db = Database::new();
        let cfg = SsbConfig { lineorders: 0, seed: 7, partition_rows: 8 };
        load_ssb_tiny(&db, &cfg);
        assert_eq!(db.table("LINEORDER").unwrap().row_count(), 12);
        assert_eq!(db.table("DDATE").unwrap().row_count(), 18);
        assert_eq!(db.table("CUSTOMER").unwrap().row_count(), 8);
        assert_eq!(db.table("SUPPLIER").unwrap().row_count(), 5);
        assert_eq!(db.table("PART").unwrap().row_count(), 8);
        // Worst-case raw cross product stays interpreter-feasible.
        assert!(12 * 18 * 8 * 5 * 8 < 100_000);
        // Every lineorder FK resolves against every dimension.
        let r = db
            .query(
                "SELECT COUNT(*) FROM lineorder l \
                 JOIN ddate d ON l.lo_orderdate = d.d_datekey \
                 JOIN customer c ON l.lo_custkey = c.c_custkey \
                 JOIN supplier s ON l.lo_suppkey = s.s_suppkey \
                 JOIN part p ON l.lo_partkey = p.p_partkey",
            )
            .unwrap();
        assert_eq!(r.rows[0][0], Variant::Int(12));
    }

    #[test]
    fn tiny_ssb_is_deterministic_and_covers_all_years() {
        let a = Database::new();
        let b = Database::new();
        let cfg = SsbConfig::default();
        load_ssb_tiny(&a, &cfg);
        load_ssb_tiny(&b, &cfg);
        let qa = a.query("SELECT SUM(lo_revenue) FROM lineorder").unwrap();
        let qb = b.query("SELECT SUM(lo_revenue) FROM lineorder").unwrap();
        assert_eq!(qa.rows, qb.rows);
        let years = a.query("SELECT COUNT(DISTINCT d_year) FROM ddate").unwrap();
        assert_eq!(years.rows[0][0], Variant::Int(7));
    }

    #[test]
    fn revenue_derived_from_price_and_discount() {
        let db = Database::new();
        load_ssb(&db, &SsbConfig { lineorders: 100, seed: 2, partition_rows: 64 });
        let r = db
            .query(
                "SELECT COUNT(*) FROM lineorder \
                 WHERE lo_revenue <> lo_extendedprice * (100 - lo_discount) / 100 \
                 AND (lo_extendedprice * (100 - lo_discount)) % 100 = 0",
            )
            .unwrap();
        assert_eq!(r.rows[0][0], Variant::Int(0));
    }
}
