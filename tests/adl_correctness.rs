//! Three-way differential test for the ADL benchmark: for every query, the
//! JSONiq interpreter, the automatically translated SQL, and the handwritten
//! SQL baseline must produce identical histograms.

use std::sync::Arc;

use snowq::adl::{self, generator::AdlConfig};
use snowq::jsoniq_core::interp::{DatabaseCollections, Interpreter};
use snowq::jsoniq_core::snowflake::{translate_query, NestedStrategy};
use snowq::snowdb::variant::cmp_variants;
use snowq::snowdb::{Database, Variant};

fn test_db(events: usize) -> Arc<Database> {
    let db = Database::new();
    adl::generator::load_into(
        &db,
        "hep",
        &AdlConfig { events, seed: 1234, partition_rows: 256 },
    );
    Arc::new(db)
}

fn sorted(mut rows: Vec<Variant>) -> Vec<Variant> {
    rows.sort_by(cmp_variants);
    rows
}

fn run_all_three(events: usize, ids: &[&str]) {
    let db = test_db(events);
    for q in adl::queries::queries("hep") {
        if !ids.contains(&q.id) {
            continue;
        }
        // 1. Interpreter (ground truth).
        let provider = DatabaseCollections { db: &db };
        let interp = Interpreter::new(&provider)
            .eval_query(&q.jsoniq)
            .unwrap_or_else(|e| panic!("[{}] interpreter failed: {e}", q.id));

        // 2. Translated SQL (paper-selected strategy).
        let strategy = if q.join_based {
            NestedStrategy::JoinBased
        } else {
            NestedStrategy::FlagColumn
        };
        let df = translate_query(db.clone(), &q.jsoniq, strategy)
            .unwrap_or_else(|e| panic!("[{}] translation failed: {e}", q.id));
        let translated: Vec<Variant> = df
            .collect()
            .unwrap_or_else(|e| panic!("[{}] translated SQL failed: {e}\n{}", q.id, df.sql()))
            .rows
            .into_iter()
            .map(|mut r| r.remove(0))
            .collect();

        // 3. Handwritten SQL.
        let hand: Vec<Variant> = db
            .query(&q.handwritten_sql)
            .unwrap_or_else(|e| panic!("[{}] handwritten SQL failed: {e}", q.id))
            .rows
            .into_iter()
            .map(|mut r| r.remove(0))
            .collect();

        let interp = sorted(interp);
        let translated = sorted(translated);
        let hand = sorted(hand);
        assert_eq!(interp, translated, "[{}] interpreter vs translated", q.id);
        assert_eq!(interp, hand, "[{}] interpreter vs handwritten", q.id);
        assert!(!interp.is_empty(), "[{}] produced an empty histogram", q.id);
    }
}

#[test]
fn q1_three_way() {
    run_all_three(400, &["q1"]);
}

#[test]
fn q2_three_way() {
    run_all_three(400, &["q2"]);
}

#[test]
fn q3_three_way() {
    run_all_three(400, &["q3"]);
}

#[test]
fn q4_three_way() {
    run_all_three(400, &["q4"]);
}

#[test]
fn q5_three_way() {
    run_all_three(400, &["q5"]);
}

#[test]
fn q6_three_way() {
    run_all_three(300, &["q6"]);
}

#[test]
fn q7_three_way() {
    run_all_three(300, &["q7"]);
}

#[test]
fn q8_three_way() {
    run_all_three(300, &["q8"]);
}

#[test]
fn q6_flag_strategy_matches_join_strategy() {
    // Ablation sanity: both nested-query strategies agree on Q6.
    let db = test_db(200);
    let q = adl::queries::q6("hep");
    let run = |s: NestedStrategy| -> Vec<Variant> {
        let df = translate_query(db.clone(), &q.jsoniq, s).unwrap();
        sorted(df.collect().unwrap().rows.into_iter().map(|mut r| r.remove(0)).collect())
    };
    assert_eq!(run(NestedStrategy::FlagColumn), run(NestedStrategy::JoinBased));
}

#[test]
fn q6_stable_across_repeated_runs_and_thread_counts() {
    // Q6 under the JoinBased strategy duplicates a SEQ8()-numbered subquery on
    // both sides of a self-join; the morsel-parallel executor must assign the
    // same row numbers on every run regardless of worker interleaving, or the
    // join keys (and thus the histogram) drift between runs.
    let db = test_db(300);
    let q = adl::queries::q6("hep");
    let run = || -> Vec<Variant> {
        let df = translate_query(db.clone(), &q.jsoniq, NestedStrategy::JoinBased).unwrap();
        sorted(df.collect().unwrap().rows.into_iter().map(|mut r| r.remove(0)).collect())
    };
    db.set_threads(Some(1));
    let serial = run();
    assert!(!serial.is_empty());
    for threads in [1usize, 4, 8] {
        db.set_threads(Some(threads));
        for rep in 0..3 {
            assert_eq!(serial, run(), "drift at threads={threads} rep={rep}");
        }
    }
}

#[test]
fn histogram_counts_match_event_totals() {
    // Q1 counts every event exactly once.
    let db = test_db(500);
    let q = adl::queries::q1("hep");
    let res = db.query(&q.handwritten_sql).unwrap();
    let total: i64 = res
        .rows
        .iter()
        .map(|r| r[0].get_field("count").as_i64().unwrap())
        .sum();
    assert_eq!(total, 500);
}
