//! Four-system agreement: the RumbleDB-like runner and the document store must
//! produce the same results as the translated SQL on the benchmark queries
//! (the correctness premise behind the Fig. 9/10 comparisons).

use std::sync::Arc;

use snowq::adl::{self, generator::AdlConfig};
use snowq::baselines::{DocStore, RumbleRunner};
use snowq::jsoniq_core::snowflake::{translate_query, NestedStrategy};
use snowq::snowdb::variant::cmp_variants;
use snowq::snowdb::{Database, Variant};

fn setup(events: usize) -> (Arc<Database>, RumbleRunner, DocStore) {
    let db = Database::new();
    adl::generator::load_into(&db, "hep", &AdlConfig { events, seed: 77, partition_rows: 256 });
    let db = Arc::new(db);
    let mut rumble = RumbleRunner::new();
    rumble.load_from_table(&db, "HEP");
    let mut docstore = DocStore::new();
    docstore.load_from_table(&db, "HEP");
    (db, rumble, docstore)
}

fn sorted(mut v: Vec<Variant>) -> Vec<Variant> {
    v.sort_by(cmp_variants);
    v
}

#[test]
fn all_four_systems_agree_on_simple_and_nested_queries() {
    let (db, rumble, docstore) = setup(250);
    for q in adl::queries::queries("hep") {
        // Restrict to a representative subset to keep runtime modest; the
        // remaining queries are covered by the ADL three-way test.
        if !["q1", "q3", "q4"].contains(&q.id) {
            continue;
        }
        let strategy = if q.join_based {
            NestedStrategy::JoinBased
        } else {
            NestedStrategy::FlagColumn
        };
        let translated: Vec<Variant> = translate_query(db.clone(), &q.jsoniq, strategy)
            .unwrap()
            .collect()
            .unwrap()
            .rows
            .into_iter()
            .map(|mut r| r.remove(0))
            .collect();
        let r = rumble.query(&q.jsoniq).unwrap();
        let d = docstore.query(&q.jsoniq).unwrap();
        assert_eq!(sorted(r.clone()), sorted(translated.clone()), "[{}] rumble", q.id);
        assert_eq!(sorted(d), sorted(translated), "[{}] docstore", q.id);
        assert!(!r.is_empty());
    }
}

#[test]
fn docstore_accounts_serialized_bytes() {
    let (_, _, docstore) = setup(100);
    assert_eq!(docstore.len("HEP"), 100);
    assert!(docstore.collection_bytes("HEP") > 10_000);
}
