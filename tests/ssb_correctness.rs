//! Differential test for SSB: the translated JSONiq queries must produce the
//! same result sets as the handwritten SQL (paper §V-G: "identical performance
//! as handwritten reference SQL implementations" presupposes identical
//! results). The JSONiq side emits objects; handwritten rows are wrapped into
//! objects using each query's key list.

use std::sync::Arc;

use snowq::jsoniq_core::interp::{DatabaseCollections, Interpreter};
use snowq::jsoniq_core::snowflake::{translate_query, NestedStrategy};
use snowq::snowdb::variant::{cmp_variants, Object};
use snowq::snowdb::{Database, Variant};
use snowq::ssb::{self, SsbConfig};

fn db(lineorders: usize) -> Arc<Database> {
    let d = Database::new();
    ssb::load_ssb(&d, &SsbConfig { lineorders, seed: 11, partition_rows: 512 });
    Arc::new(d)
}

fn run_translated(db: &Arc<Database>, jsoniq: &str) -> Vec<Variant> {
    let df = translate_query(db.clone(), jsoniq, NestedStrategy::FlagColumn)
        .unwrap_or_else(|e| panic!("translation failed: {e}"));
    df.collect()
        .unwrap_or_else(|e| panic!("translated SQL failed: {e}\n{}", df.sql()))
        .rows
        .into_iter()
        .map(|mut r| r.remove(0))
        .collect()
}

fn run_handwritten(db: &Database, sql: &str, keys: &[&str]) -> Vec<Variant> {
    db.query(sql)
        .unwrap_or_else(|e| panic!("handwritten SQL failed: {e}"))
        .rows
        .into_iter()
        .map(|row| {
            let mut o = Object::with_capacity(keys.len());
            for (k, v) in keys.iter().zip(row) {
                o.insert(*k, v);
            }
            Variant::object(o)
        })
        .collect()
}

fn sorted(mut v: Vec<Variant>) -> Vec<Variant> {
    v.sort_by(cmp_variants);
    v
}

fn check(id: &str, lineorders: usize) {
    check_inner(id, lineorders, true)
}

fn check_inner(id: &str, lineorders: usize, require_rows: bool) {
    let db = db(lineorders);
    let q = ssb::query(id);
    let translated = sorted(run_translated(&db, &q.jsoniq));
    let mut hand = sorted(run_handwritten(&db, &q.sql, &q.keys));
    // Documented divergence: with no matching rows the JSONiq group-by yields
    // no groups, while the SQL global aggregate yields one NULL row; normalize
    // by dropping the NULL row.
    if q.keys == ["revenue"] {
        hand.retain(|h| !h.get_field("revenue").is_null());
    }
    assert_eq!(translated, hand, "[{id}] translated vs handwritten");
    if require_rows {
        assert!(!hand.is_empty(), "[{id}] produced no rows");
    }
}

#[test]
fn q1_family() {
    check("q1.1", 4000);
    check("q1.2", 20000);
    check("q1.3", 40000);
}

#[test]
fn q2_family() {
    check("q2.1", 4000);
    check("q2.2", 4000);
    // Q2.3 pins a single part brand and region; the scaled dataset needs more
    // rows before that exact combination appears.
    check("q2.3", 12000);
}

#[test]
fn q3_family() {
    check("q3.1", 4000);
    check("q3.2", 6000);
    check("q3.3", 20000);
    // Q3.4 is so selective (two specific cities x one month) that the scaled
    // dataset rarely produces matches; both sides must still agree.
    check_inner("q3.4", 20000, false);
}

#[test]
fn q4_family() {
    check("q4.1", 4000);
    check("q4.2", 8000);
    check("q4.3", 20000);
}

#[test]
fn q1_1_matches_interpreter_at_tiny_scale() {
    // The interpreter materializes the full cross product, so keep it tiny.
    let db = db(200);
    let q = ssb::query("q1.1");
    let provider = DatabaseCollections { db: &db };
    let interp = Interpreter::new(&provider).eval_query(&q.jsoniq).unwrap();
    let translated = run_translated(&db, &q.jsoniq);
    assert_eq!(sorted(interp), sorted(translated));
}

#[test]
fn order_by_revenue_descending_is_respected() {
    // Q3.1 orders by year asc then revenue desc; verify on the translated side.
    let db = db(8000);
    let q = ssb::query("q3.1");
    let rows = run_translated(&db, &q.jsoniq);
    let mut prev: Option<(i64, i64)> = None;
    for obj in &rows {
        let year = obj.get_field("d_year").as_i64().unwrap();
        let rev = obj.get_field("revenue").as_i64().unwrap();
        if let Some((py, pr)) = prev {
            assert!(year > py || (year == py && rev <= pr), "ordering violated");
        }
        prev = Some((year, rev));
    }
}
