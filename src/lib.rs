//! `snowq` — umbrella crate re-exporting the full JSONiq-on-Snowflake reproduction.
//!
//! See the individual crates for detail:
//! - [`jsoniq_core`]: the paper's contribution — JSONiq → single-SQL translation.
//! - [`snowpark`]: the lazy dataframe client library.
//! - [`snowdb`]: the Snowflake-like columnar engine substrate.
//! - [`adl`] / [`ssb`]: benchmark substrates.
//! - [`baselines`]: RumbleDB-like and AsterixDB-like comparator engines.

pub use adl;
pub use baselines;
pub use jsoniq_core;
pub use snowdb;
pub use snowpark;
pub use ssb;
