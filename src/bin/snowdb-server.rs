//! `snowdb-server` — serve a database directory over the wire protocol.
//!
//! ```text
//! snowdb-server --db mydb --listen 127.0.0.1:7878
//! snowdb-server --listen 127.0.0.1:0            # in-memory, ephemeral port
//! ```
//!
//! Options:
//!   --db <dir>               persistent database directory (created if absent);
//!                            omitted = a fresh in-memory database
//!   --listen <addr>          bind address, default 127.0.0.1:7878
//!   --max-concurrent <n>     statements running at once (default 8)
//!   --max-queued <n>         admission queue bound (default 64)
//!   --queue-timeout-ms <ms>  queue-wait deadline (default 30000)
//!   --max-connections <n>    concurrent connections (default 64)
//!   --max-frame <bytes>      largest accepted wire frame (default 16 MiB)
//!
//! Ctrl-C shuts down gracefully: new statements are rejected with typed
//! errors, in-flight ones drain (or are cancelled at the drain deadline), and
//! every committed write is on disk before exit.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use snowq::snowdb::server::admission::AdmissionConfig;
use snowq::snowdb::server::ServerConfig;
use snowq::snowdb::Database;

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod ffi {
    extern "C" {
        pub fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        pub fn _exit(code: i32) -> !;
    }
    pub const SIGINT: i32 = 2;
}

#[cfg(unix)]
extern "C" fn on_sigint(_: i32) {
    // Async-signal-safe only: first press requests graceful shutdown, the
    // second exits immediately.
    if SHUTDOWN.swap(true, Ordering::SeqCst) {
        unsafe { ffi::_exit(130) }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: snowdb-server [--db dir] [--listen addr] [--max-concurrent n] \
         [--max-queued n] [--queue-timeout-ms ms] [--max-connections n] [--max-frame bytes]"
    );
    std::process::exit(2)
}

fn main() {
    #[cfg(unix)]
    unsafe {
        ffi::signal(ffi::SIGINT, on_sigint);
    }

    let mut db_dir: Option<String> = None;
    let mut listen = "127.0.0.1:7878".to_string();
    let mut config = ServerConfig::default();
    let mut admission = AdmissionConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().unwrap_or_else(|| {
            eprintln!("{name} needs a value");
            usage()
        });
        match arg.as_str() {
            "--db" => db_dir = Some(value("--db")),
            "--listen" => listen = value("--listen"),
            "--max-concurrent" => {
                admission.max_concurrent = parse(&value("--max-concurrent"), "--max-concurrent")
            }
            "--max-queued" => admission.max_queued = parse(&value("--max-queued"), "--max-queued"),
            "--queue-timeout-ms" => {
                admission.queue_timeout =
                    Duration::from_millis(parse(&value("--queue-timeout-ms"), "--queue-timeout-ms"))
            }
            "--max-connections" => {
                config.max_connections = parse(&value("--max-connections"), "--max-connections")
            }
            "--max-frame" => config.max_frame = parse(&value("--max-frame"), "--max-frame"),
            _ => usage(),
        }
    }
    config.admission = admission;

    let db = match &db_dir {
        Some(dir) => match Database::open(dir) {
            Ok(db) => {
                eprintln!("opened database '{dir}' (tables: {:?})", db.table_names());
                Arc::new(db)
            }
            Err(e) => {
                eprintln!("cannot open db {dir}: {e}");
                std::process::exit(1);
            }
        },
        None => {
            eprintln!("no --db given: serving a fresh in-memory database");
            Arc::new(Database::new())
        }
    };

    let handle = match snowq::snowdb::serve(db, listen.as_str(), config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("cannot serve on {listen}: {e}");
            std::process::exit(1);
        }
    };
    eprintln!("listening on {} (Ctrl-C for graceful shutdown)", handle.addr());

    while !SHUTDOWN.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("shutting down: draining in-flight statements...");
    let stats = handle.admission_stats();
    handle.shutdown();
    eprintln!(
        "served {} statement(s) ({} rejected); goodbye",
        stats.admitted, stats.rejected
    );
}

fn parse<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("{flag}: cannot parse '{s}'");
        usage()
    })
}
