//! `jsoniq-repl` — the interactive client of the paper's §III-A1: submit
//! JSONiq queries, see the generated SQL, and execute them on the embedded
//! Snowflake-like engine (or the reference interpreter).
//!
//! ```text
//! cargo run --bin jsoniq-repl                       # demo dataset preloaded
//! cargo run --bin jsoniq-repl -- events=data.jsonl  # load JSONL into a table
//! cargo run --bin jsoniq-repl -- --db mydb          # open/create a persistent db
//! cargo run --bin jsoniq-repl -- --connect 127.0.0.1:7878  # wire-protocol client
//! ```
//!
//! With `--db <dir>` the session runs against a persistent database: tables
//! already committed there are available immediately (reads are lazy, through
//! the store's buffer cache), and newly loaded JSONL streams straight to
//! immutable partition files under an atomically committed catalog.
//!
//! Queries may span lines and end with `;`. Commands:
//!   \sql        toggle printing the generated SQL
//!   \explain    EXPLAIN the next query instead of running it
//!   \analyze    EXPLAIN ANALYZE the next query (runs it, shows per-operator metrics)
//!   \verify     run the next query across the verification lattice (interpreter,
//!               both nested strategies, optimizer on/off, 1..N threads) and report
//!               any divergence
//!   \interp     toggle interpreter mode (default: translate + execute)
//!   \strategy   toggle flag-column / JOIN-based nested-query strategy
//!   \tables     list tables
//!   \save <dir> persist the current in-memory catalog to a new database dir
//!   \q          quit
//!
//! With `--connect host:port` the REPL speaks the wire protocol to a running
//! `snowdb-server` instead of opening a database in-process: statements are
//! sent as raw SQL, results stream back in batches, Ctrl-C sends a cancel
//! frame, and `\stats` shows the server's admission counters
//! (`SHOW SERVER STATUS`). This doubles as a manual test client for the
//! service layer.

use std::io::{BufRead, Write};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use snowq::jsoniq_core::interp::{DatabaseCollections, Interpreter};
use snowq::jsoniq_core::snowflake::{translate_query, NestedStrategy};
use snowq::jsoniq_core::verify::{verify_jsoniq, JsoniqLattice};
use snowq::snowdb::storage::{ColumnDef, ColumnType};
use snowq::snowdb::variant::parse_json;
use snowq::snowdb::{Database, Variant};

/// SIGINT plumbing: the first Ctrl-C requests cooperative cancellation of the
/// in-flight query (observed at the next batch boundary through its
/// `QueryGovernor`); the second exits the process immediately with the
/// conventional 130.
mod sigint {
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Ctrl-C presses since the last [`reset`].
    pub static PRESSES: AtomicUsize = AtomicUsize::new(0);

    #[cfg(unix)]
    mod ffi {
        extern "C" {
            pub fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
            pub fn _exit(code: i32) -> !;
        }
        pub const SIGINT: i32 = 2;
    }

    #[cfg(unix)]
    extern "C" fn handler(_: i32) {
        // Only async-signal-safe operations here: an atomic bump, and on the
        // second press an immediate `_exit` (no unwinding, no allocation).
        if PRESSES.fetch_add(1, Ordering::SeqCst) >= 1 {
            unsafe { ffi::_exit(130) }
        }
    }

    pub fn install() {
        #[cfg(unix)]
        unsafe {
            ffi::signal(ffi::SIGINT, handler);
        }
    }

    pub fn reset() {
        PRESSES.store(0, Ordering::SeqCst);
    }
}

fn main() {
    sigint::install();
    let mut db_dir: Option<String> = None;
    let mut connect: Option<String> = None;
    let mut specs: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--db" {
            db_dir = Some(args.next().unwrap_or_else(|| panic!("--db needs a directory")));
        } else if let Some(dir) = arg.strip_prefix("--db=") {
            db_dir = Some(dir.to_string());
        } else if arg == "--connect" {
            connect = Some(args.next().unwrap_or_else(|| panic!("--connect needs host:port")));
        } else if let Some(addr) = arg.strip_prefix("--connect=") {
            connect = Some(addr.to_string());
        } else {
            specs.push(arg);
        }
    }
    if let Some(addr) = connect {
        run_connected(&addr);
        return;
    }
    let db = match &db_dir {
        Some(dir) => {
            let db = match Database::open(dir) {
                Ok(db) => Arc::new(db),
                Err(e) => {
                    eprintln!("cannot open db {dir}: {e}");
                    std::process::exit(1);
                }
            };
            println!("opened database '{dir}' (tables: {:?})", db.table_names());
            db
        }
        None => Arc::new(Database::new()),
    };
    if specs.is_empty() && db_dir.is_none() {
        load_demo(&db);
        println!("loaded demo collection 'events' ({} rows)", db.table("EVENTS").unwrap().row_count());
    }
    for spec in &specs {
        let (table, path) = spec
            .split_once('=')
            .unwrap_or_else(|| panic!("expected table=file.jsonl, got '{spec}'"));
        load_jsonl(&db, table, path);
        println!(
            "loaded '{}' ({} rows)",
            table,
            db.table(table).map(|t| t.row_count()).unwrap_or(0)
        );
    }

    let mut show_sql = true;
    let mut explain_next = false;
    let mut analyze_next = false;
    let mut verify_next = false;
    let mut interp_mode = false;
    let mut strategy = NestedStrategy::FlagColumn;
    let stdin = std::io::stdin();
    let mut buffer = String::new();
    print_prompt(&buffer);
    for line in stdin.lock().lines() {
        let line = line.expect("stdin readable");
        let trimmed = line.trim();
        if buffer.is_empty() && trimmed.starts_with('\\') {
            match trimmed {
                "\\q" => break,
                "\\sql" => {
                    show_sql = !show_sql;
                    println!("show SQL: {show_sql}");
                }
                "\\explain" => {
                    explain_next = true;
                    println!("next query will be explained");
                }
                "\\analyze" => {
                    analyze_next = true;
                    println!("next query will run under EXPLAIN ANALYZE");
                }
                "\\verify" => {
                    verify_next = true;
                    println!("next query will run across the verification lattice");
                }
                "\\interp" => {
                    interp_mode = !interp_mode;
                    println!("interpreter mode: {interp_mode}");
                }
                "\\strategy" => {
                    strategy = match strategy {
                        NestedStrategy::FlagColumn => NestedStrategy::JoinBased,
                        NestedStrategy::JoinBased => NestedStrategy::FlagColumn,
                    };
                    println!("nested-query strategy: {strategy:?}");
                }
                "\\tables" => println!("{:?}", db.table_names()),
                cmd if cmd.starts_with("\\save") => {
                    match cmd.strip_prefix("\\save").map(str::trim) {
                        Some(dir) if !dir.is_empty() => match db.persist_to(dir) {
                            Ok(()) => println!(
                                "saved {} table(s) to '{dir}' (catalog v{})",
                                db.table_names().len(),
                                db.store().map(|s| s.version()).unwrap_or(0)
                            ),
                            Err(e) => println!("save failed: {e}"),
                        },
                        _ => println!("usage: \\save <directory>"),
                    }
                }
                other => println!("unknown command {other}"),
            }
            print_prompt(&buffer);
            continue;
        }
        buffer.push_str(&line);
        buffer.push('\n');
        if !trimmed.ends_with(';') {
            print_prompt(&buffer);
            continue;
        }
        let query = buffer.trim_end().trim_end_matches(';').to_string();
        buffer.clear();
        if verify_next {
            verify_next = false;
            let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2);
            let lattice = JsoniqLattice::full(threads);
            let report = verify_jsoniq(&db, &query, &lattice);
            println!("{}", report.render());
        } else if explain_next || analyze_next {
            let analyze = analyze_next;
            explain_next = false;
            analyze_next = false;
            match translate_query(db.clone(), &query, strategy) {
                Ok(df) => {
                    let rendered = if analyze {
                        db.explain_analyze(df.sql())
                    } else {
                        db.explain(df.sql())
                    };
                    match rendered {
                        Ok(plan) => println!("{plan}"),
                        Err(e) => println!("explain error: {e}"),
                    }
                }
                Err(e) => println!("translation error: {e}"),
            }
        } else {
            run_query(&db, &query, show_sql, interp_mode, strategy);
        }
        print_prompt(&buffer);
    }
}

/// Remote mode: one wire-protocol connection to a `snowdb-server`. Input is
/// raw SQL (the JSONiq translator needs an in-process catalog); the point of
/// this mode is exercising the service layer by hand.
fn run_connected(addr: &str) {
    use snowq::snowdb::server::client::Client;

    let mut client = match Client::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot connect to {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!("connected to {addr} — {} (session {})", client.banner(), client.session());
    println!("statements are raw SQL; \\stats shows server status, \\q quits");

    let stdin = std::io::stdin();
    let mut buffer = String::new();
    print_prompt(&buffer);
    for line in stdin.lock().lines() {
        let line = line.expect("stdin readable");
        let trimmed = line.trim();
        if buffer.is_empty() && trimmed.starts_with('\\') {
            match trimmed {
                "\\q" => break,
                "\\stats" => execute_remote(&mut client, "SHOW SERVER STATUS"),
                other => println!("unknown command {other} (remote mode has \\stats and \\q)"),
            }
            print_prompt(&buffer);
            continue;
        }
        buffer.push_str(&line);
        buffer.push('\n');
        if !trimmed.ends_with(';') {
            print_prompt(&buffer);
            continue;
        }
        let sql = buffer.trim_end().trim_end_matches(';').to_string();
        buffer.clear();
        if !sql.trim().is_empty() {
            execute_remote(&mut client, &sql);
        }
        print_prompt(&buffer);
    }
    client.goodbye();
}

/// Runs one remote statement; a Ctrl-C while it is in flight sends a cancel
/// frame on a cloned socket, and the server answers with a typed
/// `Cancelled` error within one batch boundary.
fn execute_remote(client: &mut snowq::snowdb::server::client::Client, sql: &str) {
    use snowq::snowdb::server::client::RemoteOutcome;
    use std::sync::atomic::AtomicBool;

    sigint::reset();
    let stop = Arc::new(AtomicBool::new(false));
    let watcher = client.canceller().ok().map(|mut canceller| {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut sent = false;
            while !stop.load(Ordering::SeqCst) {
                if !sent && sigint::PRESSES.load(Ordering::SeqCst) > 0 {
                    sent = canceller.cancel().is_ok();
                    println!("\ncancelling... (Ctrl-C again to exit)");
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        })
    });
    let outcome = client.execute(sql);
    stop.store(true, Ordering::SeqCst);
    if let Some(w) = watcher {
        let _ = w.join();
    }
    match outcome {
        Ok(RemoteOutcome::Rows(r)) => {
            for row in &r.rows {
                let line: Vec<String> = row.iter().map(|v| v.to_string()).collect();
                println!("{}", line.join("\t"));
            }
            println!(
                "({} rows; compile {}us, execute {}us, {} bytes scanned, queued {}ms)",
                r.done.rows, r.done.compile_us, r.done.exec_us, r.done.bytes_scanned,
                r.done.queued_ms
            );
        }
        Ok(RemoteOutcome::Message(m)) => println!("{m}"),
        Err(e) => println!("error: {e}"),
    }
    sigint::reset();
}

fn print_prompt(buffer: &str) {
    if buffer.is_empty() {
        print!("jsoniq> ");
    } else {
        print!("   ...> ");
    }
    std::io::stdout().flush().ok();
}

fn run_query(
    db: &Arc<Database>,
    query: &str,
    show_sql: bool,
    interp_mode: bool,
    strategy: NestedStrategy,
) {
    if interp_mode {
        let provider = DatabaseCollections { db };
        match Interpreter::new(&provider).eval_query(query) {
            Ok(items) => {
                for item in &items {
                    println!("{item}");
                }
                println!("({} items, interpreted locally)", items.len());
            }
            Err(e) => println!("error: {e}"),
        }
        return;
    }
    match translate_query(db.clone(), query, strategy) {
        Ok(df) => {
            if show_sql {
                println!("-- generated SQL:\n{}\n", df.sql());
            }
            execute_cancellable(db, df.sql());
        }
        Err(e) => println!("translation error: {e}"),
    }
}

/// Runs `sql` on a worker thread under the session's governor and polls for
/// Ctrl-C: the first press cancels the query cooperatively (it comes back as
/// a typed `Cancelled` error with partial metrics), the second press exits
/// the process.
fn execute_cancellable(db: &Arc<Database>, sql: &str) {
    sigint::reset();
    let handle = db.execute_governed(sql);
    let mut cancel_requested = false;
    while !handle.is_finished() {
        if !cancel_requested && sigint::PRESSES.load(Ordering::SeqCst) > 0 {
            handle.cancel();
            cancel_requested = true;
            println!("\ncancelling... (Ctrl-C again to exit)");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    match handle.join() {
        Ok(res) => {
            for row in &res.rows {
                println!("{}", row[0]);
            }
            println!(
                "({} rows; compile {:?}, execute {:?}, {} bytes scanned)",
                res.rows.len(),
                res.profile.compile_time,
                res.profile.exec_time,
                res.profile.scan.bytes_scanned
            );
            if let Some(governed) = &res.profile.governed {
                println!("({})", governed.render());
            }
        }
        Err(failure) => {
            println!("execution error: {}", failure.error);
            println!("({})", failure.summary.render());
            if let Some(metrics) = &failure.partial_metrics {
                println!("partial metrics at interruption:");
                println!("  {}", metrics.annotation());
            }
        }
    }
    sigint::reset();
}

/// Loads a JSONL file through the engine's streaming schema-inferring
/// ingestion path (two buffered passes; the file is never held in memory).
fn load_jsonl(db: &Database, table: &str, path: &str) {
    db.load_jsonl_path(table, path)
        .unwrap_or_else(|e| panic!("cannot load {path}: {e}"));
}

fn load_demo(db: &Database) {
    let rows = [
        (1i64, r#"{"PT": 27.5, "PHI": 0.3}"#, r#"[{"PT": 31.0, "ETA": 0.2}]"#),
        (2, r#"{"PT": 14.0, "PHI": -1.0}"#, r#"[{"PT": 11.0, "ETA": 1.4}, {"PT": 52.0, "ETA": 0.9}]"#),
        (3, r#"{"PT": 99.9, "PHI": 2.2}"#, r#"[]"#),
    ];
    db.load_table(
        "events",
        vec![
            ColumnDef::new("EVENT", ColumnType::Int),
            ColumnDef::new("MET", ColumnType::Variant),
            ColumnDef::new("JET", ColumnType::Variant),
        ],
        rows.iter().map(|(id, met, jet)| {
            vec![Variant::Int(*id), parse_json(met).unwrap(), parse_json(jet).unwrap()]
        }),
    )
    .expect("demo loads");
}
