//! `snowq-client` — a minimal SQL client for `snowdb-server`.
//!
//! ```text
//! snowq-client 127.0.0.1:7878 -e "SELECT count(*) FROM t"   # one-shot
//! snowq-client 127.0.0.1:7878                               # read stdin
//! ```
//!
//! One-shot mode runs each `-e` statement in order and exits non-zero on the
//! first error. Without `-e`, statements (terminated by `;`) are read from
//! stdin — pipe a script in, or type interactively. `SHOW SERVER STATUS`
//! works in both modes and reports the server's admission counters.

use std::io::BufRead;

use snowq::snowdb::server::client::{Client, RemoteOutcome};

fn main() {
    let mut addr: Option<String> = None;
    let mut statements: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "-e" {
            match args.next() {
                Some(sql) => statements.push(sql),
                None => {
                    eprintln!("-e needs a statement");
                    std::process::exit(2);
                }
            }
        } else if addr.is_none() {
            addr = Some(arg);
        } else {
            eprintln!("usage: snowq-client host:port [-e sql]...");
            std::process::exit(2);
        }
    }
    let addr = addr.unwrap_or_else(|| "127.0.0.1:7878".to_string());

    let mut client = match Client::connect(&*addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot connect to {addr}: {e}");
            std::process::exit(1);
        }
    };
    eprintln!("connected: {} (session {})", client.banner(), client.session());

    if !statements.is_empty() {
        for sql in &statements {
            if !run(&mut client, sql) {
                std::process::exit(1);
            }
        }
        client.goodbye();
        return;
    }

    let stdin = std::io::stdin();
    let mut buffer = String::new();
    for line in stdin.lock().lines() {
        let line = line.expect("stdin readable");
        buffer.push_str(&line);
        buffer.push('\n');
        if !line.trim_end().ends_with(';') {
            continue;
        }
        let sql = buffer.trim_end().trim_end_matches(';').to_string();
        buffer.clear();
        if !sql.trim().is_empty() {
            run(&mut client, &sql);
        }
    }
    client.goodbye();
}

fn run(client: &mut Client, sql: &str) -> bool {
    match client.execute(sql) {
        Ok(RemoteOutcome::Rows(r)) => {
            println!("{}", r.columns.join("\t"));
            for row in &r.rows {
                let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
                println!("{}", cells.join("\t"));
            }
            eprintln!(
                "({} rows; compile {}us, execute {}us, {} bytes scanned, queued {}ms)",
                r.done.rows, r.done.compile_us, r.done.exec_us, r.done.bytes_scanned,
                r.done.queued_ms
            );
            true
        }
        Ok(RemoteOutcome::Message(m)) => {
            println!("{m}");
            true
        }
        Err(e) => {
            eprintln!("error: {e}");
            false
        }
    }
}
